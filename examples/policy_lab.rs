//! Policy laboratory: how the owner's choices for `·`, `+`, `+R`, `Agg`
//! change the citation (§2: "The abstract functions … are policies to be
//! specified by the database owner").
//!
//! Run with: `cargo run --example policy_lab`

use citesys::core::paper;
use citesys::core::{
    AggPolicy, AltPolicy, CitationMode, CitationService, EngineOptions, JointPolicy, PolicySet,
    RewritePolicy,
};

fn main() {
    let db = paper::paper_database();
    let registry = paper::paper_registry();
    let q = paper::paper_query();

    let policies: Vec<(&str, PolicySet)> = vec![
        (
            "paper default (union/union/min-size/union)",
            PolicySet::paper_default(),
        ),
        (
            "+R = union (keep all rewritings)",
            PolicySet {
                rewritings: RewritePolicy::Union,
                ..Default::default()
            },
        ),
        (
            "+R = first rewriting",
            PolicySet {
                rewritings: RewritePolicy::First,
                ..Default::default()
            },
        ),
        (
            "+ = first binding",
            PolicySet {
                alt: AltPolicy::First,
                rewritings: RewritePolicy::Union,
                ..Default::default()
            },
        ),
        (
            "· = join (merge snippets)",
            PolicySet {
                joint: JointPolicy::Join,
                ..Default::default()
            },
        ),
        (
            "Agg = per-tuple only",
            PolicySet {
                agg: AggPolicy::PerTupleOnly,
                ..Default::default()
            },
        ),
    ];

    println!("query: {q}\n");
    for (label, ps) in policies {
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                policies: ps,
                ..Default::default()
            })
            .build()
            .unwrap();
        let cited = engine.cite(&q).expect("coverable");
        let t = &cited.tuples[0];
        println!("policy: {label}");
        println!("  symbolic:  {}", t.expr());
        println!(
            "  atoms:     {}",
            t.atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!("  snippets:  {}", t.snippets.len());
        match &cited.aggregate {
            Some(a) => println!("  aggregate: {} atom(s)\n", a.atoms.len()),
            None => println!("  aggregate: (per-tuple only)\n"),
        }
    }

    // Sanity relations between the policies, as ordering guarantees:
    let run = |ps: PolicySet| {
        CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                policies: ps,
                ..Default::default()
            })
            .build()
            .unwrap()
            .cite(&q)
            .expect("coverable")
            .tuples[0]
            .atoms
            .len()
    };
    let min_size = run(PolicySet::paper_default());
    let union_all = run(PolicySet {
        rewritings: RewritePolicy::Union,
        ..Default::default()
    });
    let first_binding = run(PolicySet {
        alt: AltPolicy::First,
        rewritings: RewritePolicy::Union,
        ..Default::default()
    });
    assert!(min_size <= union_all);
    assert!(first_binding <= union_all);
    println!("OK: min-size ≤ union and first-binding ≤ union, as expected.");
}

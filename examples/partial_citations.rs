//! Partial citations via contained rewritings (Definition 2.1's
//! "(partial) rewriting").
//!
//! Run with: `cargo run --example partial_citations`
//!
//! When the citation views cannot cover a query *equivalently*, the strict
//! engine refuses. With `allow_partial`, the engine falls back to
//! **maximally contained** rewritings: tuples derivable through some view
//! get citations, the rest are reported uncited — exactly the situation of
//! a curated database whose citation policy covers only some portions.

use citesys::core::paper;
use citesys::core::{
    CitationFunction, CitationQuery, CitationRegistry, CitationService, CitationView, Coverage,
    EngineOptions,
};
use citesys::cq::parse_query;

fn main() {
    let db = paper::paper_database();

    // A registry with a single *narrow* view: families that have an intro.
    let mut registry = CitationRegistry::new();
    registry
        .add(
            CitationView::new(
                parse_query(
                    "λ FID. VIntro(FID, FName) :- Family(FID, FName, D), FamilyIntro(FID, T)",
                )
                .expect("well-formed"),
                vec![CitationQuery::new(
                    parse_query("λ FID. CVI(FID, PName) :- Committee(FID, PName)")
                        .expect("well-formed"),
                )],
                CitationFunction::new().with_static("database", "GtoPdb"),
            )
            .expect("valid view"),
        )
        .expect("fresh registry");

    // Q asks for ALL family names — broader than the view.
    let q = parse_query("Q(FName) :- Family(FID, FName, D)").expect("well-formed");
    println!("query: {q}");
    println!("view:  λ FID. VIntro(FID, FName) :- Family ⋈ FamilyIntro\n");

    // Strict mode refuses.
    let strict = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions::default())
        .build()
        .unwrap();
    match strict.cite(&q) {
        Err(e) => println!("strict engine: {e}"),
        Ok(_) => unreachable!("no equivalent rewriting exists"),
    }

    // Partial mode cites what it can.
    let lenient = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            allow_partial: true,
            ..Default::default()
        })
        .build()
        .unwrap();
    let cited = lenient.cite(&q).expect("contained rewriting exists");
    println!("\npartial engine: {} answer tuples", cited.answer.len());
    match cited.coverage {
        Coverage::Partial { uncited } => {
            println!("coverage: partial, {uncited} tuple(s) uncited\n")
        }
        Coverage::Full => println!("coverage: full\n"),
    }
    for t in &cited.tuples {
        if t.atoms.is_empty() {
            println!(
                "  {}  →  (no citation: not derivable through any view)",
                t.tuple
            );
        } else {
            let atoms: Vec<String> = t.atoms.iter().map(ToString::to_string).collect();
            println!("  {}  →  {}", t.tuple, atoms.join(" · "));
        }
    }

    // Calcitonin (has intros) is cited; Dopamine (no intro) is not.
    let uncited = cited.tuples.iter().filter(|t| t.atoms.is_empty()).count();
    assert_eq!(uncited, 1);
    println!("\nOK: covered tuples cited, uncovered tuple reported.");
}

//! Citations over an RDF-style triple store (§3, *Other models*).
//!
//! Run with: `cargo run --example eagle_i_rdf`
//!
//! eagle-i (one of the paper's motivating systems) is an RDF dataset where
//! "the citation depends on the class of resource". We encode triples as a
//! relation `Triple(S, P, O)` and register one parameterized citation view
//! per ontology class; conjunctive citation views then work unchanged.

use citesys::core::{
    format_citation, CitationFormat, CitationMode, CitationService, EngineOptions,
};
use citesys::gtopdb::eaglei::{class_query, class_registry, generate, EagleIConfig, CLASSES};

fn main() {
    let db = generate(&EagleIConfig {
        resources_per_class: 6,
        ..Default::default()
    });
    println!(
        "triple store: {} triples, {} classes",
        db.relation("Triple").expect("created").len(),
        CLASSES.len()
    );

    let registry = class_registry();
    println!("\nclass citation views:");
    for cv in registry.iter() {
        println!("  {}", cv.view);
    }

    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();

    for class in ["CellLine", "Software"] {
        let q = class_query(class);
        println!("\nquery: {q}");
        let cited = engine.cite(&q).expect("class query coverable");
        println!("  {} resources; first two citations:", cited.answer.len());
        for t in cited.tuples.iter().take(2) {
            print!(
                "{}",
                format_citation(&t.snippets, None, CitationFormat::Text)
                    .lines()
                    .map(|l| format!("    {l}\n"))
                    .collect::<String>()
            );
        }
        // Every citation names the class-specific view.
        assert!(cited.tuples.iter().all(|t| t
            .atoms
            .iter()
            .all(|a| a.view.as_str() == format!("V{class}"))));
    }

    // A query that ignores the ontology class has no citation view — the
    // paper's open problem about reasoning over the ontology.
    let untyped =
        citesys::cq::parse_query("Q(S, N) :- Triple(S, 'label', N)").expect("well-formed");
    match engine.cite(&untyped) {
        Err(e) => println!("\nuntyped query correctly uncited: {e}"),
        Ok(_) => unreachable!("class views cannot cover an untyped query"),
    }
}

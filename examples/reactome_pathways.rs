//! Citing pathway data in a Reactome-style database.
//!
//! Run with: `cargo run --example reactome_pathways`
//!
//! Pathways form a part-of hierarchy, each curated by named people. The
//! participant query gets per-pathway citations (with curators, "et al."
//! abbreviated per the paper's §3 remark); the whole-pathway scan collapses
//! to the database-wide citation under the min-size policy.

use citesys::core::{
    format_citation, format_citation_with, CitationFormat, CitationMode, CitationService,
    EngineOptions, FormatOptions,
};
use citesys::gtopdb::reactome::{
    generate, pathway_registry, q_hierarchy, q_participants, ReactomeConfig,
};
use citesys::storage::evaluate;

fn main() {
    let cfg = ReactomeConfig {
        roots: 4,
        curators_per_pathway: 5,
        ..Default::default()
    };
    let db = generate(&cfg);
    println!(
        "Reactome-style database: {} pathways, {} hierarchy edges, {} participants",
        db.relation("Pathway").expect("exists").len(),
        db.relation("PathwayPart").expect("exists").len(),
        db.relation("Participant").expect("exists").len(),
    );

    let registry = pathway_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();

    // Hierarchy is plain querying (no citation views needed to *read*).
    let edges = evaluate(&db, &q_hierarchy()).expect("evaluates");
    println!("\nsub-pathway edges (first 3 of {}):", edges.len());
    for row in edges.rows.iter().take(3) {
        println!("  {}", row.tuple);
    }

    // Participants: per-pathway parameterized citations with curators.
    let cited = engine.cite(&q_participants()).expect("coverable");
    println!("\nparticipants query: {} answers", cited.answer.len());
    let first = &cited.tuples[0];
    println!("first tuple {} cites:", first.tuple);
    print!(
        "{}",
        format_citation(&first.snippets, None, CitationFormat::Text)
    );
    println!("\nsame citation, unabridged author list:");
    print!(
        "{}",
        format_citation_with(
            &first.snippets,
            None,
            CitationFormat::Text,
            &FormatOptions::unabridged()
        )
    );

    // Whole-pathway scan: min-size picks the constant database citation.
    let q = citesys::cq::parse_query("Q(PID, PName, S) :- Pathway(PID, PName, S)")
        .expect("well-formed");
    let scan = engine.cite(&q).expect("coverable");
    let agg = scan.aggregate.expect("Agg = union");
    println!(
        "\npathway scan: {} tuples, aggregate citation has {} atom(s):",
        scan.answer.len(),
        agg.atoms.len()
    );
    print!(
        "{}",
        format_citation(&agg.snippets, None, CitationFormat::Text)
    );
    assert_eq!(agg.atoms.len(), 1, "min-size picks the constant view");
}

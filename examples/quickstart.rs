//! Quickstart: the paper's §2 worked example, end to end.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Builds the GtoPdb fragment (`Family`, `Committee`, `FamilyIntro`) with
//! the two *Calcitonin* families, registers the paper's citation views
//! V1 (parameterized by family), V2 and V3, and asks for a citation for
//!
//! ```text
//! Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
//! ```

use citesys::core::paper;
use citesys::core::{format_citation, CitationFormat, CitationMode, CitationService};

fn main() {
    let db = paper::paper_database();
    let registry = paper::paper_registry();

    println!("== Database ==");
    for (name, rel) in db.relations() {
        println!("  {name}: {} tuples", rel.len());
    }

    println!("\n== Citation views ==");
    for cv in registry.iter() {
        println!("  {}", cv.view);
        for cq in &cv.citation_queries {
            println!("    citation query: {}", cq.query);
        }
    }

    let q = paper::paper_query();
    println!("\n== Query ==\n  {q}");

    let service = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .mode(CitationMode::Formal)
        .build()
        .expect("database and registry set");
    let cited = service.cite(&q).expect("the paper's query is coverable");

    println!("\n== Rewritings ==");
    for r in &cited.rewritings {
        println!("  {r}");
    }

    println!("\n== Per-tuple citations ==");
    for t in &cited.tuples {
        println!("  tuple {}:", t.tuple);
        println!("    expression: {}", t.expr());
        println!(
            "    after policies (min-size +R): {}",
            t.atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" · ")
        );
    }

    let agg = cited.aggregate.as_ref().expect("Agg = union");
    println!("\n== Aggregate citation (text) ==");
    print!(
        "{}",
        format_citation(&agg.snippets, None, CitationFormat::Text)
    );

    println!("\n== Aggregate citation (BibTeX) ==");
    print!(
        "{}",
        format_citation(&agg.snippets, None, CitationFormat::BibTex)
    );

    println!("\n== Derivation trace ==");
    print!("{}", citesys::core::trace_answer(&cited));

    // The headline check from the paper: the final citation uses Q2.
    let atoms: Vec<String> = cited.tuples[0]
        .atoms
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(atoms, vec!["CV2", "CV3"]);
    println!("\nOK: min-size +R picked CV2·CV3, as in the paper.");

    // Prepared queries: the rewriting search above is cached — re-citing
    // the same shape (even at other λ-constants) does zero search work.
    let prepared = service.prepare(&q).expect("coverable");
    let again = prepared.execute().expect("coverable");
    assert_eq!(again.rewrite_stats.search_effort(), 0);
    assert_eq!(again.rewrite_stats.plan_cache_hits, 1);
    println!(
        "OK: prepared re-cite did zero rewriting-search work ({})",
        again.rewrite_stats
    );
}

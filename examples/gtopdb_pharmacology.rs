//! A realistic pharmacology-database scenario on the synthetic GtoPdb.
//!
//! Run with: `cargo run --example gtopdb_pharmacology`
//!
//! Generates a scale-4 instance (32 families, 128 targets, interactions,
//! curators), registers citation views at family / target / ligand
//! granularity, and cites three research queries in different formats —
//! including one whose citation carries the *names of the curators* who
//! maintain the cited portion, GtoPdb's real-world behaviour.

use citesys::core::{
    format_citation, CitationFormat, CitationMode, CitationService, EngineOptions, PolicySet,
    RewritePolicy,
};
use citesys::cq::parse_query;
use citesys::gtopdb::{full_registry, generate, GtopdbConfig};

fn main() {
    let cfg = GtopdbConfig {
        scale: 4,
        dup_name_rate: 0.15,
        ..Default::default()
    };
    let db = generate(&cfg);
    let registry = full_registry();

    println!("== Synthetic GtoPdb (scale {}) ==", cfg.scale);
    for (name, rel) in db.relations() {
        println!("  {name}: {} tuples", rel.len());
    }

    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();

    // -- Query 1: the paper's family/intro query at scale ----------------
    let q1 = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        .expect("well-formed");
    let cited = engine.cite(&q1).expect("coverable");
    println!(
        "\n[Q1] {} answers; rewritings: {}; citation atoms (min-size): {}",
        cited.answer.len(),
        cited.rewritings.len(),
        cited.aggregate.as_ref().map_or(0, |a| a.atoms.len()),
    );

    // -- Query 2: target interactions — parameterized citations ----------
    let q2 =
        parse_query("Q(TName, LID) :- Target(TID, TName, FID), Interaction(TID, LID, Affinity)")
            .expect("well-formed");
    let cited = engine.cite(&q2).expect("coverable");
    println!(
        "\n[Q2] {} answers; per-tuple citations carry curator names:",
        cited.answer.len()
    );
    for t in cited.tuples.iter().take(2) {
        println!("  {} →", t.tuple);
        print!(
            "{}",
            indent(&format_citation(&t.snippets, None, CitationFormat::Text), 4)
        );
    }

    // -- Query 3: same, rendered as BibTeX and RIS ------------------------
    if let Some(first) = cited.tuples.first() {
        println!("\n[Q2, BibTeX for first tuple]");
        print!(
            "{}",
            format_citation(&first.snippets, None, CitationFormat::BibTex)
        );
        println!("[Q2, RIS for first tuple]");
        print!(
            "{}",
            format_citation(&first.snippets, None, CitationFormat::Ris)
        );
    }

    // -- Policy comparison: union +R vs min-size +R -----------------------
    let union_engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            policies: PolicySet {
                rewritings: RewritePolicy::Union,
                ..Default::default()
            },
            ..Default::default()
        })
        .build()
        .unwrap();
    let min_cited = engine.cite(&q1).expect("coverable");
    let union_cited = union_engine.cite(&q1).expect("coverable");
    let atoms = |c: &citesys::core::CitedAnswer| c.aggregate.as_ref().map_or(0, |a| a.atoms.len());
    println!(
        "\n[Policies on Q1] +R = min-size: {} atoms; +R = union: {} atoms",
        atoms(&min_cited),
        atoms(&union_cited)
    );
    assert!(atoms(&min_cited) <= atoms(&union_cited));
    println!("OK: the min-size policy never cites more than union.");
}

fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}

//! Concurrent serving: one warm `CitationService` cloned across worker
//! threads, with a writer applying data updates through an
//! `IncrementalEngine` while readers keep citing.
//!
//! Run with: `cargo run --example concurrent_service`
//!
//! Demonstrates the scaled cache architecture (see ARCHITECTURE.md):
//!
//! * clones share the **sharded plan cache** — only the first cite of a
//!   query shape pays for the rewriting search, and read hits take only
//!   a shard's shared lock;
//! * single-tuple updates **delta-maintain the materialized views** —
//!   after an update, unaffected views are carried over verbatim and the
//!   plan-cache hit counters keep climbing instead of resetting;
//! * readers racing an update always observe one consistent snapshot
//!   (old or new), never a mix.

use std::sync::{Arc, Mutex};

use citesys::core::paper;
use citesys::core::{CitationMode, CitationService, EngineOptions, IncrementalEngine};
use citesys::storage::tuple;

fn main() {
    let mut engine = IncrementalEngine::new(
        paper::paper_database(),
        paper::paper_registry(),
        EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        },
    );
    let q = paper::paper_query();
    engine.cite(&q).expect("coverable");

    // Publish a snapshot service for the reader threads; the writer
    // replaces it after every update.
    let published: Arc<Mutex<CitationService>> = Arc::new(Mutex::new(engine.snapshot_service()));

    const READERS: usize = 4;
    const CITES_PER_READER: usize = 200;
    const UPDATES: usize = 20;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for id in 0..READERS {
            let published = Arc::clone(&published);
            let q = q.clone();
            handles.push(scope.spawn(move || {
                let mut hits = 0usize;
                for _ in 0..CITES_PER_READER {
                    let svc = published.lock().unwrap().clone();
                    let cited = svc.cite(&q).expect("coverable");
                    hits += cited.rewrite_stats.plan_cache_hits;
                    // Snapshot consistency: every answer tuple is cited.
                    assert!(cited.tuples.iter().all(|t| !t.atoms.is_empty()));
                }
                (id, hits)
            }));
        }

        // The writer: flip Dopamine's intro in and out. Each update is
        // delta-maintained — no view is re-materialized from scratch.
        for i in 0..UPDATES {
            if i % 2 == 0 {
                engine.insert("FamilyIntro", tuple![13, "3rd"]).unwrap();
            } else {
                engine.delete("FamilyIntro", &tuple![13, "3rd"]).unwrap();
            }
            *published.lock().unwrap() = engine.snapshot_service();
        }

        for h in handles {
            let (id, hits) = h.join().expect("reader panicked");
            println!("reader {id}: {hits}/{CITES_PER_READER} cites served from the plan cache");
        }
    });

    let service = engine.snapshot_service();
    let plans = service.plan_cache_stats();
    let views = service.view_cache_stats();
    println!("\n== after {UPDATES} updates ==");
    println!(
        "plan cache: {} hits, {} misses across {} shard(s) — updates did not reset it",
        plans.hits,
        plans.misses,
        service.plan_cache().shard_count()
    );
    println!(
        "view cache: {} materializations, {} delta carries, {} untouched carries, {} drops",
        views.materializations, views.deltas_applied, views.untouched, views.drops
    );
    assert_eq!(views.drops, 0, "no update dropped the view cache");
}

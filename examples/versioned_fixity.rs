//! Fixity: citations that retrieve the data **as cited** (§3).
//!
//! Run with: `cargo run --example versioned_fixity`
//!
//! GtoPdb's website warns that "re-executing the query brings back the
//! current version which may be different from the version seen when
//! cited" (footnote 5 of the paper). This example shows the fix the paper
//! sketches: a versioned store, citations carrying
//! `(version, query, digest)`, dereferencing old versions, and detecting
//! tampering.

use citesys::core::paper;
use citesys::core::{cite_at_version, dereference, verify, EngineOptions};
use citesys::storage::{tuple, VersionedDatabase};

fn main() {
    // Version 1: the paper's instance.
    let mut vdb = VersionedDatabase::new(paper::paper_schemas()).expect("schemas valid");
    let base = paper::paper_database();
    for (name, rel) in base.relations() {
        for t in rel.scan() {
            vdb.insert(name.as_str(), t.clone()).expect("valid tuple");
        }
    }
    let v1 = vdb.commit();
    println!(
        "committed version {v1} ({} tuples)",
        vdb.current().total_tuples()
    );

    // Cite the paper's query at version 1.
    let registry = paper::paper_registry();
    let q = paper::paper_query();
    let (cited, token) =
        cite_at_version(&vdb, &registry, EngineOptions::default(), v1, &q).expect("coverable");
    println!(
        "\ncited at version {}: {} answer tuple(s)",
        token.version,
        cited.answer.len()
    );
    println!("fixity token: {token}");

    // The database evolves: Dopamine gets an intro, a family is renamed.
    vdb.insert("FamilyIntro", tuple![13, "3rd"]).expect("valid");
    vdb.delete("Family", &tuple![12, "Calcitonin", "C2"])
        .expect("valid");
    vdb.insert("Family", tuple![12, "Calcitonin-like", "C2"])
        .expect("valid");
    let v2 = vdb.commit();
    println!("\ncommitted version {v2} (database evolved)");

    // Re-executing the query *now* gives a different answer…
    let (cited_now, token_now) =
        cite_at_version(&vdb, &registry, EngineOptions::default(), v2, &q).expect("coverable");
    println!(
        "current version answers: {} (was {})",
        cited_now.answer.len(),
        cited.answer.len()
    );
    assert_ne!(token.digest, token_now.digest);

    // …but the citation still dereferences to the data as cited.
    let recovered = dereference(&vdb, &token).expect("version 1 retained");
    assert_eq!(recovered, cited.answer);
    println!("\ndereference(token@v1) returned the original answer — fixity holds");

    // And verification catches tampering.
    verify(&vdb, &token).expect("untampered token verifies");
    let mut tampered = token.clone();
    tampered.version = v2;
    match verify(&vdb, &tampered) {
        Err(e) => println!("tampered token rejected: {e}"),
        Ok(()) => unreachable!("tampering must be detected"),
    }
}

//! # citesys — fine-grained data citation for relational databases
//!
//! A from-scratch implementation of *“Data Citation: A Computational
//! Challenge”* (Davidson, Buneman, Deutch, Milo, Silvello — PODS 2017,
//! DOI 10.1145/3034786.3056123): generate citations for **arbitrary
//! conjunctive queries** over a curated database by rewriting them over
//! owner-declared *citation views* and combining the views' citations with
//! a semiring-style algebra (`·`, `+`, `+R`, `Agg`).
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`cq`] | conjunctive queries, parser, containment, minimization |
//! | [`storage`] | relational store, CQ evaluation, versioning, SHA-256 fixity |
//! | [`provenance`] | semirings, ℕ\[X\] polynomials, K-relations |
//! | [`rewrite`] | answering queries using views (bucket, MiniCon, plans) |
//! | [`core`] | citation views, algebra, policies, service, formats |
//! | [`gtopdb`] | synthetic GtoPdb / eagle-i generators and workloads |
//!
//! ## Quickstart
//!
//! The entry point is the owned, `Send + Sync`
//! [`CitationService`](core::CitationService), built once and shared:
//!
//! ```
//! use citesys::core::paper;
//! use citesys::core::{CitationMode, CitationService};
//!
//! let service = CitationService::builder()
//!     .database(paper::paper_database())
//!     .registry(paper::paper_registry())
//!     .mode(CitationMode::Formal)
//!     .build()
//!     .unwrap();
//!
//! let cited = service.cite(&paper::paper_query()).unwrap();
//! assert_eq!(cited.tuples[0].expr().to_string(),
//!     "(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)");
//!
//! // Repeated (λ-parameterized) queries reuse the cached rewrite plan:
//! let prepared = service.prepare(&paper::paper_query()).unwrap();
//! let again = prepared.execute().unwrap();
//! assert_eq!(again.rewrite_stats.search_effort(), 0);
//! assert_eq!(again.rewrite_stats.plan_cache_hits, 1);
//! ```
//!
//! Migrating from the deprecated borrowing `CitationEngine`? See
//! `MIGRATION.md` at the repository root.

#![warn(missing_docs)]

pub mod script;

pub use citesys_core as core;
pub use citesys_cq as cq;
pub use citesys_gtopdb as gtopdb;
pub use citesys_net as net;
pub use citesys_provenance as provenance;
pub use citesys_rewrite as rewrite;
pub use citesys_storage as storage;

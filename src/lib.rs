//! # citesys — fine-grained data citation for relational databases
//!
//! A from-scratch implementation of *“Data Citation: A Computational
//! Challenge”* (Davidson, Buneman, Deutch, Milo, Silvello — PODS 2017,
//! DOI 10.1145/3034786.3056123): generate citations for **arbitrary
//! conjunctive queries** over a curated database by rewriting them over
//! owner-declared *citation views* and combining the views' citations with
//! a semiring-style algebra (`·`, `+`, `+R`, `Agg`).
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`cq`] | conjunctive queries, parser, containment, minimization |
//! | [`storage`] | relational store, CQ evaluation, versioning, SHA-256 fixity |
//! | [`provenance`] | semirings, ℕ\[X\] polynomials, K-relations |
//! | [`rewrite`] | answering queries using views (bucket, MiniCon) |
//! | [`core`] | citation views, algebra, policies, engine, formats |
//! | [`gtopdb`] | synthetic GtoPdb / eagle-i generators and workloads |
//!
//! ## Quickstart
//!
//! ```
//! use citesys::core::{CitationEngine, CitationMode, EngineOptions};
//! use citesys::core::paper;
//!
//! let db = paper::paper_database();
//! let registry = paper::paper_registry();
//! let engine = CitationEngine::new(&db, &registry, EngineOptions {
//!     mode: CitationMode::Formal,
//!     ..Default::default()
//! });
//! let cited = engine.cite(&paper::paper_query()).unwrap();
//! assert_eq!(cited.tuples[0].expr().to_string(),
//!     "(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)");
//! ```

#![warn(missing_docs)]

pub mod script;

pub use citesys_core as core;
pub use citesys_cq as cq;
pub use citesys_gtopdb as gtopdb;
pub use citesys_provenance as provenance;
pub use citesys_rewrite as rewrite;
pub use citesys_storage as storage;

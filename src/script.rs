//! A line-oriented script language driving the whole citation stack —
//! the `citesys` CLI's engine, kept as a library so every behaviour is
//! unit-testable.
//!
//! ```text
//! # comments start with '#'
//! schema Family(FID:int, FName:text, Desc:text) key(0)
//! insert Family(11, 'Calcitonin', 'C1')
//! view λ FID. V1(FID, N, D) :- Family(FID, N, D) | cite λ FID. CV1(FID, P) :- Committee(FID, P) | static database=GtoPdb
//! commit
//! cite Q(N) :- Family(F, N, D) | format bibtex | mode formal | policy union
//! begin                          # buffer a transaction…
//! insert Family(14, 'Ghrelin', 'G1')
//! delete Family(11, 'Calcitonin', 'C1')
//! commit                         # …applied atomically as one changeset
//! tables
//! dump Family
//! ```
//!
//! Every `cite` runs against the latest committed version and embeds a
//! fixity token; `verify <token-digest>` re-checks the last citation.
//!
//! `begin` opens a transaction: subsequent `insert`/`delete` lines are
//! buffered and `commit` applies them **atomically** as one
//! [`Changeset`] (all-or-nothing; `rollback` discards the buffer). With
//! or without `begin`, each `commit` carries the committed ops into the
//! cached service's materialized views by batch delta maintenance — one
//! snapshot swap per commit, however many tuples changed.
//!
//! The interpreter keeps one [`CitationService`] snapshot per committed
//! version and shares its rewrite-plan caches across `cite` commands, so a
//! script (or a long-running `citesys serve` session) that re-cites the
//! same query shape — even at different λ-parameter constants — pays for
//! the rewriting search only once. Registering a view invalidates the
//! shared plan caches (the rewriting space changed).

use std::fmt;
use std::sync::Arc;

use citesys_core::{
    cite_with_service, format_citation, verify, CitationFormat, CitationFunction, CitationMode,
    CitationQuery, CitationRegistry, CitationService, CitationView, Coverage, EngineOptions,
    FixityToken, PlanCache, PolicySet, RewritePolicy,
};
use citesys_cq::{parse_query, Value, ValueType};
use citesys_storage::{to_csv, Changeset, RelationSchema, Tuple, VersionedDatabase};

/// What went wrong, at the granularity the CLI's exit codes report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScriptErrorKind {
    /// The script itself is malformed (unknown command, bad syntax).
    Parse,
    /// The script is well-formed but a data/citation operation failed.
    Citation,
}

/// A script-level error, tagged with its 1-based line number and kind.
#[derive(Debug)]
pub struct ScriptError {
    /// Line the error occurred on.
    pub line: usize,
    /// Parse vs citation/runtime failure (drives the CLI exit code).
    pub kind: ScriptErrorKind,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

/// Internal command-level error: a kind plus a message.
type CmdError = (ScriptErrorKind, String);

fn parse_err(message: impl Into<String>) -> CmdError {
    (ScriptErrorKind::Parse, message.into())
}

fn cite_err(message: impl Into<String>) -> CmdError {
    (ScriptErrorKind::Citation, message.into())
}

/// The stateful interpreter.
pub struct Interpreter {
    store: Option<VersionedDatabase>,
    schemas: Vec<RelationSchema>,
    registry: CitationRegistry,
    /// Shared rewrite-plan caches: one for strict cites, one for cites
    /// with the `partial` fallback (the two can cache different plans for
    /// the same query). Cleared when a view is registered.
    plans_strict: Arc<PlanCache>,
    plans_partial: Arc<PlanCache>,
    /// Plan-cache text staged by `serve --plan-cache`, loaded at the
    /// first `cite` (after the session's `view` commands have settled the
    /// registry — loading earlier would be dropped by the cache swap each
    /// registration performs).
    pending_plan_import: Option<String>,
    /// Service over the latest committed snapshot, rebuilt on demand and
    /// carried across commits by batch delta maintenance.
    service: Option<(u64, bool, CitationService)>,
    /// An open `begin … commit` transaction: buffered insert/delete ops,
    /// applied atomically as one changeset at `commit`.
    txn: Option<Changeset>,
    last_token: Option<FixityToken>,
    trace_next: bool,
    out: String,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// A fresh interpreter with no schema.
    pub fn new() -> Self {
        Interpreter {
            store: None,
            schemas: Vec::new(),
            registry: CitationRegistry::new(),
            plans_strict: Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY)),
            plans_partial: Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY)),
            pending_plan_import: None,
            service: None,
            txn: None,
            last_token: None,
            trace_next: false,
            out: String::new(),
        }
    }

    /// Runs a whole script, returning the accumulated output.
    pub fn run(&mut self, script: &str) -> Result<String, ScriptError> {
        for (i, raw) in script.lines().enumerate() {
            self.run_numbered_line(i + 1, raw)?;
        }
        Ok(std::mem::take(&mut self.out))
    }

    /// Runs a single script line (the `serve` loop's entry point),
    /// returning the output it produced. State persists across calls.
    pub fn run_line(&mut self, raw: &str) -> Result<String, ScriptError> {
        self.run_numbered_line(1, raw)?;
        Ok(std::mem::take(&mut self.out))
    }

    fn run_numbered_line(&mut self, line_no: usize, raw: &str) -> Result<(), ScriptError> {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            return Ok(());
        }
        self.command(line).map_err(|(kind, message)| ScriptError {
            line: line_no,
            kind,
            message,
        })
    }

    fn say(&mut self, s: impl AsRef<str>) {
        self.out.push_str(s.as_ref());
        self.out.push('\n');
    }

    fn command(&mut self, line: &str) -> Result<(), CmdError> {
        let (head, rest) = line.split_once(' ').unwrap_or((line, ""));
        match head {
            "schema" => self.cmd_schema(rest),
            "insert" => self.cmd_insert(rest),
            "delete" => self.cmd_delete(rest),
            "view" => self.cmd_view(rest),
            "begin" => self.cmd_begin(),
            "rollback" => self.cmd_rollback(),
            "commit" => self.cmd_commit(),
            "cite" => self.cmd_cite(rest),
            "verify" => self.cmd_verify(),
            "tables" => self.cmd_tables(),
            "dump" => self.cmd_dump(rest),
            "load" => self.cmd_load(rest),
            "trace" => {
                // `trace` arms a derivation trace for the next `cite`.
                self.trace_next = true;
                Ok(())
            }
            other => Err(parse_err(format!("unknown command: {other}"))),
        }
    }

    // schema Family(FID:int, FName:text, Desc:text) key(0, 1)
    fn cmd_schema(&mut self, rest: &str) -> Result<(), CmdError> {
        if self.store.is_some() {
            return Err(parse_err("schema must be declared before any data command"));
        }
        let (name, after) = rest
            .split_once('(')
            .ok_or_else(|| parse_err("expected Name(attr:type, …)"))?;
        let (attrs_str, tail) = after
            .split_once(')')
            .ok_or_else(|| parse_err("missing ')'"))?;
        let mut attrs = Vec::new();
        for part in attrs_str.split(',') {
            let (n, t) = part
                .trim()
                .split_once(':')
                .ok_or_else(|| parse_err(format!("attribute '{part}' lacks ':type'")))?;
            let ty = match t.trim() {
                "int" => ValueType::Int,
                "text" => ValueType::Text,
                "bool" => ValueType::Bool,
                other => return Err(parse_err(format!("unknown type '{other}'"))),
            };
            attrs.push((n.trim().to_string(), ty));
        }
        let mut key = Vec::new();
        let tail = tail.trim();
        if let Some(k) = tail.strip_prefix("key(") {
            let inner = k
                .strip_suffix(')')
                .ok_or_else(|| parse_err("missing ')' in key"))?;
            for idx in inner.split(',') {
                let i: usize = idx
                    .trim()
                    .parse()
                    .map_err(|_| parse_err(format!("bad key position '{idx}'")))?;
                if i >= attrs.len() {
                    return Err(parse_err(format!("key position {i} out of range")));
                }
                key.push(i);
            }
        } else if !tail.is_empty() {
            return Err(parse_err(format!("unexpected trailing input: '{tail}'")));
        }
        let parts: Vec<(&str, ValueType)> = attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = RelationSchema::from_parts(name.trim(), &parts, &key);
        self.say(format!(
            "schema {} ({} attributes)",
            name.trim(),
            parts.len()
        ));
        self.schemas.push(schema);
        Ok(())
    }

    fn store_mut(&mut self) -> Result<&mut VersionedDatabase, CmdError> {
        if self.store.is_none() {
            if self.schemas.is_empty() {
                return Err(parse_err("no schema declared"));
            }
            let store = VersionedDatabase::new(self.schemas.clone())
                .map_err(|e| cite_err(e.to_string()))?;
            self.store = Some(store);
        }
        Ok(self.store.as_mut().expect("just initialized"))
    }

    // insert Family(11, 'Calcitonin', 'C1')
    fn cmd_insert(&mut self, rest: &str) -> Result<(), CmdError> {
        let (name, tuple) = parse_ground_atom(rest).map_err(parse_err)?;
        if let Some(txn) = &mut self.txn {
            // Buffered: validated and applied atomically at `commit`.
            txn.insert(&name, tuple);
            return Ok(());
        }
        let changed = self
            .store_mut()?
            .insert(&name, tuple)
            .map_err(|e| cite_err(e.to_string()))?;
        if !changed {
            self.say("(duplicate ignored)");
        }
        Ok(())
    }

    fn cmd_delete(&mut self, rest: &str) -> Result<(), CmdError> {
        let (name, tuple) = parse_ground_atom(rest).map_err(parse_err)?;
        if let Some(txn) = &mut self.txn {
            txn.delete(&name, tuple);
            return Ok(());
        }
        let changed = self
            .store_mut()?
            .delete(&name, &tuple)
            .map_err(|e| cite_err(e.to_string()))?;
        if !changed {
            self.say("(no such tuple)");
        }
        Ok(())
    }

    /// Opens a transaction: subsequent insert/delete lines buffer into
    /// one changeset until `commit` (atomic) or `rollback` (discard).
    fn cmd_begin(&mut self) -> Result<(), CmdError> {
        if self.txn.is_some() {
            return Err(cite_err(
                "transaction already open: run 'commit' or 'rollback' first",
            ));
        }
        self.txn = Some(Changeset::new());
        self.say("transaction open");
        Ok(())
    }

    /// Discards an open transaction's buffered ops.
    fn cmd_rollback(&mut self) -> Result<(), CmdError> {
        match self.txn.take() {
            Some(changes) => {
                self.say(format!("rolled back {} buffered op(s)", changes.len()));
                Ok(())
            }
            None => Err(cite_err("no open transaction")),
        }
    }

    // view <rule> | cite <rule> [| cite <rule>] [| static k=v]...
    fn cmd_view(&mut self, rest: &str) -> Result<(), CmdError> {
        let mut parts = rest.split('|').map(str::trim);
        let view_rule = parts.next().ok_or_else(|| parse_err("missing view rule"))?;
        let view = parse_query(view_rule).map_err(|e| parse_err(e.to_string()))?;
        let mut citation_queries = Vec::new();
        let mut function = CitationFunction::new();
        for part in parts {
            if let Some(rule) = part.strip_prefix("cite ") {
                let q = parse_query(rule.trim()).map_err(|e| parse_err(e.to_string()))?;
                // Constant single-column citation queries (the paper's CV2
                // pattern) get the friendlier field name "citation".
                let cq = if q.is_constant() && q.arity() == 1 {
                    CitationQuery::with_fields(q, vec!["citation".to_string()])
                        .expect("arity checked")
                } else {
                    CitationQuery::new(q)
                };
                citation_queries.push(cq);
            } else if let Some(kv) = part.strip_prefix("static ") {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| parse_err(format!("static '{kv}' lacks '='")))?;
                function = function.with_static(k.trim(), v.trim());
            } else {
                return Err(parse_err(format!("unknown view clause: '{part}'")));
            }
        }
        let name = view.name().to_string();
        let cv = CitationView::new(view, citation_queries, function)
            .map_err(|e| cite_err(e.to_string()))?;
        self.registry.add(cv).map_err(|e| cite_err(e.to_string()))?;
        // The rewriting space changed: drop the service built over the
        // stale registry and swap in FRESH plan caches (replacing the
        // `Arc`s, so nothing holding the old caches can leak old-registry
        // plans back in).
        self.plans_strict = Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY));
        self.plans_partial = Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY));
        self.service = None;
        self.say(format!("view {name} registered"));
        Ok(())
    }

    fn cmd_commit(&mut self) -> Result<(), CmdError> {
        let txn = self.txn.take();
        let txn_ops = txn.as_ref().map(Changeset::len);
        let (v, changes) = {
            let store = self.store_mut()?;
            // Transactional: apply the buffered ops atomically first — a
            // failing op rolls the whole batch back and nothing is
            // committed (the buffer is discarded either way).
            if let Some(changes) = txn {
                store
                    .apply_changeset(&changes)
                    .map_err(|e| cite_err(format!("transaction rolled back: {e}")))?;
            }
            // Delta-maintain with EVERYTHING this commit seals: the
            // pending log covers both non-transactional ops applied
            // before any `begin` and the effective transaction ops just
            // applied — using only the transaction buffer would leave
            // pre-`begin` ops out of the materializations.
            let changes = Changeset::from_ops(store.pending_ops().to_vec());
            (store.commit(), changes)
        };
        self.refresh_service_after_commit(v, &changes);
        match txn_ops {
            Some(n) => self.say(format!(
                "committed version {v} ({n} op(s) in one transaction)"
            )),
            None => self.say(format!("committed version {v}")),
        }
        Ok(())
    }

    /// Carries a cached service across a commit by **batch delta
    /// maintenance**: the committed ops are staged as one changeset
    /// against the old snapshot and applied to the new one in a single
    /// snapshot swap, keeping both the plan cache and the materialized
    /// views warm instead of rebuilding the service cold.
    fn refresh_service_after_commit(&mut self, v_new: u64, changes: &Changeset) {
        let Some((v_old, partial, svc)) = self.service.take() else {
            return;
        };
        if v_old + 1 != v_new {
            return;
        }
        let store = self.store.as_ref().expect("commit initialized the store");
        let Ok(snapshot) = store.snapshot(v_new) else {
            return;
        };
        let pending = svc.stage_batch(changes);
        let next = svc.with_database_delta(snapshot, pending);
        self.service = Some((v_new, partial, next));
    }

    // cite <rule> [| format f] [| mode m] [| policy p] [| partial]
    fn cmd_cite(&mut self, rest: &str) -> Result<(), CmdError> {
        let mut parts = rest.split('|').map(str::trim);
        let rule = parts.next().ok_or_else(|| parse_err("missing query"))?;
        let q = parse_query(rule).map_err(|e| parse_err(e.to_string()))?;
        let mut format = CitationFormat::Text;
        let mut options = EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        };
        for part in parts {
            match part.split_once(' ').map(|(a, b)| (a, b.trim())) {
                Some(("format", f)) => {
                    format = match f {
                        "text" => CitationFormat::Text,
                        "bibtex" => CitationFormat::BibTex,
                        "ris" => CitationFormat::Ris,
                        "xml" => CitationFormat::Xml,
                        "json" => CitationFormat::Json,
                        "csl" => CitationFormat::CslJson,
                        other => return Err(parse_err(format!("unknown format '{other}'"))),
                    }
                }
                Some(("mode", m)) => {
                    options.mode = match m {
                        "formal" => CitationMode::Formal,
                        "pruned" => CitationMode::CostPruned,
                        other => return Err(parse_err(format!("unknown mode '{other}'"))),
                    }
                }
                Some(("policy", p)) => {
                    options.policies = PolicySet {
                        rewritings: match p {
                            "minsize" => RewritePolicy::MinSize,
                            "union" => RewritePolicy::Union,
                            "first" => RewritePolicy::First,
                            other => return Err(parse_err(format!("unknown policy '{other}'"))),
                        },
                        ..Default::default()
                    }
                }
                None if part == "partial" => options.allow_partial = true,
                _ => return Err(parse_err(format!("unknown cite clause: '{part}'"))),
            }
        }
        if let Some(text) = self.pending_plan_import.take() {
            let n = self
                .plans_strict
                .load_text(&text)
                .map_err(|e| cite_err(format!("plan-cache file: {e}")))?;
            self.say(format!("loaded {n} cached plan(s)"));
        }
        if self.txn.is_some() {
            return Err(cite_err(
                "transaction open: run 'commit' (or 'rollback') before 'cite'",
            ));
        }
        let store = self.store_mut()?;
        if store.has_pending() {
            return Err(cite_err("uncommitted changes: run 'commit' before 'cite'"));
        }
        let version = store.latest_version();
        let service = self.service_at(version, options)?;
        let (cited, token) =
            cite_with_service(&service, version, &q).map_err(|e| cite_err(e.to_string()))?;
        self.say(format!(
            "{} answer tuple(s) at version {version}",
            cited.answer.len()
        ));
        if let Coverage::Partial { uncited } = cited.coverage {
            self.say(format!("coverage: partial ({uncited} uncited)"));
        }
        if let Some(agg) = &cited.aggregate {
            self.say(format_citation(&agg.snippets, Some(&token), format).trim_end());
        }
        if self.trace_next {
            self.trace_next = false;
            self.say(citesys_core::trace_answer(&cited).trim_end());
        }
        self.last_token = Some(token);
        Ok(())
    }

    fn cmd_verify(&mut self) -> Result<(), CmdError> {
        let token = self
            .last_token
            .clone()
            .ok_or_else(|| cite_err("no citation to verify"))?;
        let store = self.store.as_ref().ok_or_else(|| cite_err("no data"))?;
        verify(store, &token).map_err(|e| cite_err(e.to_string()))?;
        self.say(format!(
            "fixity verified: v{} {}",
            token.version, token.digest
        ));
        Ok(())
    }

    fn cmd_tables(&mut self) -> Result<(), CmdError> {
        let lines: Vec<String> = {
            let store = self.store_mut()?;
            store
                .current()
                .relations()
                .map(|(name, rel)| format!("{name}: {} tuples", rel.len()))
                .collect()
        };
        for l in lines {
            self.say(l);
        }
        Ok(())
    }

    fn cmd_dump(&mut self, rest: &str) -> Result<(), CmdError> {
        let name = rest.trim();
        let csv = {
            let store = self.store_mut()?;
            let rel = store
                .current()
                .relation(name)
                .map_err(|e| cite_err(e.to_string()))?;
            to_csv(rel)
        };
        self.say(csv.trim_end());
        Ok(())
    }

    // load Family from 'path.csv'  — bulk-loads CSV rows into an existing
    // relation (the header row's name:type columns must match the schema).
    fn cmd_load(&mut self, rest: &str) -> Result<(), CmdError> {
        let (name, after) = rest
            .trim()
            .split_once(" from ")
            .ok_or_else(|| parse_err("expected: load <Relation> from '<path>'"))?;
        let path = after.trim().trim_matches('\'');
        let content = std::fs::read_to_string(path)
            .map_err(|e| cite_err(format!("cannot read {path}: {e}")))?;
        let name = name.trim();
        let (_, tuples) =
            citesys_storage::from_csv(name, &[], &content).map_err(|e| cite_err(e.to_string()))?;
        let store = self.store_mut()?;
        let mut n = 0usize;
        for t in tuples {
            if store.insert(name, t).map_err(|e| cite_err(e.to_string()))? {
                n += 1;
            }
        }
        self.say(format!("loaded {n} tuple(s) into {name}"));
        Ok(())
    }

    /// Returns (building if needed) a service over the snapshot of
    /// `version` with the given options, reusing the interpreter's shared
    /// plan caches. Rebuilt only when the version or the partial flag
    /// changes — mode and policies do not affect plans, so they are set
    /// fresh on every call via the builder.
    fn service_at(
        &mut self,
        version: u64,
        options: EngineOptions,
    ) -> Result<CitationService, CmdError> {
        if let Some((v, partial, svc)) = &self.service {
            if *v == version && *partial == options.allow_partial {
                // Same snapshot and plan-compatible options: reuse the
                // service — including its materialized-view cache — with
                // this cite's mode/policies applied.
                return svc
                    .with_options(options)
                    .map_err(|e| cite_err(e.to_string()));
            }
        }
        let store = self.store.as_ref().expect("caller initialized the store");
        let snapshot = store
            .snapshot(version)
            .map_err(|e| cite_err(e.to_string()))?;
        let plans = if options.allow_partial {
            Arc::clone(&self.plans_partial)
        } else {
            Arc::clone(&self.plans_strict)
        };
        let svc = CitationService::builder()
            .database(snapshot)
            .registry(self.registry.clone())
            .options(options)
            .shared_plan_cache(plans)
            .build()
            .map_err(|e| cite_err(e.to_string()))?;
        self.service = Some((version, options.allow_partial, svc.clone()));
        Ok(svc)
    }

    /// Counters of the strict (non-partial) plan cache — how much
    /// rewriting-search work the session has amortized.
    pub fn plan_cache_stats(&self) -> citesys_core::PlanCacheStats {
        self.plans_strict.stats()
    }

    /// Serializes the strict plan cache to the `citesys-plan-cache v1`
    /// text form (the `serve --plan-cache` / `plans export` persistence
    /// format). The partial-fallback cache is session-local and not
    /// persisted.
    ///
    /// A staged import that no `cite` has consumed yet is returned
    /// verbatim instead: the live cache is necessarily empty in that
    /// state, and a `serve --plan-cache` session that exits without
    /// citing must save the plans it was handed, not truncate the file
    /// with an empty cache.
    pub fn export_plans(&self) -> String {
        if let Some(staged) = &self.pending_plan_import {
            return staged.clone();
        }
        self.plans_strict.to_text()
    }

    /// Loads plans serialized by [`export_plans`](Self::export_plans)
    /// into the strict plan cache, returning how many were loaded.
    ///
    /// Plans are only sound for the registry they were computed under;
    /// registering a view afterwards replaces the cache (dropping the
    /// imported plans), which keeps a stale import from outliving a
    /// changed rewriting space within a session. Across sessions the
    /// operator must pair a plan file with the script that registers the
    /// same views.
    pub fn import_plans(&mut self, text: &str) -> Result<usize, String> {
        self.plans_strict.load_text(text).map_err(|e| e.to_string())
    }

    /// Stages plan-cache text to be imported at the next `cite` command —
    /// i.e. after the session's `view` registrations have settled the
    /// registry (each registration swaps in fresh caches, so an eager
    /// import would be dropped). Used by `citesys serve --plan-cache`.
    pub fn stage_plan_import(&mut self, text: String) {
        self.pending_plan_import = Some(text);
    }

    /// True while staged plan-cache text has not been consumed by a
    /// `cite` yet. `serve --plan-cache` checks this before saving on
    /// exit: a session that never cited must not overwrite the persisted
    /// file with its (empty) in-memory cache.
    pub fn has_pending_plan_import(&self) -> bool {
        self.pending_plan_import.is_some()
    }

    /// Materialized-view cache counters of the session's cached service,
    /// if one has been built (i.e. after the first `cite`). After a
    /// `commit`, these show whether the commit was carried by batch delta
    /// maintenance (views `untouched`/`deltas_applied`) instead of
    /// re-materialization.
    pub fn view_cache_stats(&self) -> Option<citesys_core::ViewCacheStats> {
        self.service
            .as_ref()
            .map(|(_, _, svc)| svc.view_cache_stats())
    }

    /// The interpreter's registry (for inspection in tests).
    pub fn registry(&self) -> &CitationRegistry {
        &self.registry
    }
}

/// Strips a `#` comment, ignoring `#` inside single-quoted strings (with
/// `\'` escapes, matching the value parser) so `insert Note(1, 'bug #42')`
/// survives intact.
fn strip_comment(raw: &str) -> &str {
    let mut in_quote = false;
    let mut escaped = false;
    for (i, c) in raw.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '\'' => in_quote = !in_quote,
            '#' if !in_quote => return &raw[..i],
            _ => {}
        }
    }
    raw
}

/// Parses `Name(v1, v2, …)` with int / quoted-text / bool values.
fn parse_ground_atom(input: &str) -> Result<(String, Tuple), String> {
    let (name, after) = input
        .split_once('(')
        .ok_or_else(|| "expected Name(values…)".to_string())?;
    let inner = after
        .trim_end()
        .strip_suffix(')')
        .ok_or_else(|| "missing ')'".to_string())?;
    let mut values = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let (v, remainder) = parse_value(rest)?;
        values.push(v);
        rest = remainder.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' before '{rest}'"));
        }
    }
    Ok((name.trim().to_string(), Tuple::new(values)))
}

fn parse_value(input: &str) -> Result<(Value, &str), String> {
    let input = input.trim_start();
    if let Some(rest) = input.strip_prefix('\'') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, n)) = chars.next() {
                        out.push(n);
                    }
                }
                '\'' => return Ok((Value::from(out), &rest[i + 1..])),
                other => out.push(other),
            }
        }
        Err("unterminated string".into())
    } else if let Some(rest) = input.strip_prefix("true") {
        Ok((Value::Bool(true), rest))
    } else if let Some(rest) = input.strip_prefix("false") {
        Ok((Value::Bool(false), rest))
    } else {
        let end = input
            .find(|c: char| c == ',' || c.is_whitespace())
            .unwrap_or(input.len());
        let n: i64 = input[..end]
            .parse()
            .map_err(|_| format!("bad value '{}'", &input[..end]))?;
        Ok((Value::Int(n), &input[end..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_SCRIPT: &str = r#"
# the paper's worked example
schema Family(FID:int, FName:text, Desc:text) key(0)
schema Committee(FID:int, PName:text) key(0, 1)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert Family(12, 'Calcitonin', 'C2')
insert Family(13, 'Dopamine', 'D1')
insert FamilyIntro(11, '1st')
insert FamilyIntro(12, '2nd')
insert Committee(11, 'Alice')
insert Committee(11, 'Bob')
insert Committee(12, 'Carol')
view λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc) | cite λ FID. CV1(FID, PName) :- Committee(FID, PName) | static database=GtoPdb
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'IUPHAR/BPS Guide to PHARMACOLOGY...'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'IUPHAR/BPS Guide to PHARMACOLOGY...'
commit
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
verify
"#;

    #[test]
    fn paper_script_end_to_end() {
        let mut interp = Interpreter::new();
        let out = interp.run(PAPER_SCRIPT).unwrap();
        assert!(out.contains("schema Family"));
        assert!(out.contains("view V1 registered"));
        assert!(out.contains("committed version 1"));
        assert!(out.contains("1 answer tuple(s) at version 1"));
        assert!(out.contains("IUPHAR/BPS Guide to PHARMACOLOGY..."));
        assert!(out.contains("fixity verified: v1"));
        assert_eq!(interp.registry().len(), 3);
    }

    #[test]
    fn cite_options_parse() {
        let mut interp = Interpreter::new();
        let script = format!(
            "{PAPER_SCRIPT}\ncite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text) | format bibtex | mode pruned | policy union\n"
        );
        let out = interp.run(&script).unwrap();
        assert!(out.contains("@misc{"));
    }

    #[test]
    fn partial_clause() {
        let mut interp = Interpreter::new();
        let script = "\
schema Family(FID:int, FName:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(1, 'A')
insert Family(2, 'B')
insert FamilyIntro(1, 'i')
view V(FID, N) :- Family(FID, N), FamilyIntro(FID, T) | cite CV(D) :- D = 'db'
commit
cite Q(N) :- Family(F, N) | partial
";
        let out = interp.run(script).unwrap();
        assert!(out.contains("coverage: partial (1 uncited)"), "{out}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut interp = Interpreter::new();
        let e = interp.run("schema R(A:int)\nbogus command\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn uncommitted_cite_rejected() {
        let mut interp = Interpreter::new();
        let script = "\
schema R(A:int)
insert R(1)
view V(A) :- R(A) | cite CV(D) :- D = 'x'
cite Q(A) :- R(A)
";
        let e = interp.run(script).unwrap_err();
        assert!(e.message.contains("uncommitted"));
    }

    #[test]
    fn tables_and_dump() {
        let mut interp = Interpreter::new();
        let out = interp
            .run("schema R(A:int, B:text)\ninsert R(1, 'x, y')\ntables\ndump R\n")
            .unwrap();
        assert!(out.contains("R: 1 tuples"));
        assert!(out.contains("\"A:int\",\"B:text\""));
        assert!(out.contains("1,\"x, y\""));
    }

    #[test]
    fn ground_atom_parser() {
        let (name, t) = parse_ground_atom("R(1, 'a\\'b', true, -5)").unwrap();
        assert_eq!(name, "R");
        assert_eq!(t.arity(), 4);
        assert_eq!(t.get(1).unwrap().as_text(), Some("a'b"));
        assert_eq!(t.get(2).unwrap().as_bool(), Some(true));
        assert_eq!(t.get(3).unwrap().as_int(), Some(-5));
        assert!(parse_ground_atom("R(1").is_err());
        assert!(parse_ground_atom("R(1 2)").is_err());
        assert!(parse_ground_atom("R('open)").is_err());
    }

    #[test]
    fn schema_errors() {
        let mut interp = Interpreter::new();
        assert!(interp.run("schema R(A:float)\n").is_err());
        let mut interp = Interpreter::new();
        assert!(interp.run("schema R(A:int) key(3)\n").is_err());
        let mut interp = Interpreter::new();
        assert!(
            interp
                .run("schema R(A:int)\ninsert R(1)\nschema S(B:int)\n")
                .is_err(),
            "schema after data"
        );
    }

    #[test]
    fn load_from_csv_file() {
        let dir = std::env::temp_dir().join("citesys-script-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        std::fs::write(&path, "\"A:int\",\"B:text\"\n1,\"x\"\n2,\"y\"\n").unwrap();
        let mut interp = Interpreter::new();
        let script = format!(
            "schema R(A:int, B:text)\nload R from '{}'\ntables\n",
            path.display()
        );
        let out = interp.run(&script).unwrap();
        assert!(out.contains("loaded 2 tuple(s) into R"));
        assert!(out.contains("R: 2 tuples"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_command_explains_next_cite() {
        let mut interp = Interpreter::new();
        let script = format!(
            "{PAPER_SCRIPT}\ntrace\ncite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)\n"
        );
        let out = interp.run(&script).unwrap();
        assert!(out.contains("tuple (Calcitonin)"), "{out}");
        assert!(out.contains("← chosen by +R"));
        assert!(out.contains("binding 1: CV1(11)·CV3"));
    }

    #[test]
    fn csl_format_clause() {
        let mut interp = Interpreter::new();
        let script = format!(
            "{PAPER_SCRIPT}\ncite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text) | format csl\n"
        );
        let out = interp.run(&script).unwrap();
        assert!(out.contains("\"type\":\"dataset\""));
    }

    #[test]
    fn duplicate_insert_reported() {
        let mut interp = Interpreter::new();
        let out = interp
            .run("schema R(A:int)\ninsert R(1)\ninsert R(1)\n")
            .unwrap();
        assert!(out.contains("(duplicate ignored)"));
    }

    #[test]
    fn delete_works() {
        let mut interp = Interpreter::new();
        let out = interp
            .run("schema R(A:int)\ninsert R(1)\ndelete R(1)\ndelete R(9)\ntables\n")
            .unwrap();
        assert!(out.contains("(no such tuple)"));
        assert!(out.contains("R: 0 tuples"));
    }

    #[test]
    fn hash_inside_quoted_string_is_not_a_comment() {
        let mut interp = Interpreter::new();
        let out = interp
            .run("schema R(A:int, B:text)\ninsert R(1, 'bug #42') # trailing comment\ndump R\n")
            .unwrap();
        assert!(out.contains("bug #42"), "{out}");
        assert_eq!(
            strip_comment("insert R('a\\'#b') # c"),
            "insert R('a\\'#b') "
        );
        assert_eq!(strip_comment("# whole line"), "");
        assert_eq!(strip_comment("no comment"), "no comment");
    }

    #[test]
    fn error_kinds_distinguish_parse_from_citation() {
        // Unknown command: parse error.
        let e = Interpreter::new().run("bogus\n").unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Parse);
        // Malformed query: parse error.
        let e = Interpreter::new()
            .run("schema R(A:int)\ncite Q( :- R\n")
            .unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Parse);
        // Well-formed script, uncoverable query: citation error.
        let script = "\
schema R(A:int)
insert R(1)
view V(A) :- R(A) | cite CV(D) :- D = 'x'
commit
cite Q(B) :- S(B)
";
        let e = Interpreter::new().run(script).unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Citation);
        // Unknown relation on insert: citation (runtime) error.
        let e = Interpreter::new()
            .run("schema R(A:int)\ninsert S(1)\n")
            .unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Citation);
    }

    #[test]
    fn run_line_is_incremental() {
        let mut interp = Interpreter::new();
        assert_eq!(
            interp.run_line("schema R(A:int)").unwrap(),
            "schema R (1 attributes)\n"
        );
        interp.run_line("insert R(1)").unwrap();
        interp
            .run_line("view V(A) :- R(A) | cite CV(D) :- D = 'x'")
            .unwrap();
        interp.run_line("commit").unwrap();
        let out = interp.run_line("cite Q(A) :- R(A)").unwrap();
        assert!(out.contains("1 answer tuple(s) at version 1"), "{out}");
        // Errors do not poison the session.
        assert!(interp.run_line("bogus").is_err());
        let out = interp.run_line("tables").unwrap();
        assert!(out.contains("R: 1 tuples"));
    }

    #[test]
    fn transaction_commits_atomically() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        let out = interp
            .run(
                "begin\n\
                 insert Family(14, 'Ghrelin', 'G1')\n\
                 insert FamilyIntro(14, '4th')\n\
                 delete Family(13, 'Dopamine', 'D1')\n\
                 commit\n\
                 tables\n",
            )
            .unwrap();
        assert!(out.contains("transaction open"), "{out}");
        assert!(
            out.contains("committed version 2 (3 op(s) in one transaction)"),
            "{out}"
        );
        assert!(out.contains("Family: 3 tuples"), "{out}");
        assert!(out.contains("FamilyIntro: 3 tuples"), "{out}");
    }

    #[test]
    fn failed_transaction_rolls_back_everything() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        // The second op violates Family's key(0): the first op must be
        // rolled back too, and no version committed.
        let e = interp
            .run(
                "begin\n\
                 insert FamilyIntro(13, '3rd')\n\
                 insert Family(11, 'Clash', 'X')\n\
                 commit\n",
            )
            .unwrap_err();
        assert!(e.message.contains("transaction rolled back"), "{e}");
        let out = interp.run("tables\ncommit\n").unwrap();
        assert!(out.contains("FamilyIntro: 2 tuples"), "rolled back: {out}");
        assert!(out.contains("committed version 2"), "v2 still free: {out}");
    }

    #[test]
    fn commit_carries_pre_begin_ops_into_the_maintained_views() {
        // Regression: a commit sealing both non-transactional ops (applied
        // before `begin`) and a transaction buffer must delta-maintain the
        // cached service with ALL of them — staging only the buffer would
        // leave the pre-`begin` tuple out of the materialized views and
        // silently serve wrong answers.
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap(); // cite → service cached at v1
        let warm = interp.view_cache_stats().unwrap();
        let out = interp
            .run(
                "insert FamilyIntro(13, '3rd')\n\
                 begin\n\
                 insert Family(14, 'Ghrelin', 'G1')\n\
                 insert FamilyIntro(14, '4th')\n\
                 commit\n\
                 cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)\n",
            )
            .unwrap();
        // All three intros visible: the pre-begin Dopamine intro AND the
        // transactional Ghrelin family+intro.
        assert!(out.contains("3 answer tuple(s) at version 2"), "{out}");
        let s = interp.view_cache_stats().unwrap();
        assert_eq!(
            s.materializations, warm.materializations,
            "carried by delta, not re-materialized: {s:?}"
        );
        assert_eq!(s.drops, 0, "{s:?}");
    }

    #[test]
    fn cite_rejected_inside_open_transaction() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        interp.run_line("begin").unwrap();
        interp.run_line("insert FamilyIntro(13, '3rd')").unwrap();
        let e = interp
            .run_line("cite Q(FName) :- Family(FID, FName, Desc)")
            .unwrap_err();
        assert!(e.message.contains("transaction open"), "{e}");
        // Nested begin is rejected; rollback discards the buffer.
        assert!(interp.run_line("begin").is_err());
        let out = interp.run_line("rollback").unwrap();
        assert!(out.contains("rolled back 1 buffered op(s)"), "{out}");
        assert!(interp.run_line("rollback").is_err(), "nothing open");
        // The buffered insert never landed.
        let out = interp.run_line("tables").unwrap();
        assert!(out.contains("FamilyIntro: 2 tuples"), "{out}");
    }

    #[test]
    fn commit_delta_maintains_the_cached_service() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        let warm = interp.view_cache_stats().expect("service built by cite");
        assert!(warm.materializations > 0);
        assert_eq!(warm.drops, 0);
        // A transactional commit: the service is carried by one batch
        // delta (no view re-materialized, no whole-cache drop), and the
        // next cite reuses the cached plan.
        interp
            .run("begin\ninsert FamilyIntro(13, '3rd')\ncommit\n")
            .unwrap();
        let out = interp
            .run_line("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap();
        assert!(out.contains("2 answer tuple(s) at version 2"), "{out}");
        let s = interp.view_cache_stats().unwrap();
        assert_eq!(
            s.materializations, warm.materializations,
            "no re-materialization across the commit: {s:?}"
        );
        assert!(s.deltas_applied > 0, "{s:?}");
        assert_eq!(s.drops, 0, "{s:?}");
        let stats = interp.plan_cache_stats();
        assert!(stats.hits >= 1, "plan survived the commit: {stats:?}");
    }

    #[test]
    fn repeated_cites_reuse_the_plan_cache() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        // Same query shape at different λ-constants, repeatedly.
        for fid in [11, 12, 11, 13] {
            interp
                .run_line(&format!(
                    "cite Q(FName) :- Family({fid}, FName, Desc), FamilyIntro({fid}, Text)"
                ))
                .unwrap();
        }
        let stats = interp.plan_cache_stats();
        assert_eq!(stats.misses, 2, "paper query + the parameterized shape");
        assert!(stats.hits >= 3, "λ-variants must share one plan: {stats:?}");
    }

    #[test]
    fn export_import_plans_round_trip() {
        let mut warm = Interpreter::new();
        warm.run(PAPER_SCRIPT).unwrap();
        let exported = warm.export_plans();
        assert!(exported.starts_with("citesys-plan-cache v1"));

        // A second session with the same views: imported plans serve the
        // cite without a fresh search.
        let setup_only: String = PAPER_SCRIPT
            .lines()
            .filter(|l| !l.starts_with("cite ") && !l.starts_with("verify"))
            .collect::<Vec<_>>()
            .join("\n");
        let mut cold = Interpreter::new();
        cold.run(&setup_only).unwrap();
        let n = cold.import_plans(&exported).unwrap();
        assert_eq!(n, 1);
        cold.run_line("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap();
        let stats = cold.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "served from import");
    }

    #[test]
    fn staged_plan_import_survives_view_registration() {
        let mut warm = Interpreter::new();
        warm.run(PAPER_SCRIPT).unwrap();
        let exported = warm.export_plans();

        // Staging before the script runs (the serve --plan-cache shape):
        // the view commands swap caches, then the first cite imports.
        let mut interp = Interpreter::new();
        interp.stage_plan_import(exported);
        let out = interp.run(PAPER_SCRIPT).unwrap();
        assert!(out.contains("loaded 1 cached plan(s)"), "{out}");
        let stats = interp.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "{stats:?}");
    }

    #[test]
    fn export_preserves_staged_plans_when_no_cite_ran() {
        let mut warm = Interpreter::new();
        warm.run(PAPER_SCRIPT).unwrap();
        let exported = warm.export_plans();

        // A serve session that loads a plan file, does some non-cite work
        // and exits: save-on-exit must write the staged plans back, not
        // an empty live cache.
        let mut idle = Interpreter::new();
        idle.stage_plan_import(exported.clone());
        idle.run_line("schema R(A:int)").unwrap();
        idle.run_line("insert R(1)").unwrap();
        assert!(idle.has_pending_plan_import());
        assert_eq!(idle.export_plans(), exported, "staged plans preserved");

        // Once a cite consumes the import, export reflects the live cache.
        let mut cited = Interpreter::new();
        cited.stage_plan_import(exported.clone());
        cited.run(PAPER_SCRIPT).unwrap();
        assert!(!cited.has_pending_plan_import());
        assert!(cited.export_plans().starts_with("citesys-plan-cache v1"));
    }

    #[test]
    fn corrupt_plan_import_reports_citation_error() {
        let mut interp = Interpreter::new();
        assert!(interp.import_plans("garbage").is_err());
        interp.stage_plan_import("garbage".to_string());
        let e = interp.run(PAPER_SCRIPT).unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Citation);
        assert!(e.message.contains("plan-cache file"), "{e}");
    }

    #[test]
    fn view_registration_invalidates_plans() {
        let mut interp = Interpreter::new();
        interp
            .run(
                "schema R(A:int)\nschema S(A:int)\ninsert R(1)\ninsert S(1)\n\
                 view VR(A) :- R(A) | cite CVR(D) :- D = 'r'\ncommit\n",
            )
            .unwrap();
        // S is uncoverable; the empty plan gets cached.
        assert!(interp.run_line("cite Q(A) :- S(A)").is_err());
        assert!(interp.run_line("cite Q(A) :- S(A)").is_err());
        // Registering a covering view must clear the cached empty plan.
        interp
            .run_line("view VS(A) :- S(A) | cite CVS(D) :- D = 's'")
            .unwrap();
        let out = interp.run_line("cite Q(A) :- S(A)").unwrap();
        assert!(out.contains("1 answer tuple(s)"), "{out}");
    }
}

//! The line-oriented script language driving the whole citation stack.
//!
//! The implementation lives in [`citesys_net::script`] (one interpreter
//! shared by the script runner, the stdin REPL and the TCP server —
//! commands are parsed by [`citesys_net::protocol`], so the front ends
//! cannot drift) and is re-exported here for source compatibility:
//! `citesys::script::Interpreter` keeps working.

pub use citesys_net::script::{
    Interpreter, ScriptError, ScriptErrorKind, SessionControl, SessionReply, SharedStore,
    StoreStats,
};

//! `citesys` — the command-line front end.
//!
//! ```console
//! $ citesys script.cts          # run a script file
//! $ citesys -                   # read the script from stdin
//! $ citesys serve               # interactive loop: one service, many cites
//! ```
//!
//! See [`citesys::script`] for the command language.
//!
//! Exit codes: `0` success (including `--help`), `1` I/O error, `2` usage
//! error, `3` script parse error, `4` citation/runtime error.

use std::io::{BufRead, Read, Write};

use citesys::script::{Interpreter, ScriptError, ScriptErrorKind};

const EXIT_IO: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_PARSE: i32 = 3;
const EXIT_CITE: i32 = 4;

fn usage() -> String {
    "usage: citesys <script-file | - | serve>\n\n\
     modes:\n  \
     <script-file>  run a script file\n  \
     -              read a whole script from stdin\n  \
     serve          interactive: execute each stdin line as it arrives,\n                 \
     reusing one citation service (warm plan cache) per session\n\n\
     commands:\n  \
     schema Name(attr:type, …) [key(i, …)]\n  \
     insert Name(v, …) / delete Name(v, …)\n  \
     view <rule> | cite <rule> [| static k=v]…\n  \
     commit\n  \
     cite <query> [| format text|bibtex|ris|xml|json|csl] [| mode formal|pruned] [| policy minsize|union|first] [| partial]\n  \
     verify / tables / dump Name / load Name from '<path>' / trace\n\n\
     exit codes: 0 ok, 1 i/o error, 2 usage, 3 script parse error, 4 citation error"
        .to_string()
}

fn exit_code_for(e: &ScriptError) -> i32 {
    match e.kind {
        ScriptErrorKind::Parse => EXIT_PARSE,
        ScriptErrorKind::Citation => EXIT_CITE,
    }
}

/// The interactive loop: executes each line as it arrives against one
/// persistent interpreter (and thus one warm plan cache). Errors are
/// reported but do not end the session.
fn serve() -> i32 {
    let stdin = std::io::stdin();
    let mut interp = Interpreter::new();
    let interactive = std::env::var_os("CITESYS_SERVE_SILENT").is_none();
    if interactive {
        eprintln!("citesys serve — one command per line, Ctrl-D to exit");
    }
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error reading stdin: {e}");
                return EXIT_IO;
            }
        };
        match interp.run_line(&line) {
            Ok(out) => {
                print!("{out}");
                let _ = std::io::stdout().flush();
            }
            Err(e) => eprintln!("error: {}", e.message),
        }
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") => {
            println!("{}", usage());
            return;
        }
        None => {
            eprintln!("{}", usage());
            std::process::exit(EXIT_USAGE);
        }
        Some("serve") => {
            std::process::exit(serve());
        }
        Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error reading stdin: {e}");
                std::process::exit(EXIT_IO);
            }
            buf
        }
        Some(flag) if flag.starts_with('-') => {
            eprintln!("unknown option '{flag}'\n\n{}", usage());
            std::process::exit(EXIT_USAGE);
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(EXIT_IO);
            }
        },
    };

    let mut interp = Interpreter::new();
    match interp.run(&source) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code_for(&e));
        }
    }
}

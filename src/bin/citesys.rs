//! `citesys` — the command-line front end.
//!
//! ```console
//! $ citesys script.cts                      # run a script file
//! $ citesys -                               # read the script from stdin
//! $ citesys serve                           # interactive loop: one service, many cites
//! $ citesys serve --plan-cache plans.txt    # …with rewrite plans persisted across runs
//! $ citesys plans export session.cts plans.txt
//! $ citesys plans import plans.txt
//! ```
//!
//! See [`citesys::script`] for the command language.
//!
//! Exit codes: `0` success (including `--help`), `1` I/O error, `2` usage
//! error, `3` script parse error, `4` citation/runtime error.

use std::io::{BufRead, Read, Write};

use citesys::script::{Interpreter, ScriptError, ScriptErrorKind};

const EXIT_IO: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_PARSE: i32 = 3;
const EXIT_CITE: i32 = 4;

fn usage() -> String {
    "usage: citesys <script-file | - | serve | plans>\n\n\
     modes:\n  \
     <script-file>  run a script file\n  \
     -              read a whole script from stdin\n  \
     serve [--plan-cache <path>]\n                 \
     interactive: execute each stdin line as it arrives,\n                 \
     reusing one citation service (warm plan cache) per session.\n                 \
     --plan-cache loads cached rewrite plans from <path> at the\n                 \
     first cite (after the session's view registrations) and saves\n                 \
     the cache back on exit\n  \
     plans export <script-file> <plans-file>\n                 \
     run a script (its cites populate the plan cache), then write\n                 \
     the cache to <plans-file>\n  \
     plans import <plans-file>\n                 \
     validate a plan-cache file and print a summary\n\n\
     commands:\n  \
     schema Name(attr:type, …) [key(i, …)]\n  \
     insert Name(v, …) / delete Name(v, …)\n  \
     view <rule> | cite <rule> [| static k=v]…\n  \
     begin          open a transaction: insert/delete lines buffer until\n                 \
     commit applies them atomically as one changeset (rollback discards)\n  \
     commit\n  \
     cite <query> [| format text|bibtex|ris|xml|json|csl] [| mode formal|pruned] [| policy minsize|union|first] [| partial]\n  \
     verify / tables / dump Name / load Name from '<path>' / trace\n\n\
     plan files pin the registry they were exported under: pair a plan\n\
     file with the script that registers the same views\n\n\
     exit codes: 0 ok, 1 i/o error, 2 usage, 3 script parse error, 4 citation error"
        .to_string()
}

fn exit_code_for(e: &ScriptError) -> i32 {
    match e.kind {
        ScriptErrorKind::Parse => EXIT_PARSE,
        ScriptErrorKind::Citation => EXIT_CITE,
    }
}

/// The interactive loop: executes each line as it arrives against one
/// persistent interpreter (and thus one warm plan cache). Errors are
/// reported but do not end the session. With `plan_cache`, previously
/// saved rewrite plans are staged for import and the cache is written
/// back at end of input.
fn serve(plan_cache: Option<&str>) -> i32 {
    let stdin = std::io::stdin();
    let mut interp = Interpreter::new();
    let interactive = std::env::var_os("CITESYS_SERVE_SILENT").is_none();
    if let Some(path) = plan_cache {
        match std::fs::read_to_string(path) {
            Ok(text) => interp.stage_plan_import(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if interactive {
                    eprintln!("plan cache {path} not found; starting cold");
                }
            }
            Err(e) => {
                eprintln!("error reading plan cache {path}: {e}");
                return EXIT_IO;
            }
        }
    }
    if interactive {
        eprintln!("citesys serve — one command per line, Ctrl-D to exit");
    }
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error reading stdin: {e}");
                return EXIT_IO;
            }
        };
        match interp.run_line(&line) {
            Ok(out) => {
                print!("{out}");
                let _ = std::io::stdout().flush();
            }
            Err(e) => eprintln!("error: {}", e.message),
        }
    }
    if let Some(path) = plan_cache {
        // A session that never cited leaves the staged import unconsumed
        // (and its own cache empty): keep the file as it was instead of
        // rewriting it. (`export_plans` would return the staged text
        // verbatim in this state anyway — skipping the write just avoids
        // touching the file at all.)
        if interp.has_pending_plan_import() {
            if interactive {
                eprintln!("no cite ran; leaving plan cache {path} untouched");
            }
            return 0;
        }
        if let Err(e) = std::fs::write(path, interp.export_plans()) {
            eprintln!("error writing plan cache {path}: {e}");
            return EXIT_IO;
        }
        if interactive {
            eprintln!("plan cache saved to {path}");
        }
    }
    0
}

/// `plans export <script> <out>` / `plans import <file>`.
fn plans(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("export") => {
            let [_, script_path, out_path] = args else {
                eprintln!("usage: citesys plans export <script-file> <plans-file>");
                return EXIT_USAGE;
            };
            let source = match std::fs::read_to_string(script_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error reading {script_path}: {e}");
                    return EXIT_IO;
                }
            };
            let mut interp = Interpreter::new();
            if let Err(e) = interp.run(&source) {
                eprintln!("error: {e}");
                return exit_code_for(&e);
            }
            let text = interp.export_plans();
            let count = interp.plan_cache_stats().misses;
            if let Err(e) = std::fs::write(out_path, text) {
                eprintln!("error writing {out_path}: {e}");
                return EXIT_IO;
            }
            println!("exported plan cache ({count} fresh search(es)) to {out_path}");
            0
        }
        Some("import") => {
            let [_, in_path] = args else {
                eprintln!("usage: citesys plans import <plans-file>");
                return EXIT_USAGE;
            };
            let text = match std::fs::read_to_string(in_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error reading {in_path}: {e}");
                    return EXIT_IO;
                }
            };
            match Interpreter::new().import_plans(&text) {
                Ok(n) => {
                    println!("{in_path}: ok, {n} plan(s)");
                    0
                }
                Err(e) => {
                    eprintln!("{in_path}: {e}");
                    EXIT_PARSE
                }
            }
        }
        _ => {
            eprintln!("usage: citesys plans <export|import> …\n\n{}", usage());
            EXIT_USAGE
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") => {
            println!("{}", usage());
            return;
        }
        None => {
            eprintln!("{}", usage());
            std::process::exit(EXIT_USAGE);
        }
        Some("serve") => {
            let plan_cache = match args.get(1).map(String::as_str) {
                Some("--plan-cache") => match args.get(2) {
                    Some(path) if args.len() == 3 => Some(path.as_str()),
                    _ => {
                        eprintln!("usage: citesys serve [--plan-cache <path>]");
                        std::process::exit(EXIT_USAGE);
                    }
                },
                Some(other) => {
                    eprintln!("unknown serve option '{other}'\n\n{}", usage());
                    std::process::exit(EXIT_USAGE);
                }
                None => None,
            };
            std::process::exit(serve(plan_cache));
        }
        Some("plans") => {
            std::process::exit(plans(&args[1..]));
        }
        Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error reading stdin: {e}");
                std::process::exit(EXIT_IO);
            }
            buf
        }
        Some(flag) if flag.starts_with('-') => {
            eprintln!("unknown option '{flag}'\n\n{}", usage());
            std::process::exit(EXIT_USAGE);
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(EXIT_IO);
            }
        },
    };

    let mut interp = Interpreter::new();
    match interp.run(&source) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code_for(&e));
        }
    }
}

//! `citesys` — the command-line front end.
//!
//! ```console
//! $ citesys script.cts          # run a script file
//! $ citesys -                   # read the script from stdin
//! ```
//!
//! See [`citesys::script`] for the command language.

use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => {
            eprintln!(
                "usage: citesys <script-file | ->\n\n\
                 commands:\n  \
                 schema Name(attr:type, …) [key(i, …)]\n  \
                 insert Name(v, …) / delete Name(v, …)\n  \
                 view <rule> | cite <rule> [| static k=v]…\n  \
                 commit\n  \
                 cite <query> [| format text|bibtex|ris|xml|json] [| mode formal|pruned] [| policy minsize|union|first] [| partial]\n  \
                 verify / tables / dump Name"
            );
            std::process::exit(2);
        }
        Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error reading stdin: {e}");
                std::process::exit(1);
            }
            buf
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(1);
            }
        },
    };

    let mut interp = citesys::script::Interpreter::new();
    match interp.run(&source) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! `citesys` — the command-line front end.
//!
//! ```console
//! $ citesys script.cts                      # run a script file
//! $ citesys -                               # read the script from stdin
//! $ citesys serve                           # interactive loop: one service, many cites
//! $ citesys serve --data-dir ./data         # …durable: WAL + checkpoints, warm restart
//! $ citesys serve --listen 127.0.0.1:4242 --data-dir ./data
//! $ citesys client 127.0.0.1:4242 script.cts
//! $ citesys ingest ./data ./dumps           # bulk-load CSV/JSONL dumps, pin datasets.lock
//! $ citesys dataset verify ./data           # re-hash pinned sources + re-digest fixity
//! $ citesys checkpoint ./data               # fold the WAL into a fresh checkpoint
//! $ citesys recover ./data                  # report what a restart would recover
//! $ citesys compact ./data --keep 16        # trim time-travel history to a window
//! $ citesys wal dump ./data                 # print the WAL's changesets
//! $ citesys wal compact ./data --keep 16    # alias for 'compact'
//! $ citesys plans export session.cts plans.txt
//! $ citesys plans import plans.txt
//! ```
//!
//! See [`citesys::script`] for the command language and
//! [`citesys::net`] for the wire protocol.
//!
//! Exit codes: `0` success (including `--help`), `1` I/O error, `2` usage
//! error, `3` script parse error, `4` citation/runtime error, `5` the
//! requested history was compacted away, `6` dataset verification failed
//! (a pinned source or fixity digest no longer matches).

use std::io::{BufRead, Read, Write};
use std::time::Duration;

use citesys::net::client::{run_script, run_script_pipelined};
use citesys::net::persist::PlanSaver;
use citesys::net::script::{
    Interpreter, ScriptError, ScriptErrorKind, SessionControl, SharedStore,
};
use citesys::net::server::{Server, ServerConfig};
use citesys_core::CitationService;
use citesys_storage::Wal;

const EXIT_IO: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_PARSE: i32 = 3;
const EXIT_CITE: i32 = 4;
/// The requested versions were compacted into a checkpoint and are no
/// longer individually reconstructable (distinct from a plain I/O error
/// so scripts can tell "gone by policy" from "broken").
const EXIT_COMPACTED: i32 = 5;
/// Dataset verification failed: a pinned source file is missing or was
/// modified, or the store's fixity digest drifted from the manifest.
/// Distinct from a citation error so pipelines can alert on tamper
/// specifically.
const EXIT_TAMPER: i32 = 6;

fn usage() -> String {
    "usage: citesys <script-file | - | serve | client | ingest | dataset | checkpoint | recover | compact | wal | plans>\n\n\
     modes:\n  \
     <script-file>  run a script file\n  \
     -              read a whole script from stdin\n  \
     serve [--data-dir <path>] [--plan-cache <path>] [--listen <addr>]\n        \
     [--follow <addr>] [--workers <n>] [--idle-timeout <secs>] [--commit-window-ms <ms>]\n        \
     [--event-loop] [--max-connections <n>]\n        \
     [--checkpoint-every <records>] [--retain-checkpoints <n>]\n        \
     [--metrics <addr>] [--slow-cite-ms <n>]\n                 \
     interactive: execute each stdin line as it arrives,\n                 \
     reusing one citation service (warm plan cache) per session.\n                 \
     --data-dir makes the store durable: the newest checkpoint is\n                 \
     recovered at startup (data, views and plans come back warm),\n                 \
     every commit is write-ahead-logged and fsynced before it is\n                 \
     acknowledged, and the 'checkpoint' command folds the log into\n                 \
     a fresh snapshot.\n                 \
     --plan-cache (deprecated: use --data-dir, which persists plans\n                 \
     and everything else) loads cached rewrite plans from <path> at\n                 \
     the first cite and keeps the file saved after every change.\n                 \
     --listen serves the same command language over TCP instead:\n                 \
     concurrent sessions share one store, and racing begin…commit\n                 \
     transactions group-commit into one snapshot swap per window\n                 \
     (stop it with the 'shutdown' command).\n                 \
     --follow makes this server a read replica of the primary at\n                 \
     <addr>: it bootstraps from a shipped checkpoint, tails the\n                 \
     primary's WAL, serves cite/read commands at its replicated\n                 \
     version and rejects writes with a readonly error (requires\n                 \
     --listen and --data-dir; a restart resumes from the local WAL)\n                 \
     --event-loop swaps the worker pool for the event-driven\n                 \
     transport: the same workers multiplex thousands of sockets\n                 \
     through an epoll readiness loop, and clients may pipeline\n                 \
     commands (optionally tagged '@t cmd', tag echoed in the\n                 \
     response frame); --max-connections caps held sockets (over it,\n                 \
     connections are refused with 'err proto server full')\n                 \
     --checkpoint-every writes a checkpoint automatically once the WAL\n                 \
     holds that many records; --retain-checkpoints keeps the newest <n>\n                 \
     superseded checkpoints as time-travel anchors so 'cite … @ <version>'\n                 \
     reaches back past checkpoints (both require --data-dir)\n                 \
     --metrics serves Prometheus text exposition at\n                 \
     http://<addr>/metrics (cite-stage latency histograms, WAL/commit\n                 \
     timings, replication lag gauges) and turns latency timings on;\n                 \
     --slow-cite-ms logs every cite at or over <n> ms to stderr as one\n                 \
     'slow-cite' line with its per-stage span breakdown and\n                 \
     plan-cache hit/miss\n  \
     client [--pipeline] <addr> [script-file]\n                 \
     run a script (or stdin) against a serve --listen server and\n                 \
     print the responses; --pipeline sends every line up front\n                 \
     (tagged with its line number) and reads the responses in one\n                 \
     pass — one round trip instead of one per line\n  \
     ingest <data-dir> <dump-dir> [--as <dataset>] [--manifest <file>] [--batch <records>]\n                 \
     stream every <Relation>.csv / <Relation>.jsonl dump under\n                 \
     <dump-dir> into the durable store in batch-sized commits (each\n                 \
     WAL-logged and fsynced like any other commit), then pin the\n                 \
     load in <data-dir>/datasets.lock: per-source sha256, relation\n                 \
     fixity digest and the commit version range, with a line in the\n                 \
     append-only datasets.audit log. --as names the dataset\n                 \
     (default: the dump directory's name); --batch sets the tuples\n                 \
     per commit (default 10000, bounds peak memory)\n  \
     dataset verify <data-dir> [--manifest <file>]\n                 \
     re-hash every pinned source file and re-digest the store at\n                 \
     each dataset's recorded version; any mismatch (tampered or\n                 \
     missing source, fixity drift) exits 6 and names the failure\n  \
     checkpoint <data-dir>\n                 \
     recover the directory, fold the write-ahead log into a fresh\n                 \
     checkpoint, and reset the log\n  \
     recover <data-dir>\n                 \
     recover the directory and report what came back (version,\n                 \
     tables, views, plans, replayed log records) without serving\n  \
     compact <data-dir> [--keep <versions>]\n                 \
     fold the WAL into a fresh checkpoint and prune time-travel\n                 \
     anchors below the newest <versions> versions (default 0: only\n                 \
     the latest version stays reconstructable)\n  \
     wal dump <data-dir> [--since <version>]\n                 \
     print the write-ahead log's records as changeset text\n                 \
     (--since skips records at or below <version>; asking below the\n                 \
     last checkpoint exits 5 and names the oldest retained version)\n  \
     wal compact <data-dir> [--keep <versions>]\n                 \
     alias for 'compact'\n  \
     plans export <script-file> <plans-file>\n                 \
     run a script (its cites populate the plan cache), then write\n                 \
     the cache to <plans-file>\n  \
     plans import <plans-file>\n                 \
     validate a plan-cache file and print a summary\n\n\
     commands:\n  \
     schema Name(attr:type, …) [key(i, …)]\n  \
     insert Name(v, …) / delete Name(v, …)\n  \
     view <rule> | cite <rule> [| static k=v]…\n  \
     begin          open a transaction: insert/delete lines buffer until\n                 \
     commit applies them atomically as one changeset (rollback discards)\n  \
     commit\n  \
     cite <query> [@ <version>] [| format text|bibtex|ris|xml|json|csl] [| mode formal|pruned] [| policy minsize|union|first] [| partial]\n                 \
     '@ <version>' cites against the committed snapshot at that\n                 \
     version (time travel); the citation is stamped with it\n  \
     verify / tables / dump Name / load Name from '<path>' [key(i, …)] / trace\n  \
     ingest '<dir>' [as <dataset>] [manifest '<file>'] [batch <n>]\n                 \
     stream the directory's CSV/JSONL dumps into the store in\n                 \
     batch-sized commits and pin the load in the dataset registry\n  \
     datasets       list the loads registered in the store's datasets.lock\n  \
     dataset verify ['<manifest>']   re-hash pinned sources and re-check fixity\n  \
     stats          commit/swap/group-window, plan/view-cache, WAL and\n                 \
     history counters (history_base_version, checkpoints_retained),\n                 \
     sorted by name\n  \
     metrics        the full metrics registry in Prometheus text\n                 \
     exposition format (the serve --metrics scrape payload)\n  \
     checkpoint     snapshot the durable store and reset the WAL (--data-dir)\n  \
     snapshot [@ <version>]   print the sha256 fixity digest of a version\n  \
     compact [<window>]       trim history to the newest <window> versions\n  \
     quit / shutdown (interactive and network sessions)\n\n\
     plan files pin the registry they were exported under: pair a plan\n\
     file with the script that registers the same views\n\n\
     exit codes: 0 ok, 1 i/o error, 2 usage, 3 script parse error, 4 citation error,\n\
     5 requested history was compacted away, 6 dataset verification failed"
        .to_string()
}

fn exit_code_for(e: &ScriptError) -> i32 {
    match e.kind {
        ScriptErrorKind::Parse => EXIT_PARSE,
        ScriptErrorKind::Citation | ScriptErrorKind::Readonly => EXIT_CITE,
    }
}

/// Options accepted by `citesys serve`.
struct ServeOpts {
    plan_cache: Option<String>,
    data_dir: Option<String>,
    listen: Option<String>,
    follow: Option<String>,
    workers: Option<usize>,
    idle_timeout: Option<u64>,
    commit_window_ms: Option<u64>,
    event_loop: bool,
    max_connections: Option<usize>,
    checkpoint_every: Option<u64>,
    retain_checkpoints: Option<usize>,
    metrics: Option<String>,
    slow_cite_ms: Option<u64>,
}

fn parse_serve_opts(args: &[String]) -> Result<ServeOpts, String> {
    let mut opts = ServeOpts {
        plan_cache: None,
        data_dir: None,
        listen: None,
        follow: None,
        workers: None,
        idle_timeout: None,
        commit_window_ms: None,
        event_loop: false,
        max_connections: None,
        checkpoint_every: None,
        retain_checkpoints: None,
        metrics: None,
        slow_cite_ms: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--plan-cache" => opts.plan_cache = Some(take("--plan-cache")?),
            "--data-dir" => opts.data_dir = Some(take("--data-dir")?),
            "--listen" => opts.listen = Some(take("--listen")?),
            "--follow" => opts.follow = Some(take("--follow")?),
            "--workers" => {
                opts.workers = Some(
                    take("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs a number".to_string())?,
                )
            }
            "--idle-timeout" => {
                opts.idle_timeout = Some(
                    take("--idle-timeout")?
                        .parse()
                        .map_err(|_| "--idle-timeout needs seconds".to_string())?,
                )
            }
            "--commit-window-ms" => {
                opts.commit_window_ms = Some(
                    take("--commit-window-ms")?
                        .parse()
                        .map_err(|_| "--commit-window-ms needs milliseconds".to_string())?,
                )
            }
            "--event-loop" => opts.event_loop = true,
            "--checkpoint-every" => {
                let every: u64 = take("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every needs a record count".to_string())?;
                if every == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                opts.checkpoint_every = Some(every);
            }
            "--retain-checkpoints" => {
                opts.retain_checkpoints = Some(
                    take("--retain-checkpoints")?
                        .parse()
                        .map_err(|_| "--retain-checkpoints needs a number".to_string())?,
                )
            }
            "--max-connections" => {
                opts.max_connections = Some(
                    take("--max-connections")?
                        .parse()
                        .map_err(|_| "--max-connections needs a number".to_string())?,
                )
            }
            "--metrics" => opts.metrics = Some(take("--metrics")?),
            "--slow-cite-ms" => {
                opts.slow_cite_ms = Some(
                    take("--slow-cite-ms")?
                        .parse()
                        .map_err(|_| "--slow-cite-ms needs milliseconds".to_string())?,
                )
            }
            other => return Err(format!("unknown serve option '{other}'")),
        }
    }
    // The pool/timeout/window knobs configure the TCP server; accepting
    // them for the stdin REPL would silently ignore them.
    if opts.listen.is_none() {
        for (flag, set) in [
            ("--workers", opts.workers.is_some()),
            ("--idle-timeout", opts.idle_timeout.is_some()),
            ("--commit-window-ms", opts.commit_window_ms.is_some()),
            ("--event-loop", opts.event_loop),
            ("--max-connections", opts.max_connections.is_some()),
        ] {
            if set {
                return Err(format!("{flag} requires --listen <addr>"));
            }
        }
    }
    // The connection cap is an event-loop knob; the blocking pool's cap
    // is --workers.
    if opts.max_connections.is_some() && !opts.event_loop {
        return Err(
            "--max-connections requires --event-loop (the blocking pool is capped \
                    by --workers)"
                .into(),
        );
    }
    // Checkpoint cadence and anchor retention are durability knobs:
    // without a data dir there is no WAL to measure or checkpoint to
    // archive, so accepting them would silently do nothing.
    if opts.data_dir.is_none() {
        for (flag, set) in [
            ("--checkpoint-every", opts.checkpoint_every.is_some()),
            ("--retain-checkpoints", opts.retain_checkpoints.is_some()),
        ] {
            if set {
                return Err(format!("{flag} requires --data-dir <path>"));
            }
        }
    }
    // A follower serves reads over TCP and must be able to resume from
    // its own WAL after a restart, so both --listen and --data-dir are
    // mandatory with --follow.
    if opts.follow.is_some() {
        if opts.listen.is_none() {
            return Err("--follow requires --listen <addr> (replicas serve reads over TCP)".into());
        }
        if opts.data_dir.is_none() {
            return Err(
                "--follow requires --data-dir <path> (replicas persist shipped records \
                 to their own WAL so a restart resumes from the local version)"
                    .into(),
            );
        }
    }
    // --plan-cache is the deprecated plans-only shim; --data-dir
    // persists plans as part of its checkpoints. Combining them would
    // write the same plans twice with unclear precedence.
    if opts.plan_cache.is_some() && opts.data_dir.is_some() {
        return Err(
            "--plan-cache is deprecated and superseded by --data-dir (which persists \
             plans inside its checkpoints); use --data-dir alone"
                .to_string(),
        );
    }
    if opts.plan_cache.is_some() {
        eprintln!(
            "warning: --plan-cache is deprecated; use --data-dir for full durability \
             (see MIGRATION.md)"
        );
    }
    Ok(opts)
}

/// `serve --listen`: the TCP front end. Blocks until a client issues
/// `shutdown`.
fn serve_tcp(opts: &ServeOpts) -> i32 {
    let mut config = ServerConfig {
        addr: opts.listen.clone().expect("caller checked"),
        plan_cache: opts.plan_cache.clone().map(Into::into),
        data_dir: opts.data_dir.clone().map(Into::into),
        follow: opts.follow.clone(),
        ..Default::default()
    };
    if let Some(w) = opts.workers {
        config.workers = w;
    }
    if let Some(s) = opts.idle_timeout {
        config.idle_timeout = Duration::from_secs(s);
    }
    if let Some(ms) = opts.commit_window_ms {
        config.commit_window = Duration::from_millis(ms);
    }
    config.event_loop = opts.event_loop;
    if let Some(n) = opts.max_connections {
        config.max_connections = n;
    }
    config.checkpoint_every = opts.checkpoint_every;
    if let Some(n) = opts.retain_checkpoints {
        config.retain_checkpoints = n;
    }
    config.metrics = opts.metrics.clone();
    config.slow_cite_ms = opts.slow_cite_ms;
    let max_connections = config.max_connections;
    let server = match Server::spawn(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error starting server: {e}");
            return EXIT_IO;
        }
    };
    if let Some(primary) = &opts.follow {
        // Parsed by scripts/CI to confirm follower mode engaged.
        println!("following {primary}");
    }
    if opts.event_loop {
        // Parsed by scripts/CI to confirm the transport in use.
        println!("event loop enabled (max {max_connections} connections)");
    }
    if let Some(addr) = server.metrics_addr() {
        // Parsed by scripts/CI to discover the scrape endpoint.
        println!("metrics on {addr}");
    }
    // Parsed by scripts/CI to discover an ephemeral port.
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.wait();
    eprintln!("server stopped");
    0
}

/// The interactive stdin loop: executes each line as it arrives against
/// one persistent interpreter (and thus one warm plan cache). Errors are
/// reported but do not end the session. With `plan_cache`, previously
/// saved rewrite plans are staged for import and the file is re-saved
/// **after every change** — an interrupted session (SIGINT, killed
/// terminal) keeps its warm cache on disk.
fn serve_stdin(opts: &ServeOpts) -> i32 {
    let (plan_cache, data_dir) = (opts.plan_cache.as_deref(), opts.data_dir.as_deref());
    let stdin = std::io::stdin();
    let interactive = std::env::var_os("CITESYS_SERVE_SILENT").is_none();
    let mut interp = match data_dir {
        Some(dir) => match SharedStore::open_durable_shared_with_retention(
            dir,
            opts.retain_checkpoints.unwrap_or(0),
        ) {
            Ok(shared) => {
                {
                    let mut sh = shared.lock();
                    sh.set_checkpoint_every(opts.checkpoint_every);
                    if interactive {
                        eprintln!(
                            "durable store at {dir}: {} wal record(s) pending",
                            sh.wal_records()
                        );
                    }
                }
                Interpreter::with_store(shared)
            }
            Err(e) => {
                eprintln!("error opening data dir {dir}: {e}");
                return EXIT_IO;
            }
        },
        None => Interpreter::new(),
    };
    interp.shared().lock().set_slow_cite_ms(opts.slow_cite_ms);
    let metrics_shutdown = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let metrics_thread = match &opts.metrics {
        Some(addr) => {
            // Scraping without timings would expose empty histograms.
            interp.shared().lock().obs().set_timings_enabled(true);
            match citesys::net::spawn_metrics_server(
                addr,
                std::sync::Arc::clone(interp.shared()),
                std::sync::Arc::clone(&metrics_shutdown),
            ) {
                Ok((bound, handle)) => {
                    if interactive {
                        eprintln!("metrics on {bound}");
                    }
                    Some(handle)
                }
                Err(e) => {
                    eprintln!("error starting metrics endpoint on {addr}: {e}");
                    return EXIT_IO;
                }
            }
        }
        None => None,
    };
    let saver = match plan_cache {
        Some(path) => {
            match std::fs::read_to_string(path) {
                Ok(text) => interp.stage_plan_import(text),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    if interactive {
                        eprintln!("plan cache {path} not found; starting cold");
                    }
                }
                Err(e) => {
                    eprintln!("error reading plan cache {path}: {e}");
                    return EXIT_IO;
                }
            }
            Some(PlanSaver::new(path))
        }
        None => None,
    };
    if interactive {
        eprintln!("citesys serve — one command per line, Ctrl-D to exit");
    }
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error reading stdin: {e}");
                return EXIT_IO;
            }
        };
        match interp.run_session_line(&line) {
            Ok(reply) => {
                print!("{}", reply.output);
                let _ = std::io::stdout().flush();
                if reply.control != SessionControl::Continue {
                    break;
                }
            }
            Err(e) => eprintln!("error: {}", e.message),
        }
        // Durability: persist plan-cache changes as they happen, not
        // just at clean end-of-input.
        if let Some(saver) = &saver {
            if let Err(e) = saver.maybe_save(interp.shared()) {
                eprintln!("error writing plan cache {}: {e}", saver.path().display());
            }
        }
    }
    metrics_shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(handle) = metrics_thread {
        let _ = handle.join();
    }
    if let Some(saver) = &saver {
        if interp.has_pending_plan_import() {
            // A session that never cited leaves the staged import
            // unconsumed (and its own cache empty): keep the file as it
            // was instead of rewriting it.
            if interactive {
                eprintln!(
                    "no cite ran; leaving plan cache {} untouched",
                    saver.path().display()
                );
            }
            return 0;
        }
        match saver.maybe_save(interp.shared()) {
            Ok(_) => {
                if interactive {
                    eprintln!("plan cache saved to {}", saver.path().display());
                }
            }
            Err(e) => {
                eprintln!("error writing plan cache {}: {e}", saver.path().display());
                return EXIT_IO;
            }
        }
    }
    0
}

/// `client [--pipeline] <addr> [script-file]`.
fn client(args: &[String]) -> i32 {
    let (pipeline, args) = match args.first().map(String::as_str) {
        Some("--pipeline") => (true, &args[1..]),
        _ => (false, args),
    };
    let Some(addr) = args.first() else {
        eprintln!("usage: citesys client [--pipeline] <addr> [script-file]");
        return EXIT_USAGE;
    };
    if args.len() > 2 {
        eprintln!("usage: citesys client [--pipeline] <addr> [script-file]");
        return EXIT_USAGE;
    }
    let script = match args.get(1) {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                return EXIT_IO;
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error reading stdin: {e}");
                return EXIT_IO;
            }
            buf
        }
    };
    let mut out = std::io::stdout();
    let mut err = std::io::stderr();
    if pipeline {
        run_script_pipelined(addr, &script, &mut out, &mut err)
    } else {
        run_script(addr, &script, &mut out, &mut err)
    }
}

/// `checkpoint <data-dir>`: recover and fold the WAL into a fresh
/// checkpoint.
fn checkpoint_cmd(args: &[String]) -> i32 {
    let [dir] = args else {
        eprintln!("usage: citesys checkpoint <data-dir>");
        return EXIT_USAGE;
    };
    match CitationService::open(dir) {
        Ok((mut handle, Some(recovered))) => {
            let replayed = recovered.replayed;
            match recovered.service.checkpoint(&recovered.store, &mut handle) {
                Ok(version) => {
                    println!(
                        "{dir}: checkpoint at version {version} ({replayed} wal record(s) folded)"
                    );
                    0
                }
                Err(e) => {
                    eprintln!("{dir}: {e}");
                    EXIT_IO
                }
            }
        }
        Ok((_, None)) => {
            println!("{dir}: empty data dir, nothing to checkpoint");
            0
        }
        Err(e) => {
            eprintln!("{dir}: {e}");
            EXIT_IO
        }
    }
}

/// `recover <data-dir>`: recover and report, without serving.
fn recover_cmd(args: &[String]) -> i32 {
    let [dir] = args else {
        eprintln!("usage: citesys recover <data-dir>");
        return EXIT_USAGE;
    };
    match CitationService::open(dir) {
        Ok((_, Some(recovered))) => {
            println!(
                "{dir}: recovered to version {}",
                recovered.store.latest_version()
            );
            println!(
                "wal: {} record(s) replayed{}",
                recovered.replayed,
                if recovered.wal_truncated {
                    " (torn final record truncated)"
                } else {
                    ""
                }
            );
            let snapshot = recovered
                .store
                .snapshot(recovered.store.latest_version())
                .expect("latest snapshot");
            for (rel, count) in citesys_storage::durability::summarize_database(&snapshot) {
                println!("table {rel}: {count} tuple(s)");
            }
            println!(
                "registry: {} view(s); plans: {} cached; materialized views: {} relation(s)",
                recovered.service.registry().len(),
                recovered.service.plan_cache().len(),
                recovered
                    .service
                    .materialized_views()
                    .relation_names()
                    .len()
            );
            0
        }
        Ok((_, None)) => {
            println!("{dir}: empty data dir, nothing to recover");
            0
        }
        Err(e) => {
            eprintln!("{dir}: {e}");
            EXIT_IO
        }
    }
}

/// `wal <dump|compact> <data-dir> …`: inspect or trim the write-ahead
/// log.
fn wal_cmd(args: &[String]) -> i32 {
    const WAL_USAGE: &str = "usage: citesys wal dump <data-dir> [--since <version>]\n       \
         citesys wal compact <data-dir> [--keep <versions>]";
    match args.first().map(String::as_str) {
        Some("dump") => wal_dump(&args[1..]),
        // `wal compact` is the discoverable spelling; the work — fold
        // the WAL, prune anchors — is exactly `citesys compact`.
        Some("compact") => compact_cmd(&args[1..]),
        _ => {
            eprintln!("{WAL_USAGE}");
            EXIT_USAGE
        }
    }
}

/// The oldest version still reconstructable from `dir`: the oldest
/// retained time-travel anchor when any exist, else the live
/// checkpoint's version.
fn oldest_retained_version(dir: &std::path::Path, checkpoint: u64) -> u64 {
    let mut oldest = checkpoint;
    if let Ok(entries) = std::fs::read_dir(dir.join(citesys_storage::ANCHORS_DIR)) {
        for entry in entries.flatten() {
            if let Some(v) = entry
                .file_name()
                .to_str()
                .and_then(|name| name.parse::<u64>().ok())
            {
                oldest = oldest.min(v);
            }
        }
    }
    oldest
}

/// `wal dump <data-dir> [--since <version>]`: print the write-ahead log
/// as changeset text, optionally only the records after a version.
fn wal_dump(args: &[String]) -> i32 {
    const DUMP_USAGE: &str = "usage: citesys wal dump <data-dir> [--since <version>]";
    let Some(dir) = args.first() else {
        eprintln!("{DUMP_USAGE}");
        return EXIT_USAGE;
    };
    let since = match &args[1..] {
        [] => None,
        [flag, v] if flag == "--since" => match v.parse::<u64>() {
            Ok(v) => Some(v),
            Err(_) => {
                eprintln!("--since needs a version number\n{DUMP_USAGE}");
                return EXIT_USAGE;
            }
        },
        _ => {
            eprintln!("{DUMP_USAGE}");
            return EXIT_USAGE;
        }
    };
    let dir = std::path::Path::new(dir);
    // An explicit --since below the last checkpoint asks for records
    // that were folded away: printing the (empty or partial) tail
    // would silently misrepresent history, so fail distinctly instead.
    if let Some(since) = since {
        match citesys_storage::manifest_version(dir) {
            Ok(Some(checkpoint)) if since < checkpoint => {
                let oldest = oldest_retained_version(dir, checkpoint);
                eprintln!(
                    "{}: wal records at or below version {checkpoint} were compacted \
                     into a checkpoint; the oldest retained version is {oldest} \
                     (use 'cite … @ <version>' from {oldest} on, or raise --since to \
                     at least {checkpoint})",
                    dir.display()
                );
                return EXIT_COMPACTED;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("{}: {e}", dir.display());
                return EXIT_IO;
            }
        }
    }
    let path = dir.join(citesys_storage::durability::WAL_FILE);
    // Read-only: a dump must never create or truncate the log — the
    // server owning this directory may be appending to it right now.
    match Wal::read_from(&path, since.unwrap_or(0)) {
        Ok((records, truncated)) => {
            if truncated {
                eprintln!("note: final record is torn (left in place; recovery will truncate it)");
            }
            if records.is_empty() {
                println!("{}: no wal records", path.display());
            }
            for r in &records {
                println!("# version {} ({} op(s))", r.version, r.changes.len());
                print!("{}", r.changes.to_text());
            }
            0
        }
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            EXIT_IO
        }
    }
}

/// `compact <data-dir> [--keep <versions>]`: offline history trim —
/// fold the WAL into a fresh checkpoint, then prune time-travel anchors
/// below the newest `--keep` versions.
fn compact_cmd(args: &[String]) -> i32 {
    const COMPACT_USAGE: &str = "usage: citesys compact <data-dir> [--keep <versions>]";
    let Some(dir) = args.first() else {
        eprintln!("{COMPACT_USAGE}");
        return EXIT_USAGE;
    };
    let keep = match &args[1..] {
        [] => 0u64,
        [flag, v] if flag == "--keep" => match v.parse::<u64>() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("--keep needs a version count\n{COMPACT_USAGE}");
                return EXIT_USAGE;
            }
        },
        _ => {
            eprintln!("{COMPACT_USAGE}");
            return EXIT_USAGE;
        }
    };
    // Open with unbounded retention: offline compaction must not throw
    // away anchors as a side effect of its own checkpoint — only the
    // explicit prune below the window removes history.
    let shared = match SharedStore::open_durable_shared_with_retention(dir, usize::MAX) {
        Ok(shared) => shared,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return EXIT_IO;
        }
    };
    let mut interp = Interpreter::with_store(shared);
    match interp.run_session_line(&format!("compact {keep}")) {
        Ok(reply) => {
            print!("{}", reply.output);
            0
        }
        Err(e) => {
            eprintln!("{dir}: {}", e.message);
            EXIT_IO
        }
    }
}

/// `ingest <data-dir> <dump-dir> [--as <dataset>] [--manifest <file>]
/// [--batch <records>]`: stream the directory's dumps into the durable
/// store and pin the load in the dataset registry.
fn ingest_cmd(args: &[String]) -> i32 {
    const INGEST_USAGE: &str = "usage: citesys ingest <data-dir> <dump-dir> \
         [--as <dataset>] [--manifest <file>] [--batch <records>]";
    let [data_dir, dump_dir, rest @ ..] = args else {
        eprintln!("{INGEST_USAGE}");
        return EXIT_USAGE;
    };
    let mut dataset = None;
    let mut manifest = None;
    let mut batch: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed = match flag.as_str() {
            "--as" => take("--as").map(|v| dataset = Some(v)),
            "--manifest" => take("--manifest").map(|v| manifest = Some(v)),
            "--batch" => take("--batch").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| "--batch needs a record count".to_string())
                    .and_then(|n| {
                        if n == 0 {
                            Err("--batch must be at least 1".to_string())
                        } else {
                            batch = Some(n);
                            Ok(())
                        }
                    })
            }),
            other => Err(format!("unknown ingest option '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{INGEST_USAGE}");
            return EXIT_USAGE;
        }
    }
    // The script grammar quotes paths with single quotes; a path
    // containing one cannot round-trip through the command line.
    for (what, value) in [
        ("dump directory", Some(dump_dir)),
        ("manifest", manifest.as_ref()),
    ] {
        if value.is_some_and(|v| v.contains('\'')) {
            eprintln!("{what} path must not contain a single quote\n{INGEST_USAGE}");
            return EXIT_USAGE;
        }
    }
    let shared = match SharedStore::open_durable_shared_with_retention(data_dir, 0) {
        Ok(shared) => shared,
        Err(e) => {
            eprintln!("{data_dir}: {e}");
            return EXIT_IO;
        }
    };
    let mut interp = Interpreter::with_store(shared);
    let mut line = format!("ingest '{dump_dir}'");
    if let Some(name) = &dataset {
        line.push_str(&format!(" as {name}"));
    }
    if let Some(m) = &manifest {
        line.push_str(&format!(" manifest '{m}'"));
    }
    if let Some(n) = batch {
        line.push_str(&format!(" batch {n}"));
    }
    match interp.run_session_line(&line) {
        Ok(reply) => {
            print!("{}", reply.output);
            0
        }
        Err(e) => {
            eprintln!("{data_dir}: {}", e.message);
            exit_code_for(&e)
        }
    }
}

/// `dataset verify <data-dir> [--manifest <file>]`: re-hash every pinned
/// source and re-digest the store's fixity; mismatches exit
/// [`EXIT_TAMPER`].
fn dataset_cmd(args: &[String]) -> i32 {
    const DATASET_USAGE: &str = "usage: citesys dataset verify <data-dir> [--manifest <file>]";
    let Some("verify") = args.first().map(String::as_str) else {
        eprintln!("{DATASET_USAGE}");
        return EXIT_USAGE;
    };
    let (dir, manifest) = match &args[1..] {
        [dir] => (dir, None),
        [dir, flag, m] if flag == "--manifest" => (dir, Some(m.as_str())),
        _ => {
            eprintln!("{DATASET_USAGE}");
            return EXIT_USAGE;
        }
    };
    if manifest.is_some_and(|m| m.contains('\'')) {
        eprintln!("manifest path must not contain a single quote\n{DATASET_USAGE}");
        return EXIT_USAGE;
    }
    // Unbounded retention: verification must not discard time-travel
    // anchors its fixity re-digest may need to reach a pinned version.
    let shared = match SharedStore::open_durable_shared_with_retention(dir, usize::MAX) {
        Ok(shared) => shared,
        Err(e) => {
            eprintln!("{dir}: {e}");
            return EXIT_IO;
        }
    };
    let mut interp = Interpreter::with_store(shared);
    let line = match manifest {
        Some(m) => format!("dataset verify '{m}'"),
        None => "dataset verify".to_string(),
    };
    match interp.run_session_line(&line) {
        Ok(reply) => {
            print!("{}", reply.output);
            0
        }
        Err(e) => {
            eprintln!("{dir}: {}", e.message);
            if e.kind == ScriptErrorKind::Citation
                && e.message.starts_with("dataset verification failed")
            {
                EXIT_TAMPER
            } else {
                exit_code_for(&e)
            }
        }
    }
}

/// `plans export <script> <out>` / `plans import <file>`.
fn plans(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("export") => {
            let [_, script_path, out_path] = args else {
                eprintln!("usage: citesys plans export <script-file> <plans-file>");
                return EXIT_USAGE;
            };
            let source = match std::fs::read_to_string(script_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error reading {script_path}: {e}");
                    return EXIT_IO;
                }
            };
            let mut interp = Interpreter::new();
            if let Err(e) = interp.run(&source) {
                eprintln!("error: {e}");
                return exit_code_for(&e);
            }
            let text = interp.export_plans();
            let count = interp.plan_cache_stats().misses;
            if let Err(e) = std::fs::write(out_path, text) {
                eprintln!("error writing {out_path}: {e}");
                return EXIT_IO;
            }
            println!("exported plan cache ({count} fresh search(es)) to {out_path}");
            0
        }
        Some("import") => {
            let [_, in_path] = args else {
                eprintln!("usage: citesys plans import <plans-file>");
                return EXIT_USAGE;
            };
            let text = match std::fs::read_to_string(in_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error reading {in_path}: {e}");
                    return EXIT_IO;
                }
            };
            match Interpreter::new().import_plans(&text) {
                Ok(n) => {
                    println!("{in_path}: ok, {n} plan(s)");
                    0
                }
                Err(e) => {
                    eprintln!("{in_path}: {e}");
                    EXIT_PARSE
                }
            }
        }
        _ => {
            eprintln!("usage: citesys plans <export|import> …\n\n{}", usage());
            EXIT_USAGE
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") => {
            println!("{}", usage());
            return;
        }
        None => {
            eprintln!("{}", usage());
            std::process::exit(EXIT_USAGE);
        }
        Some("serve") => {
            let opts = match parse_serve_opts(&args[1..]) {
                Ok(opts) => opts,
                Err(e) => {
                    eprintln!("{e}\n\n{}", usage());
                    std::process::exit(EXIT_USAGE);
                }
            };
            let code = if opts.listen.is_some() {
                serve_tcp(&opts)
            } else {
                serve_stdin(&opts)
            };
            std::process::exit(code);
        }
        Some("client") => {
            std::process::exit(client(&args[1..]));
        }
        Some("ingest") => {
            std::process::exit(ingest_cmd(&args[1..]));
        }
        Some("dataset") => {
            std::process::exit(dataset_cmd(&args[1..]));
        }
        Some("checkpoint") => {
            std::process::exit(checkpoint_cmd(&args[1..]));
        }
        Some("recover") => {
            std::process::exit(recover_cmd(&args[1..]));
        }
        Some("compact") => {
            std::process::exit(compact_cmd(&args[1..]));
        }
        Some("wal") => {
            std::process::exit(wal_cmd(&args[1..]));
        }
        Some("plans") => {
            std::process::exit(plans(&args[1..]));
        }
        Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error reading stdin: {e}");
                std::process::exit(EXIT_IO);
            }
            buf
        }
        Some(flag) if flag.starts_with('-') => {
            eprintln!("unknown option '{flag}'\n\n{}", usage());
            std::process::exit(EXIT_USAGE);
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(EXIT_IO);
            }
        },
    };

    let mut interp = Interpreter::new();
    match interp.run(&source) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code_for(&e));
        }
    }
}

//! End-to-end integration: generator → rewriting → engine → formats →
//! fixity, across all workspace crates.

use citesys::core::paper;
use citesys::core::{
    cite_at_version, dereference, format_citation, verify, CitationFormat, CitationMode,
    CitationService, EngineOptions, PolicySet, RewritePolicy,
};
use citesys::cq::parse_query;
use citesys::gtopdb::{full_registry, generate, generate_versioned, GtopdbConfig};
use citesys::storage::{digest_answer, evaluate, tuple};

/// The complete §2 walk-through, as one scenario.
#[test]
fn paper_walkthrough() {
    let db = paper::paper_database();
    let registry = paper::paper_registry();
    let q = paper::paper_query();

    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    let cited = engine.cite(&q).unwrap();

    // One tuple (Calcitonin), two bindings (FIDs 11 and 12).
    assert_eq!(cited.answer.len(), 1);
    assert_eq!(cited.answer.rows[0].bindings.len(), 2);

    // The paper's exact symbolic citation.
    assert_eq!(
        cited.tuples[0].expr().to_string(),
        "(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)"
    );

    // Min-size +R collapses to CV2·CV3, rendered with the constant text.
    let text = format_citation(&cited.tuples[0].snippets, None, CitationFormat::Text);
    assert!(text.contains("IUPHAR/BPS Guide to PHARMACOLOGY..."));

    // All five formats render non-trivially.
    for fmt in [
        CitationFormat::Text,
        CitationFormat::BibTex,
        CitationFormat::Ris,
        CitationFormat::Xml,
        CitationFormat::Json,
    ] {
        let out = format_citation(&cited.tuples[0].snippets, None, fmt);
        assert!(!out.trim().is_empty(), "{fmt:?} rendered empty");
    }
}

/// Generated database at scale: every workload query is citable and the
/// answers match direct evaluation.
#[test]
fn generated_gtopdb_workload_citable() {
    let db = generate(&GtopdbConfig {
        scale: 2,
        ..Default::default()
    });
    let registry = full_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    for q in [
        citesys::gtopdb::workload::q_family_intro(),
        citesys::gtopdb::workload::q_families(),
        citesys::gtopdb::workload::q_committee(),
    ] {
        let cited = engine.cite(&q).unwrap();
        let direct = evaluate(&db, &q).unwrap();
        assert_eq!(cited.answer, direct, "query {q}");
        assert_eq!(cited.tuples.len(), direct.len());
        // Every tuple gets at least one citation atom and snippet.
        for t in &cited.tuples {
            assert!(!t.atoms.is_empty(), "uncited tuple for {q}");
            assert!(!t.snippets.is_empty());
        }
    }
}

/// Formal mode and cost-pruned mode agree on the final citation whenever
/// min-size +R is in force (the estimate picks the same winner).
#[test]
fn formal_vs_pruned_agreement() {
    let db = generate(&GtopdbConfig {
        scale: 2,
        ..Default::default()
    });
    let registry = full_registry();
    let q = citesys::gtopdb::workload::q_family_intro();
    let formal = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap()
        .cite(&q)
        .unwrap();
    let pruned = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::CostPruned,
            ..Default::default()
        })
        .build()
        .unwrap()
        .cite(&q)
        .unwrap();
    assert_eq!(formal.answer, pruned.answer);
    for (f, p) in formal.tuples.iter().zip(&pruned.tuples) {
        assert_eq!(f.atoms, p.atoms);
    }
    // Pruned evaluates strictly fewer rewritings.
    assert!(pruned.rewritings.len() <= formal.rewritings.len());
}

/// Versioned store: cite, evolve, dereference, verify — across crates.
#[test]
fn fixity_lifecycle_on_generated_data() {
    // Unique family names so that deleting one intro provably changes the
    // projected answer.
    let mut vdb = generate_versioned(&GtopdbConfig {
        scale: 1,
        dup_name_rate: 0.0,
        ..Default::default()
    });
    let registry = full_registry();
    let q = citesys::gtopdb::workload::q_family_intro();

    let v1 = vdb.latest_version();
    let (cited_v1, token) =
        cite_at_version(&vdb, &registry, EngineOptions::default(), v1, &q).unwrap();
    assert_eq!(digest_answer(&cited_v1.answer), token.digest);

    // Evolve: remove one family's intro.
    let intro = vdb
        .current()
        .relation("FamilyIntro")
        .unwrap()
        .scan()
        .next()
        .unwrap()
        .clone();
    vdb.delete("FamilyIntro", &intro).unwrap();
    let v2 = vdb.commit();

    // New version cites differently; old token still verifies and
    // dereferences to the original data.
    let (cited_v2, token2) =
        cite_at_version(&vdb, &registry, EngineOptions::default(), v2, &q).unwrap();
    assert_ne!(token.digest, token2.digest);
    assert_eq!(cited_v2.answer.len() + 1, cited_v1.answer.len());
    verify(&vdb, &token).unwrap();
    let recovered = dereference(&vdb, &token).unwrap();
    assert_eq!(recovered, cited_v1.answer);
}

/// Citations embed fixity tokens in machine formats.
#[test]
fn formats_embed_fixity() {
    let mut vdb = citesys::storage::VersionedDatabase::new(paper::paper_schemas()).unwrap();
    let base = paper::paper_database();
    for (name, rel) in base.relations() {
        for t in rel.scan() {
            vdb.insert(name.as_str(), t.clone()).unwrap();
        }
    }
    let v = vdb.commit();
    let registry = paper::paper_registry();
    let (cited, token) = cite_at_version(
        &vdb,
        &registry,
        EngineOptions::default(),
        v,
        &paper::paper_query(),
    )
    .unwrap();
    let agg = cited.aggregate.unwrap();
    let xml = format_citation(&agg.snippets, Some(&token), CitationFormat::Xml);
    assert!(xml.contains(&format!("version=\"{v}\"")));
    assert!(xml.contains(&token.digest.to_hex()));
    let json = format_citation(&agg.snippets, Some(&token), CitationFormat::Json);
    assert!(json.contains("\"fixity\""));
}

/// Different policy sets order citation sizes consistently at scale.
#[test]
fn policy_size_ordering_at_scale() {
    let db = generate(&GtopdbConfig {
        scale: 4,
        dup_name_rate: 0.3,
        ..Default::default()
    });
    let registry = full_registry();
    let q = citesys::gtopdb::workload::q_family_intro();
    let size_with = |rp: RewritePolicy| {
        CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                policies: PolicySet {
                    rewritings: rp,
                    ..Default::default()
                },
                ..Default::default()
            })
            .build()
            .unwrap()
            .cite(&q)
            .unwrap()
            .aggregate
            .unwrap()
            .atoms
            .len()
    };
    let min_size = size_with(RewritePolicy::MinSize);
    let union = size_with(RewritePolicy::Union);
    // §3 "Size of citations": parameterized views make the union citation
    // proportional to the answer, min-size keeps it constant.
    assert!(min_size <= union);
    assert_eq!(min_size, 2, "V2·V3 — two constant citations");
    assert!(union > 8, "union should scale with the family count");
}

/// A query outside every view's scope fails loudly, not silently.
#[test]
fn uncoverable_query_is_an_error_not_empty() {
    let db = paper::paper_database();
    let registry = paper::paper_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions::default())
        .build()
        .unwrap();
    let q = parse_query("Q(P) :- Committee(F, P)").unwrap();
    assert!(engine.cite(&q).is_err());
}

/// Storage-level constraints surface through the whole stack.
#[test]
fn key_constraints_respected_through_stack() {
    let mut db = paper::paper_database();
    let err = db
        .insert("Family", tuple![11, "Imposter", "X"])
        .unwrap_err();
    assert!(err.to_string().contains("key violation"));
}

/// Fuzz: randomly generated FK-chain queries are all citable over the full
/// registry, and the cited answer always matches direct evaluation.
#[test]
fn random_queries_cite_consistently() {
    let db = generate(&GtopdbConfig {
        scale: 1,
        ..Default::default()
    });
    let registry = full_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    for q in citesys::gtopdb::workload::random::chain_queries(0xF00D, 16) {
        let direct = evaluate(&db, &q).unwrap();
        let cited = engine
            .cite(&q)
            .unwrap_or_else(|e| panic!("query {q} uncitable: {e}"));
        assert_eq!(cited.answer, direct, "query {q}");
        assert_eq!(cited.coverage, citesys::core::Coverage::Full);
        for t in &cited.tuples {
            assert!(!t.atoms.is_empty(), "uncited tuple for {q}");
        }
    }
}

//! Failure injection: every layer's error path surfaces cleanly through
//! the public API (no panics, no silent corruption).

use citesys::core::paper;
use citesys::core::{
    CitationFunction, CitationQuery, CitationRegistry, CitationService, CitationView, CiteError,
    EngineOptions, IncrementalEngine,
};
use citesys::cq::parse_query;
use citesys::rewrite::RewriteOptions;
use citesys::storage::Database;

/// A view whose citation query references a relation the database does not
/// have: the error surfaces at citation time, typed as a storage error.
#[test]
fn citation_query_over_missing_relation() {
    let db = paper::paper_database();
    let mut reg = CitationRegistry::new();
    reg.add(
        CitationView::new(
            parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            vec![CitationQuery::new(
                parse_query("CVX(N) :- GhostRelation(N)").unwrap(),
            )],
            CitationFunction::new(),
        )
        .unwrap(),
    )
    .unwrap();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(reg.clone())
        .options(EngineOptions::default())
        .build()
        .unwrap();
    let q = parse_query("Q(N) :- Family(F, N, D)").unwrap();
    let err = engine.cite(&q).unwrap_err();
    assert!(matches!(err, CiteError::Storage(_)), "{err}");
}

/// A view whose *body* references a missing relation: caught when the view
/// is materialized.
#[test]
fn view_body_over_missing_relation() {
    let db = paper::paper_database();
    let mut reg = CitationRegistry::new();
    reg.add(
        CitationView::new(
            parse_query("VG(X) :- Ghost(X)").unwrap(),
            vec![CitationQuery::with_fields(
                parse_query("CVG(D) :- D = 'x'").unwrap(),
                vec!["citation".to_string()],
            )
            .unwrap()],
            CitationFunction::new(),
        )
        .unwrap(),
    )
    .unwrap();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(reg.clone())
        .options(EngineOptions::default())
        .build()
        .unwrap();
    let q = parse_query("Q(X) :- Ghost(X)").unwrap();
    let err = engine.cite(&q).unwrap_err();
    // Either schema inference or materialization reports the problem.
    assert!(
        matches!(
            err,
            CiteError::Storage(_) | CiteError::BadCitationView { .. }
        ),
        "{err}"
    );
}

/// A candidate budget that is too small propagates as a rewrite error
/// instead of silently truncating results.
#[test]
fn rewrite_budget_propagates() {
    let db = paper::paper_database();
    let reg = paper::paper_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(reg.clone())
        .options(EngineOptions {
            rewrite: RewriteOptions {
                max_candidates: 1,
                ..Default::default()
            },
            ..Default::default()
        })
        .build()
        .unwrap();
    let err = engine.cite(&paper::paper_query()).unwrap_err();
    assert!(matches!(err, CiteError::Rewrite(_)), "{err}");
}

/// The incremental engine's cache stays consistent when a cite fails.
#[test]
fn incremental_engine_error_does_not_poison_cache() {
    let mut inc = IncrementalEngine::new(
        paper::paper_database(),
        paper::paper_registry(),
        EngineOptions::default(),
    );
    // Good query caches.
    inc.cite(&paper::paper_query()).unwrap();
    assert_eq!(inc.cached(), 1);
    // Uncoverable query errors but leaves the cache alone.
    let bad = parse_query("Q(P) :- Committee(F, P)").unwrap();
    assert!(inc.cite(&bad).is_err());
    assert_eq!(inc.cached(), 1);
    // The good query is still served from cache.
    inc.cite(&paper::paper_query()).unwrap();
    assert_eq!(inc.stats().hits, 1);
}

/// Arity mismatches between a query and the catalog are typed errors.
#[test]
fn query_arity_mismatch_reported() {
    let db = paper::paper_database();
    let reg = paper::paper_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(reg.clone())
        .options(EngineOptions::default())
        .build()
        .unwrap();
    // Family used with arity 2 — caught before any citation work. The
    // query itself is well-formed, so this must come from the catalog.
    let q = parse_query("Q(A) :- Family(A, B)").unwrap();
    let err = engine.cite(&q).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("arity") || msg.contains("no equivalent rewriting"),
        "{msg}"
    );
}

/// Type violations on insert never reach storage.
#[test]
fn type_checked_inserts() {
    let mut db = Database::new();
    for s in paper::paper_schemas() {
        db.create_relation(s).unwrap();
    }
    let err = db
        .insert("Family", citesys::storage::tuple!["not-an-int", "x", "y"])
        .unwrap_err();
    assert!(err.to_string().contains("expected int"));
    assert_eq!(db.relation("Family").unwrap().len(), 0);
}

/// Script interpreter: every failure carries its line and leaves the
/// interpreter reusable.
#[test]
fn script_failures_are_recoverable() {
    let mut interp = citesys::script::Interpreter::new();
    let err = interp
        .run("schema R(A:int)\ninsert R('wrong-type')\n")
        .unwrap_err();
    assert_eq!(err.line, 2);
    // The same interpreter keeps working afterwards.
    let out = interp.run("insert R(1)\ntables\n").unwrap();
    assert!(out.contains("R: 1 tuples"));
}

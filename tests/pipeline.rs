//! Full-pipeline integration: CSV interchange → script interpreter →
//! citation → dump → fixity verification, plus plan explanation.

use citesys::cq::parse_query;
use citesys::script::Interpreter;
use citesys::storage::{evaluate, explain, from_csv, load_csv, to_csv, Database};

/// CSV → database → CSV round trip preserves the digest, and a script can
/// load the produced CSV.
#[test]
fn csv_script_round_trip() {
    // Build a database via CSV import.
    let csv = "\"FID:int\",\"FName:text\",\"Desc:text\"\n\
               11,\"Calcitonin\",\"C1\"\n12,\"Calcitonin\",\"C2\"\n13,\"Dopamine\",\"D1\"\n";
    let mut db = Database::new();
    load_csv(&mut db, "Family", &[0], csv).unwrap();
    assert_eq!(db.relation("Family").unwrap().len(), 3);

    // Export and re-import.
    let exported = to_csv(db.relation("Family").unwrap());
    let (schema, tuples) = from_csv("Family", &[0], &exported).unwrap();
    assert_eq!(schema.arity(), 3);
    assert_eq!(tuples.len(), 3);

    // Feed the exported CSV to the script interpreter via `load`.
    let dir = std::env::temp_dir().join("citesys-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("family.csv");
    std::fs::write(&path, &exported).unwrap();
    let script = format!(
        "schema Family(FID:int, FName:text, Desc:text) key(0)\n\
         schema FamilyIntro(FID:int, Text:text) key(0)\n\
         load Family from '{}'\n\
         insert FamilyIntro(11, '1st')\n\
         insert FamilyIntro(12, '2nd')\n\
         view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'\n\
         view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'\n\
         commit\n\
         cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)\n\
         verify\n\
         dump Family\n",
        path.display()
    );
    let mut interp = Interpreter::new();
    let out = interp.run(&script).unwrap();
    assert!(out.contains("loaded 3 tuple(s) into Family"));
    assert!(out.contains("1 answer tuple(s) at version 1"));
    assert!(out.contains("GtoPdb"));
    assert!(out.contains("fixity verified: v1"));
    // The dump matches the original export byte-for-byte.
    assert!(out.contains(exported.trim_end()));
    let _ = std::fs::remove_file(&path);
}

/// The explain plan and actual evaluation agree on feasibility, and plans
/// prefer indexed probes after the first atom.
#[test]
fn explain_matches_evaluation_feasibility() {
    let db = citesys::gtopdb::generate(&citesys::gtopdb::GtopdbConfig::default());
    let queries = [
        "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
        "Q(TName, LName) :- Target(TID, TName, F), Interaction(TID, LID, A), Ligand(LID, LName, T)",
        "Q(N) :- Family(3, N, D)",
    ];
    for src in queries {
        let q = parse_query(src).unwrap();
        let plan = explain(&db, &q).unwrap();
        assert_eq!(plan.len(), q.body.len(), "{src}");
        // Every step after the first must probe an index (these queries are
        // connected joins).
        for step in &plan[1..] {
            assert!(step.probe_column.is_some(), "{src}: {step:?}");
        }
        // The query actually evaluates.
        let a = evaluate(&db, &q).unwrap();
        assert!(!a.is_empty(), "{src}");
    }
}

/// Scripted partial citation over a narrow view produces CSL-JSON with the
/// fixity block.
#[test]
fn scripted_partial_csl() {
    let script = "\
schema Family(FID:int, FName:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(1, 'A')
insert Family(2, 'B')
insert FamilyIntro(1, 'intro')
view V(FID, N) :- Family(FID, N), FamilyIntro(FID, T) | cite CV(D) :- D = 'narrow-db'
commit
cite Q(N) :- Family(F, N) | partial | format csl
";
    let mut interp = Interpreter::new();
    let out = interp.run(script).unwrap();
    assert!(out.contains("coverage: partial (1 uncited)"));
    assert!(out.contains("\"type\":\"dataset\""));
    assert!(out.contains("\"title\":\"narrow-db\""));
    assert!(out.contains("\"sha256\":"));
}

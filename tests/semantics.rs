//! Cross-crate semantic consistency: the citation algebra agrees with the
//! provenance-semiring view of the same computation, and evolution
//! (incremental caching) never changes results.

use citesys::core::paper;
use citesys::core::{
    CitationMode, CitationService, EngineOptions, IncrementalEngine, PolicySet, RewritePolicy,
};
use citesys::cq::{parse_query, Symbol};
use citesys::gtopdb::{generate, GtopdbConfig};
use citesys::provenance::{provenance, Why};
use citesys::storage::tuple;

/// With identity views, the citation expression of a tuple under one
/// rewriting mirrors the why-provenance of the tuple: one `·`-product per
/// witness, one `+`-summand per derivation.
#[test]
fn citation_expression_mirrors_why_provenance() {
    let db = paper::paper_database();
    let registry = paper::paper_registry();
    let q = paper::paper_query();

    // Why-provenance of the (Calcitonin) tuple over base relations.
    let prov = provenance(&db, &q).unwrap();
    assert_eq!(prov.len(), 1);
    let why = prov[0].1.eval_in::<Why>(&|t| Why::of(t.clone()));
    // Two witnesses: {Family(11,…), FamilyIntro(11,…)} and {Family(12,…), …}.
    assert_eq!(why.witness_count(), 2);

    // Citation via the parameterized rewriting (V1⋈V3): the Q1 branch has
    // exactly one summand per witness.
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    let cited = engine.cite(&q).unwrap();
    let q1_branch = cited.tuples[0]
        .branches
        .iter()
        .find(|b| b.atoms().iter().any(|a| a.view.as_str() == "V1"))
        .expect("parameterized branch present");
    match q1_branch {
        citesys::core::CiteExpr::Sum(summands) => {
            assert_eq!(summands.len(), why.witness_count());
        }
        other => panic!("expected a sum of bindings, got {other}"),
    }
}

/// The number of citation-expression summands equals the number of
/// bindings the evaluator reports (Definition 2.2's β_t).
#[test]
fn summands_equal_bindings_at_scale() {
    let db = generate(&GtopdbConfig {
        scale: 2,
        dup_name_rate: 0.5,
        ..Default::default()
    });
    let registry = citesys::gtopdb::full_registry();
    let q = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    let cited = engine.cite(&q).unwrap();
    for (row, tc) in cited.answer.rows.iter().zip(&cited.tuples) {
        // Find the V1 (parameterized) branch: distinct parameter values =
        // distinct bindings on FID.
        let v1_branch = tc
            .branches
            .iter()
            .find(|b| b.atoms().iter().any(|a| a.view.as_str() == "V1"))
            .expect("V1 branch");
        let distinct_fids: std::collections::BTreeSet<_> = row
            .bindings
            .iter()
            .map(|b| b.get(&Symbol::new("FID")).unwrap().clone())
            .collect();
        let v1_params: std::collections::BTreeSet<_> = v1_branch
            .atoms()
            .into_iter()
            .filter(|a| a.view.as_str() == "V1")
            .map(|a| a.params[0].clone())
            .collect();
        assert_eq!(distinct_fids, v1_params, "tuple {}", row.tuple);
    }
}

/// The incremental engine returns byte-identical citations to a fresh
/// engine after any sequence of updates.
#[test]
fn incremental_engine_consistent_with_fresh() {
    let cfg = GtopdbConfig {
        scale: 1,
        ..Default::default()
    };
    let registry = citesys::gtopdb::full_registry();
    let q = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();

    let mut inc = IncrementalEngine::new(
        generate(&cfg),
        registry.clone(),
        EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        },
    );
    // Warm the cache, apply updates, re-cite.
    inc.cite(&q).unwrap();
    inc.insert("Family", tuple![900, "Novel receptor", "N1"])
        .unwrap();
    inc.insert("FamilyIntro", tuple![900, "fresh intro"])
        .unwrap();
    inc.delete("FamilyIntro", &tuple![0, "Introductory text for family 0"])
        .unwrap();
    let incremental = inc.cite(&q).unwrap();

    // Fresh engine over an identically mutated database.
    let mut db2 = generate(&cfg);
    db2.insert("Family", tuple![900, "Novel receptor", "N1"])
        .unwrap();
    db2.insert("FamilyIntro", tuple![900, "fresh intro"])
        .unwrap();
    db2.delete("FamilyIntro", &tuple![0, "Introductory text for family 0"])
        .unwrap();
    let fresh = CitationService::builder()
        .database(db2.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap()
        .cite(&q)
        .unwrap();

    assert_eq!(incremental.answer, fresh.answer);
    for (a, b) in incremental.tuples.iter().zip(&fresh.tuples) {
        assert_eq!(a.atoms, b.atoms);
        assert_eq!(a.snippets, b.snippets);
    }
}

/// Caching statistics behave: hits accumulate, irrelevant deltas keep the
/// cache, relevant deltas flush exactly the affected entries.
#[test]
fn incremental_cache_behaviour() {
    let registry = citesys::gtopdb::full_registry();
    let mut inc = IncrementalEngine::new(
        generate(&GtopdbConfig::default()),
        registry,
        EngineOptions::default(),
    );
    let q_fam = parse_query("Q(FID, FName, D) :- Family(FID, FName, D)").unwrap();
    let q_lig = parse_query("Q(LID, LName, T) :- Ligand(LID, LName, T)").unwrap();
    inc.cite(&q_fam).unwrap();
    inc.cite(&q_lig).unwrap();
    assert_eq!(inc.cached(), 2);

    // Ligand insert must not flush the family citation.
    inc.insert("Ligand", tuple![900, "novel-ligand", "peptide"])
        .unwrap();
    assert_eq!(inc.cached(), 1);
    inc.cite(&q_fam).unwrap();
    assert_eq!(inc.stats().hits, 1);
}

/// Policy monotonicity at scale: every tuple's min-size citation is a
/// subset of its union citation.
#[test]
fn per_tuple_min_size_subset_of_union() {
    let db = generate(&GtopdbConfig {
        scale: 2,
        dup_name_rate: 0.4,
        ..Default::default()
    });
    let registry = citesys::gtopdb::full_registry();
    let q = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
    let run = |rp: RewritePolicy| {
        CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                policies: PolicySet {
                    rewritings: rp,
                    ..Default::default()
                },
                ..Default::default()
            })
            .build()
            .unwrap()
            .cite(&q)
            .unwrap()
    };
    let min = run(RewritePolicy::MinSize);
    let all = run(RewritePolicy::Union);
    for (m, u) in min.tuples.iter().zip(&all.tuples) {
        assert!(m.atoms.is_subset(&u.atoms), "tuple {}", m.tuple);
    }
}

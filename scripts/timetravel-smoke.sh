#!/usr/bin/env bash
# Time-travel smoke test: start a durable server with record-based
# auto-checkpointing (`--checkpoint-every`) and anchor retention, commit
# past several checkpoint anchors while capturing each version's LIVE
# cite output, then assert `cite … @ <version>` returns byte-identical
# output for every version — over the blocking transport, and again over
# the event-loop transport after a restart (so deep versions resolve
# through retained anchors, not the in-memory op log). Finally `compact`
# over the wire and assert in-window versions keep serving while
# pre-window versions fail with the distinct compacted-history error
# (exit 4 on the wire, exit 5 from `wal dump --since`). CI runs this as
# the dedicated timetravel-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/citesys
if [ ! -x "$BIN" ]; then
    cargo build --release --bin citesys
fi

workdir=$(mktemp -d)
data="$workdir/data"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

# Polls `listening on <addr>` out of a server log; sets $addr.
read_addr() {
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$1" | tail -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: server did not report its address"
        cat "${1%.out}.err" 2>/dev/null || true
        exit 1
    fi
}

start_server() { # args: extra flags...
    "$BIN" serve --listen 127.0.0.1:0 --data-dir "$data" \
        --checkpoint-every 2 --retain-checkpoints 8 "$@" \
        > "$workdir/server.out" 2> "$workdir/server.err" &
    server_pid=$!
    read_addr "$workdir/server.out"
}

stop_server() {
    kill -9 "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

# Pulls one stats counter off the server; prints its value.
stat_of() {
    echo "stats" | "$BIN" client "$addr" | sed -n "s/^$1 //p"
}

CITE="cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"

# --- Phase 1: storm past several anchors, capturing live output -------------
start_server
echo "server listening on $addr (data dir $data, checkpoint every 2 records)"
cat > "$workdir/setup.cts" <<'EOF'
schema Family(FID:int, FName:text, Desc:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert FamilyIntro(11, '1st')
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'
commit
EOF
"$BIN" client "$addr" "$workdir/setup.cts" > "$workdir/setup.out"
grep -qF "committed version 1" "$workdir/setup.out" || {
    echo "FAIL: setup commit not acked"; cat "$workdir/setup.out"; exit 1; }
echo "$CITE" | "$BIN" client "$addr" > "$workdir/live.1"

latest=5
for v in $(seq 2 $latest); do
    fid=$((18 + v))
    printf "insert Family(%s, 'F%s', 'D')\ninsert FamilyIntro(%s, 'I%s')\ncommit\n" \
        "$fid" "$fid" "$fid" "$fid" | "$BIN" client "$addr" > /dev/null
    echo "$CITE" | "$BIN" client "$addr" > "$workdir/live.$v"
done
retained=$(stat_of checkpoints_retained)
[ "$retained" -gt 1 ] || {
    echo "FAIL: expected >1 retained checkpoints, got $retained"; exit 1; }
echo "committed $latest versions past $retained retained checkpoint(s)"

# --- Phase 2: @ version is byte-identical to the live cite (blocking) -------
check_all_versions() { # arg: phase label
    for v in $(seq 1 $latest); do
        echo "$CITE @ $v" | "$BIN" client "$addr" > "$workdir/at.$v"
        cmp -s "$workdir/live.$v" "$workdir/at.$v" || {
            echo "FAIL ($1): cite @ $v differs from the live cite at version $v"
            diff "$workdir/live.$v" "$workdir/at.$v" || true
            exit 1
        }
    done
    echo "cite @ 1..$latest byte-identical to live cites ($1)"
}
check_all_versions "blocking transport"
echo "snapshot @ 2" | "$BIN" client "$addr" > "$workdir/snap.a"
echo "snapshot @ 2" | "$BIN" client "$addr" > "$workdir/snap.b"
cmp -s "$workdir/snap.a" "$workdir/snap.b" || {
    echo "FAIL: snapshot @ 2 digest not stable"; exit 1; }
grep -q "^snapshot v2 sha256:" "$workdir/snap.a" || {
    echo "FAIL: snapshot output malformed"; cat "$workdir/snap.a"; exit 1; }

# --- Phase 3: restart on the event loop; history now crosses anchors --------
stop_server
start_server --event-loop
grep -q "event loop enabled" "$workdir/server.out" || {
    echo "FAIL: event loop did not engage"; cat "$workdir/server.out"; exit 1; }
echo "restarted on the event-loop transport at $addr"
base=$(stat_of history_base_version)
[ "$base" = "0" ] || {
    echo "FAIL: anchors should reach genesis before compaction, base=$base"; exit 1; }
check_all_versions "event loop, post-restart (anchor reads)"

# --- Phase 4: compact trims the queryable window -----------------------------
echo "compact 1" | "$BIN" client "$addr" > "$workdir/compact.out"
grep -q "^compacted to version" "$workdir/compact.out" || {
    echo "FAIL: compact not acked"; cat "$workdir/compact.out"; exit 1; }
floor=$(stat_of history_base_version)
[ "$floor" -gt 1 ] || {
    echo "FAIL: compaction left base at $floor"; exit 1; }
for v in "$floor" "$latest"; do
    echo "$CITE @ $v" | "$BIN" client "$addr" > "$workdir/at.$v"
    cmp -s "$workdir/live.$v" "$workdir/at.$v" || {
        echo "FAIL: in-window cite @ $v changed after compact"; exit 1; }
done
set +e
echo "$CITE @ 1" | "$BIN" client "$addr" > "$workdir/gone.out" 2> "$workdir/gone.err"
rc=$?
set -e
[ "$rc" -eq 4 ] || {
    echo "FAIL: pre-window cite exited $rc, expected 4"; cat "$workdir/gone.err"; exit 1; }
grep -q "was compacted by a checkpoint (oldest kept is $floor)" "$workdir/gone.err" || {
    echo "FAIL: compacted error malformed"; cat "$workdir/gone.err"; exit 1; }
echo "window [$floor, $latest] serves; version 1 fails with the compacted error"

# --- Phase 5: wal dump below the window exits 5, naming the floor ------------
set +e
"$BIN" wal dump "$data" --since 1 > "$workdir/dump.out" 2> "$workdir/dump.err"
rc=$?
set -e
[ "$rc" -eq 5 ] || {
    echo "FAIL: wal dump --since 1 exited $rc, expected 5"; cat "$workdir/dump.err"; exit 1; }
grep -q "oldest retained version is $floor" "$workdir/dump.err" || {
    echo "FAIL: wal dump error does not name the floor"; cat "$workdir/dump.err"; exit 1; }
echo "wal dump --since 1 exited 5 naming oldest retained version $floor"

echo "timetravel smoke ok (data dir $data)"

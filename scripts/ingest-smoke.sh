#!/usr/bin/env bash
# Ingestion smoke test: emit a GtoPdb-shaped CSV dump with
# `citesys-gtopdb emit`, bulk-load it through BOTH transports — the
# offline `citesys ingest` CLI and the `ingest` wire command against a
# running server — then assert the pinned manifest verifies cleanly,
# that a one-byte tamper of a source file fails `dataset verify` with
# the dedicated exit code 6, and that the loaded relations are citable
# (including after a restart, recovered from WAL/checkpoint). CI runs
# this as the dedicated ingest-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/citesys
GTOPDB=target/release/citesys-gtopdb
if [ ! -x "$BIN" ] || [ ! -x "$GTOPDB" ]; then
    cargo build --release --bin citesys
    cargo build --release -p citesys-gtopdb --bin citesys-gtopdb
fi

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

# --- Phase 1: emit a deterministic dump ------------------------------------
dumps="$workdir/dumps"
"$GTOPDB" emit "$dumps" --scale 4 > "$workdir/emit.out"
grep -qE "emitted [0-9]+ records across 8 files" "$workdir/emit.out" || {
    echo "FAIL: emit did not report its files"; cat "$workdir/emit.out"; exit 1; }
records=$(sed -n 's/^emitted \([0-9]*\) records.*/\1/p' "$workdir/emit.out")
echo "emitted $records records to $dumps"

# --- Phase 2: offline transport — the ingest CLI ---------------------------
data="$workdir/data"
mkdir -p "$data"
"$BIN" ingest "$data" "$dumps" --as gtopdb-smoke --batch 100 > "$workdir/ingest.out"
grep -qF "ingested $records record(s) from 8 file(s) as dataset gtopdb-smoke" \
    "$workdir/ingest.out" || {
    echo "FAIL: CLI ingest did not load every record"; cat "$workdir/ingest.out"; exit 1; }
grep -qF "manifest $data/datasets.lock" "$workdir/ingest.out" || {
    echo "FAIL: manifest not written"; cat "$workdir/ingest.out"; exit 1; }
grep -qF "gtopdb-smoke" "$data/datasets.audit" || {
    echo "FAIL: audit log lacks the load"; cat "$data/datasets.audit"; exit 1; }

"$BIN" dataset verify "$data" > "$workdir/verify.out"
grep -qF "1 dataset(s), 8 source file(s) ok" "$workdir/verify.out" || {
    echo "FAIL: clean manifest did not verify"; cat "$workdir/verify.out"; exit 1; }
echo "CLI ingest + verify ok"

# --- Phase 3: the ingested data is citable after a restart -----------------
start_server() {
    "$BIN" serve --listen 127.0.0.1:0 --data-dir "$1" \
        > "$workdir/server.out" 2> "$workdir/server.err" &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$workdir/server.out" | tail -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "server did not report its address"
        cat "$workdir/server.err"
        exit 1
    fi
}
start_server "$data"
cat > "$workdir/cite.cts" <<'EOF'
datasets
view VF(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CVF(D) :- D = 'GtoPdb'
cite Q(FName) :- Family(FID, FName, Desc)
EOF
"$BIN" client "$addr" "$workdir/cite.cts" > "$workdir/cite.out"
grep -qF "dataset gtopdb-smoke: 8 file(s), $records record(s)" "$workdir/cite.out" || {
    echo "FAIL: registry listing lost after restart"; cat "$workdir/cite.out"; exit 1; }
grep -qE "[0-9]+ answer tuple\(s\) at version" "$workdir/cite.out" || {
    echo "FAIL: ingested data not citable"; cat "$workdir/cite.out"; exit 1; }
echo "shutdown" | "$BIN" client "$addr" > /dev/null
wait "$server_pid"
server_pid=""
echo "restart + cite over ingested data ok"

# --- Phase 4: one-byte tamper fails verification with exit code 6 ----------
printf 'X' | dd of="$dumps/Family.csv" bs=1 seek=64 conv=notrunc 2>/dev/null
set +e
"$BIN" dataset verify "$data" > "$workdir/tamper.out" 2> "$workdir/tamper.err"
code=$?
set -e
if [ "$code" -ne 6 ]; then
    echo "FAIL: tampered verify exited $code, want 6"
    cat "$workdir/tamper.out" "$workdir/tamper.err"
    exit 1
fi
grep -qF "Family.csv' digest mismatch (tampered)" "$workdir/tamper.err" || {
    echo "FAIL: tamper not named"; cat "$workdir/tamper.err"; exit 1; }
echo "tamper detected with exit code 6"

# --- Phase 5: wire transport — ingest through a live server ----------------
dumps2="$workdir/dumps2"
data2="$workdir/data2"
mkdir -p "$data2"
"$GTOPDB" emit "$dumps2" --scale 2 > /dev/null
start_server "$data2"
cat > "$workdir/wire.cts" <<EOF
ingest '$dumps2' as wire-smoke batch 50
datasets
dataset verify
view VF(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CVF(D) :- D = 'GtoPdb'
cite Q(FName) :- Family(FID, FName, Desc)
EOF
"$BIN" client "$addr" "$workdir/wire.cts" > "$workdir/wire.out"
grep -qE "ingested [0-9]+ record\(s\) from 8 file\(s\) as dataset wire-smoke" \
    "$workdir/wire.out" || {
    echo "FAIL: wire ingest did not run"; cat "$workdir/wire.out"; exit 1; }
grep -qF "1 dataset(s), 8 source file(s) ok" "$workdir/wire.out" || {
    echo "FAIL: wire-side verify failed"; cat "$workdir/wire.out"; exit 1; }
grep -qE "[0-9]+ answer tuple\(s\) at version" "$workdir/wire.out" || {
    echo "FAIL: wire-ingested data not citable"; cat "$workdir/wire.out"; exit 1; }
echo "shutdown" | "$BIN" client "$addr" > /dev/null
wait "$server_pid"
server_pid=""
echo "wire ingest + verify + cite ok"

echo "ingest smoke ok ($workdir)"

#!/usr/bin/env bash
# End-to-end smoke test of the observability surface: start `citesys
# serve --listen --metrics --slow-cite-ms 0`, drive a commit storm
# through the client while scraping the HTTP /metrics endpoint, assert
# the Prometheus text exposition parses and reconciles with the storm,
# assert the slow-cite log fired for every cite at threshold 0, then
# restart at a high threshold and assert the log stays silent. CI runs
# this after the release build; it needs only loopback networking.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/citesys
if [ ! -x "$BIN" ]; then
    cargo build --release --bin citesys
fi

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

# ---- phase 1: storm + scrape + slow-cite at threshold 0 -------------

start_server() { # $1 = --slow-cite-ms value
    "$BIN" serve --listen 127.0.0.1:0 --metrics 127.0.0.1:0 \
        --slow-cite-ms "$1" \
        > "$workdir/server.out" 2> "$workdir/server.err" &
    server_pid=$!
    addr="" maddr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$workdir/server.out")
        maddr=$(sed -n 's/^metrics on //p' "$workdir/server.out")
        [ -n "$addr" ] && [ -n "$maddr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ] || [ -z "$maddr" ]; then
        echo "server did not report its addresses"
        cat "$workdir/server.err"
        exit 1
    fi
}

stop_server() {
    echo "shutdown" | "$BIN" client "$addr" > /dev/null
    wait "$server_pid"
    server_pid=""
}

scrape() { # one HTTP GET of the exposition, body to stdout
    exec 3<>"/dev/tcp/${maddr%:*}/${maddr#*:}"
    printf 'GET /metrics HTTP/1.1\r\nHost: smoke\r\n\r\n' >&3
    local body=0 status=""
    while IFS= read -r line <&3; do
        line=${line%$'\r'}
        if [ -z "$status" ]; then
            status="$line"
            case "$status" in
                "HTTP/1.1 200 OK") ;;
                *) echo "FAIL: scrape status '$status'"; exit 1 ;;
            esac
            continue
        fi
        if [ "$body" -eq 1 ]; then
            printf '%s\n' "$line"
        elif [ -z "$line" ]; then
            body=1
        fi
    done
    exec 3<&- 3>&-
}

start_server 0

cat > "$workdir/setup.cts" <<'EOF'
schema Family(FID:int, FName:text) key(0)
insert Family(0, 'Calcitonin')
view V(FID, FName) :- Family(FID, FName) | cite CV(D) :- D = 'GtoPdb'
commit
EOF
"$BIN" client "$addr" "$workdir/setup.cts" > /dev/null

# The storm: 20 commit transactions with a cite after each, pipelined,
# scraping the endpoint while commits are in flight.
storm() {
    for i in $(seq 1 20); do
        echo "begin"
        echo "insert Family($i, 'F$i')"
        echo "commit"
        echo "cite Q(FName) :- Family(FID, FName)"
    done
}
storm > "$workdir/storm.cts"
"$BIN" client --pipeline "$addr" "$workdir/storm.cts" > "$workdir/storm.out" &
storm_pid=$!
scrape > "$workdir/mid.metrics"   # mid-storm scrape must not wedge anything
wait "$storm_pid"
if grep -q "^err" "$workdir/storm.out"; then
    echo "FAIL: storm had errors"
    head "$workdir/storm.out"
    exit 1
fi

scrape > "$workdir/final.metrics"

# The exposition must parse: every non-comment line is
# `name[{labels}] value` with a numeric value, and HELP/TYPE pairs
# precede their samples.
check_exposition() {
    awk '
        /^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* / { help[$3] = 1; next }
        /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$/ { type[$3] = 1; next }
        /^#/ { print "bad comment: " $0; exit 1 }
        /^$/ { next }
        {
            if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9.e+-]*$/) {
                print "unparseable sample: " $0; exit 1
            }
            base = $1; sub(/\{.*/, "", base)
            fam = base
            sub(/_(bucket|sum|count)$/, "", fam)
            if (!((fam in type && fam in help) || (base in type && base in help))) {
                print "sample without metadata: " $0; exit 1
            }
            samples++
        }
        END { if (samples == 0) { print "empty exposition"; exit 1 } }
    ' "$1" || { echo "FAIL: exposition $1 invalid"; exit 1; }
}
check_exposition "$workdir/mid.metrics"
check_exposition "$workdir/final.metrics"

# Reconcile the final scrape with the storm: 21 commits (setup + 20),
# 21 timed cites, and the cite histogram's count agrees.
metric() { # $1 file, $2 series
    awk -v s="$2" '$1 == s { print $2 }' "$1"
}
commits=$(metric "$workdir/final.metrics" "citesys_commits_total")
cites=$(metric "$workdir/final.metrics" "citesys_cite_seconds_count")
slow=$(metric "$workdir/final.metrics" "citesys_slow_cites_total")
if [ "$commits" != "21" ]; then
    echo "FAIL: citesys_commits_total=$commits (want 21)"
    exit 1
fi
if [ "$cites" != "20" ]; then
    echo "FAIL: citesys_cite_seconds_count=$cites (want 20)"
    exit 1
fi
if [ "$slow" != "20" ]; then
    echo "FAIL: citesys_slow_cites_total=$slow (want 20 at threshold 0)"
    exit 1
fi

stop_server

# Every cite crossed threshold 0, so every cite logged one slow-cite
# line with its span breakdown and plan-cache verdict.
slow_lines=$(grep -c "^slow-cite total=" "$workdir/server.err" || true)
if [ "$slow_lines" -ne 20 ]; then
    echo "FAIL: $slow_lines slow-cite lines at threshold 0 (want 20)"
    cat "$workdir/server.err"
    exit 1
fi
if ! grep -q "plan_cache=miss" "$workdir/server.err" ||
    ! grep -q "plan_cache=hit" "$workdir/server.err"; then
    echo "FAIL: slow-cite log lacks plan-cache verdicts"
    cat "$workdir/server.err"
    exit 1
fi

# ---- phase 2: a sane threshold stays silent -------------------------

start_server 60000
"$BIN" client "$addr" "$workdir/setup.cts" > /dev/null
echo "cite Q(FName) :- Family(FID, FName)" | "$BIN" client "$addr" > /dev/null
stop_server
if grep -q "^slow-cite" "$workdir/server.err"; then
    echo "FAIL: slow-cite log fired below a 60s threshold"
    cat "$workdir/server.err"
    exit 1
fi

echo "obs smoke ok ($addr, scrape $maddr)"

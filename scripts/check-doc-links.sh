#!/usr/bin/env bash
# Doc-link check: every relative markdown link in the top-level docs must
# resolve to an existing file, and the quickstart README must link the
# architecture and migration guides. Run from anywhere; CI runs it after
# the rustdoc build.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
docs=(README.md ARCHITECTURE.md MIGRATION.md)

for f in "${docs[@]}"; do
    if [ ! -f "$f" ]; then
        echo "missing doc file: $f"
        fail=1
        continue
    fi
    # Markdown links: ](target). Skip absolute URLs and pure anchors;
    # strip any #fragment before checking the path exists.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$path" ]; then
            echo "$f: broken link -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

# Cross-reference contract: the quickstart links both guides, and the
# architecture doc links back.
grep -q '](ARCHITECTURE.md)' README.md || { echo "README.md must link ARCHITECTURE.md"; fail=1; }
grep -q '](MIGRATION.md)' README.md || { echo "README.md must link MIGRATION.md"; fail=1; }
grep -q '](README.md)' ARCHITECTURE.md || { echo "ARCHITECTURE.md must link README.md"; fail=1; }

# Content contract for the batch-update / lock-free-read surface: the
# invalidation table must cover changesets, and both guides must
# document the lock-free published-snapshot read path.
grep -q 'stage_batch' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the batch/changeset API (stage_batch)"; fail=1; }
grep -q 'Changeset' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md invalidation table must cover Changeset batches"; fail=1; }
grep -qi 'lock-free' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the lock-free view-cache read path"; fail=1; }
grep -q 'Changeset' MIGRATION.md \
    || { echo "MIGRATION.md concurrent-usage must cover the Changeset batch API"; fail=1; }
grep -q 'arc-swap' MIGRATION.md \
    || { echo "MIGRATION.md concurrent-usage must cover the arc-swap read path"; fail=1; }

# Content contract for the network front end: the architecture doc must
# document the serving layer and its group-commit write path, the
# quickstart must show how to start/drive the server, and the migration
# guide must point embedders at citesys-net.
grep -q '## Network front end' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must have a 'Network front end' section"; fail=1; }
grep -qi 'group commit' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the group-commit write path"; fail=1; }
grep -q 'snapshot_swaps' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must explain the commits-vs-swaps accounting"; fail=1; }
grep -q 'serve --listen' README.md \
    || { echo "README.md must quickstart 'citesys serve --listen'"; fail=1; }
grep -q 'citesys client\|bin citesys -- client' README.md \
    || { echo "README.md must quickstart the client mode"; fail=1; }
grep -q 'citesys-net' MIGRATION.md \
    || { echo "MIGRATION.md must cover the citesys-net front end"; fail=1; }

# Content contract for the durability layer: the architecture doc must
# have a Durability section with the WAL/checkpoint/recovery story and
# the on-disk format-version table, the quickstart must show
# --data-dir, and the migration guide must record the --plan-cache
# deprecation.
grep -q '## Durability' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must have a 'Durability' section"; fail=1; }
grep -q 'write-ahead log\|WAL' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the write-ahead log"; fail=1; }
grep -qi 'format version' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must include the on-disk format-version table"; fail=1; }
grep -q 'DurableStore' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the DurableStore trait"; fail=1; }
grep -q 'data-dir' README.md \
    || { echo "README.md must quickstart 'serve --data-dir'"; fail=1; }
grep -q 'citesys recover\|bin citesys -- recover' README.md \
    || { echo "README.md must show the recover subcommand"; fail=1; }
grep -q 'plan-cache' MIGRATION.md \
    || { echo "MIGRATION.md must record the --plan-cache deprecation"; fail=1; }
grep -qi 'deprecat' MIGRATION.md \
    || { echo "MIGRATION.md must mark --plan-cache as deprecated"; fail=1; }

# Content contract for the replication subsystem: the architecture doc
# must have a Replication section covering the readonly rejection and
# the lag counter, the quickstart must show `serve --follow`, and the
# migration guide must record the new readonly error class.
grep -q '## Replication' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must have a 'Replication' section"; fail=1; }
grep -q 'err readonly' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the 'err readonly' rejection"; fail=1; }
grep -q 'replica_lag_versions' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the replica_lag_versions counter"; fail=1; }
grep -q 'serve --follow\|--follow 127' README.md \
    || { echo "README.md must quickstart 'serve --follow'"; fail=1; }
grep -q 'replica_lag_versions' README.md \
    || { echo "README.md must mention the replica_lag_versions observable"; fail=1; }
grep -q 'readonly' MIGRATION.md \
    || { echo "MIGRATION.md must record the readonly error class"; fail=1; }
grep -q -- '--follow' MIGRATION.md \
    || { echo "MIGRATION.md must cover serve --follow"; fail=1; }

# Content contract for the event-driven transport: the architecture
# doc must document the event loop, tag framing and backpressure, and
# the quickstart must show --event-loop and the pipelined client mode.
grep -q '## Event loop & pipelining' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must have an 'Event loop & pipelining' section"; fail=1; }
grep -q 'ok @' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the @tag response framing"; fail=1; }
grep -qi 'backpressure' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the event loop's backpressure rules"; fail=1; }
grep -q -- '--event-loop' README.md \
    || { echo "README.md must quickstart 'serve --event-loop'"; fail=1; }
grep -q 'client --pipeline' README.md \
    || { echo "README.md must show the pipelined client mode"; fail=1; }

# Content contract for time travel & history lifecycle: the
# architecture doc must document the anchor/retention/compaction
# story and the @ version semantics, the quickstart must show
# `cite … @ <version>` with the lifecycle flags, and the migration
# guide must record the compacted-history error surface.
grep -q '## Time travel & history lifecycle' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must have a 'Time travel & history lifecycle' section"; fail=1; }
grep -q 'anchors/' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the anchors/ layout"; fail=1; }
grep -q 'history_base_version' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the history_base_version counter"; fail=1; }
grep -q 'CompactedVersion' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the CompactedVersion error"; fail=1; }
grep -q '@ <version>\|@ .version' README.md \
    || { echo "README.md must quickstart 'cite … @ <version>'"; fail=1; }
grep -q -- '--checkpoint-every' README.md \
    || { echo "README.md must show serve --checkpoint-every"; fail=1; }
grep -q -- '--retain-checkpoints' README.md \
    || { echo "README.md must show serve --retain-checkpoints"; fail=1; }
grep -q 'history_base_version' README.md \
    || { echo "README.md must mention the history_base_version observable"; fail=1; }
grep -q 'CompactedVersion\|compacted by a checkpoint' MIGRATION.md \
    || { echo "MIGRATION.md must record the compacted-history error"; fail=1; }
grep -q -- '--retain-checkpoints' MIGRATION.md \
    || { echo "MIGRATION.md must cover the --retain-checkpoints behaviour change"; fail=1; }

# Content contract for the observability layer: the architecture doc
# must document the span taxonomy, the metric naming table and the
# scrape endpoint contract, the quickstart must show --metrics and the
# slow-cite log, and the migration guide must record the
# registry-backed stats change.
grep -q '## Observability' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must have an 'Observability' section"; fail=1; }
grep -q '### Span taxonomy' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the span taxonomy"; fail=1; }
grep -q 'plan_lookup' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md span taxonomy must name the cite stages"; fail=1; }
grep -q 'citesys_cite_stage_seconds' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must include the metric naming table"; fail=1; }
grep -q '### Scrape endpoint contract' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the scrape endpoint contract"; fail=1; }
grep -q 'text/plain; version=0.0.4' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must pin the exposition content type"; fail=1; }
grep -q -- '--metrics' README.md \
    || { echo "README.md must quickstart 'serve --metrics'"; fail=1; }
grep -q -- '--slow-cite-ms' README.md \
    || { echo "README.md must quickstart --slow-cite-ms"; fail=1; }
grep -q '^slow-cite total=' README.md \
    || { echo "README.md must show a slow-cite log line"; fail=1; }
grep -q 'registry' MIGRATION.md \
    || { echo "MIGRATION.md must record the registry-backed stats migration"; fail=1; }
grep -q 'sorted by name' MIGRATION.md \
    || { echo "MIGRATION.md must record the sorted stats output"; fail=1; }

# Content contract for the ingestion vertical: the architecture doc
# must document the dataset registry, the manifest codec and the
# tamper exit code, the quickstart must show the ingest CLI and
# dataset verify, and the migration guide must record the load/ingest
# behaviour change and the new exit code.
grep -q '## Dataset registry & ingestion' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must have a 'Dataset registry & ingestion' section"; fail=1; }
grep -q 'citesys-datasets v1' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must pin the datasets.lock format version"; fail=1; }
grep -q 'datasets.lock' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the datasets.lock manifest"; fail=1; }
grep -q 'datasets.audit' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the append-only audit log"; fail=1; }
grep -q 'peak_buffered_bytes' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the bounded-memory reader contract"; fail=1; }
grep -q 'citesys ingest\|bin citesys -- ingest' README.md \
    || { echo "README.md must quickstart 'citesys ingest'"; fail=1; }
grep -q 'dataset verify' README.md \
    || { echo "README.md must quickstart 'dataset verify'"; fail=1; }
grep -q 'exit 6' README.md \
    || { echo "README.md must show the tamper exit code 6"; fail=1; }
grep -q 'datasets.lock' README.md \
    || { echo "README.md must mention the datasets.lock manifest"; fail=1; }
grep -q 'key(i' MIGRATION.md \
    || { echo "MIGRATION.md must record the load key-clause change"; fail=1; }
grep -q 'exit code 6' MIGRATION.md \
    || { echo "MIGRATION.md must record the dataset-verify exit code"; fail=1; }

if [ "$fail" -eq 0 ]; then
    echo "doc links ok (${docs[*]})"
fi
exit "$fail"

#!/usr/bin/env bash
# Doc-link check: every relative markdown link in the top-level docs must
# resolve to an existing file, and the quickstart README must link the
# architecture and migration guides. Run from anywhere; CI runs it after
# the rustdoc build.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
docs=(README.md ARCHITECTURE.md MIGRATION.md)

for f in "${docs[@]}"; do
    if [ ! -f "$f" ]; then
        echo "missing doc file: $f"
        fail=1
        continue
    fi
    # Markdown links: ](target). Skip absolute URLs and pure anchors;
    # strip any #fragment before checking the path exists.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$path" ]; then
            echo "$f: broken link -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

# Cross-reference contract: the quickstart links both guides, and the
# architecture doc links back.
grep -q '](ARCHITECTURE.md)' README.md || { echo "README.md must link ARCHITECTURE.md"; fail=1; }
grep -q '](MIGRATION.md)' README.md || { echo "README.md must link MIGRATION.md"; fail=1; }
grep -q '](README.md)' ARCHITECTURE.md || { echo "ARCHITECTURE.md must link README.md"; fail=1; }

# Content contract for the batch-update / lock-free-read surface: the
# invalidation table must cover changesets, and both guides must
# document the lock-free published-snapshot read path.
grep -q 'stage_batch' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the batch/changeset API (stage_batch)"; fail=1; }
grep -q 'Changeset' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md invalidation table must cover Changeset batches"; fail=1; }
grep -qi 'lock-free' ARCHITECTURE.md \
    || { echo "ARCHITECTURE.md must document the lock-free view-cache read path"; fail=1; }
grep -q 'Changeset' MIGRATION.md \
    || { echo "MIGRATION.md concurrent-usage must cover the Changeset batch API"; fail=1; }
grep -q 'arc-swap' MIGRATION.md \
    || { echo "MIGRATION.md concurrent-usage must cover the arc-swap read path"; fail=1; }

if [ "$fail" -eq 0 ]; then
    echo "doc links ok (${docs[*]})"
fi
exit "$fail"

#!/usr/bin/env bash
# Crash-recovery smoke test: start `citesys serve --listen --data-dir`,
# commit through the group-commit window, SIGKILL the server right
# after the commit is acked (before any further checkpoint), then
# assert that `citesys recover` and a restarted server replay the
# write-ahead log to the acked version with warm views and plans. Also
# checks that a torn final WAL record truncates cleanly. CI runs this
# as the dedicated recovery-smoke job (and net-smoke.sh chains into it).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/citesys
if [ ! -x "$BIN" ]; then
    cargo build --release --bin citesys
fi

workdir=$(mktemp -d)
data="$workdir/data"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

start_server() {
    "$BIN" serve --listen 127.0.0.1:0 --data-dir "$data" \
        > "$workdir/server.out" 2> "$workdir/server.err" &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$workdir/server.out" | tail -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "server did not report its address"
        cat "$workdir/server.err"
        exit 1
    fi
}

# --- Phase 1: populate, checkpoint, then one WAL-only commit ---------------
cat > "$workdir/setup.cts" <<'EOF'
schema Family(FID:int, FName:text, Desc:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert FamilyIntro(11, '1st')
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'
commit
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
checkpoint
begin
insert Family(12, 'Dopamine', 'D1')
insert FamilyIntro(12, '2nd')
commit
EOF
start_server
echo "server listening on $addr (data dir $data)"
"$BIN" client "$addr" "$workdir/setup.cts" > "$workdir/setup.out"
grep -qF "checkpoint at version 1" "$workdir/setup.out" || {
    echo "FAIL: checkpoint did not run"; cat "$workdir/setup.out"; exit 1; }
grep -qF "committed version 2" "$workdir/setup.out" || {
    echo "FAIL: post-checkpoint commit not acked"; cat "$workdir/setup.out"; exit 1; }

# --- Phase 2: crash. SIGKILL right after the ack, before any further
# checkpoint — the v2 commit exists only in the write-ahead log. --------
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "server killed (SIGKILL) after ack, before checkpoint"

# --- Phase 3: offline recovery sees the acked version ----------------------
"$BIN" recover "$data" > "$workdir/recover.out"
grep -qF "recovered to version 2" "$workdir/recover.out" || {
    echo "FAIL: recover did not reach the acked version"; cat "$workdir/recover.out"; exit 1; }
grep -qF "wal: 1 record(s) replayed" "$workdir/recover.out" || {
    echo "FAIL: wal record not replayed"; cat "$workdir/recover.out"; exit 1; }
"$BIN" wal dump "$data" | grep -qF "i Family(12, 'Dopamine', 'D1')" || {
    echo "FAIL: wal dump lacks the logged changeset"; exit 1; }

# --- Phase 4: a restarted server serves the recovered state, warm ----------
cat > "$workdir/after.cts" <<'EOF'
tables
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
verify
stats
EOF
start_server
"$BIN" client "$addr" "$workdir/after.cts" > "$workdir/after.out"
assert_out() {
    if ! grep -qF "$1" "$workdir/after.out"; then
        echo "FAIL: restarted server output lacks '$1'"
        cat "$workdir/after.out"
        exit 1
    fi
}
assert_out "Family: 2 tuples"
assert_out "2 answer tuple(s) at version 2"
assert_out "fixity verified: v2"
# Warmth: recovery seeded the checkpointed views and carried the WAL
# replay by delta maintenance — the cite above materialized nothing and
# reused the checkpointed plan.
assert_out "view_materializations 0"
assert_out "plan_cache_misses 0"
echo "shutdown" | "$BIN" client "$addr" > /dev/null
wait "$server_pid"
server_pid=""

# --- Phase 5: a torn final WAL record truncates cleanly --------------------
printf 'record 3 2\ni Family(99, ' >> "$data/wal.log"
"$BIN" recover "$data" > "$workdir/torn.out" 2> "$workdir/torn.err"
grep -qF "recovered to version 2" "$workdir/torn.out" || {
    echo "FAIL: torn WAL tail broke recovery"; cat "$workdir/torn.out" "$workdir/torn.err"; exit 1; }

echo "recovery smoke ok ($data)"

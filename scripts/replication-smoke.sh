#!/usr/bin/env bash
# Replication smoke test: start a primary (`citesys serve`), attach a
# follower (`serve --follow`) on an ephemeral port, and assert the
# replica serves byte-identical cite answers and fixity digests, rejects
# writes naming the primary (exit code 4), and reports zero
# `replica_lag_versions` once caught up. Then SIGKILL the follower,
# commit on the primary while it is down, restart the follower from the
# same data dir, and assert it resumes from its local WAL — the primary
# ships exactly the one missed record, not a fresh checkpoint. CI runs
# this as the dedicated replication-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/citesys
if [ ! -x "$BIN" ]; then
    cargo build --release --bin citesys
fi

workdir=$(mktemp -d)
pdata="$workdir/primary"
fdata="$workdir/follower"
primary_pid=""
follower_pid=""
cleanup() {
    for pid in "$primary_pid" "$follower_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

# Polls `listening on <addr>` out of a server log; sets $addr.
read_addr() {
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$1" | tail -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: server did not report its address"
        cat "${1%.out}.err" 2>/dev/null || true
        exit 1
    fi
}

start_primary() {
    "$BIN" serve --listen 127.0.0.1:0 --data-dir "$pdata" \
        > "$workdir/primary.out" 2> "$workdir/primary.err" &
    primary_pid=$!
    read_addr "$workdir/primary.out"
    paddr=$addr
}

start_follower() {
    "$BIN" serve --listen 127.0.0.1:0 --data-dir "$fdata" --follow "$paddr" \
        > "$workdir/follower.out" 2> "$workdir/follower.err" &
    follower_pid=$!
    read_addr "$workdir/follower.out"
    faddr=$addr
    grep -qF "following $paddr" "$workdir/follower.out" || {
        echo "FAIL: follower did not announce its primary"
        cat "$workdir/follower.out"; exit 1; }
}

# The read-side script both servers must answer identically.
cat > "$workdir/read.cts" <<'EOF'
tables
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
verify
EOF

# Pulls one stats counter off a server; prints its value.
stat_of() {
    echo "stats" | "$BIN" client "$1" | sed -n "s/^$2 //p"
}

# Polls until `cmd...` succeeds (exit 0) or ~10s pass.
wait_until() {
    local desc=$1
    shift
    for _ in $(seq 1 100); do
        if "$@" > /dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: timed out waiting for $desc"
    cat "$workdir/follower.err" 2>/dev/null || true
    exit 1
}

follower_matches_primary() {
    "$BIN" client "$paddr" "$workdir/read.cts" > "$workdir/primary.read" 2>/dev/null
    "$BIN" client "$faddr" "$workdir/read.cts" > "$workdir/follower.read" 2>/dev/null
    cmp -s "$workdir/primary.read" "$workdir/follower.read"
}

# --- Phase 1: primary up, populated -----------------------------------------
cat > "$workdir/setup.cts" <<'EOF'
schema Family(FID:int, FName:text, Desc:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert FamilyIntro(11, '1st')
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'
commit
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
EOF
start_primary
echo "primary listening on $paddr (data dir $pdata)"
"$BIN" client "$paddr" "$workdir/setup.cts" > "$workdir/setup.out"
grep -qF "committed version 1" "$workdir/setup.out" || {
    echo "FAIL: primary setup commit not acked"; cat "$workdir/setup.out"; exit 1; }

# --- Phase 2: follower bootstraps and serves identical reads ----------------
start_follower
echo "follower listening on $faddr (data dir $fdata), following $paddr"
wait_until "follower catch-up" follower_matches_primary
grep -qF "fixity verified" "$workdir/follower.read" || {
    echo "FAIL: follower did not verify fixity"; cat "$workdir/follower.read"; exit 1; }
echo "follower read output byte-identical to primary (incl. fixity digest)"

# --- Phase 3: follower rejects writes, naming the primary -------------------
set +e
echo "insert Family(99, 'Nope', 'X')" | "$BIN" client "$faddr" \
    > "$workdir/ro.out" 2> "$workdir/ro.err"
rc=$?
set -e
[ "$rc" -eq 4 ] || {
    echo "FAIL: readonly rejection exited $rc, expected 4"; cat "$workdir/ro.err"; exit 1; }
grep -qF "read-only replica of $paddr" "$workdir/ro.err" || {
    echo "FAIL: readonly error does not name the primary"; cat "$workdir/ro.err"; exit 1; }
echo "follower rejected a write with a readonly error naming the primary"

# --- Phase 4: lag stays bounded across primary commits ----------------------
cat > "$workdir/storm.cts" <<'EOF'
insert Family(12, 'Dopamine', 'D1')
commit
insert FamilyIntro(12, '2nd')
commit
insert Family(13, 'Ghrelin', 'G1')
commit
EOF
"$BIN" client "$paddr" "$workdir/storm.cts" > /dev/null
lag_is_zero() { [ "$(stat_of "$faddr" replica_lag_versions)" = "0" ]; }
wait_until "replica lag to drain" lag_is_zero
wait_until "follower convergence" follower_matches_primary
stat_of "$faddr" following | grep -qF "$paddr" || {
    echo "FAIL: follower stats do not report the primary"; exit 1; }
echo "replica_lag_versions drained to 0 after the commit storm"

# --- Phase 5: SIGKILL the follower, commit while down, resume from WAL ------
kill -9 "$follower_pid"
wait "$follower_pid" 2>/dev/null || true
follower_pid=""
echo "follower killed (SIGKILL)"
no_feed() { [ "$(stat_of "$paddr" replicas_connected)" = "0" ]; }
wait_until "primary to drop the dead feed" no_feed
shipped_before=$(stat_of "$paddr" replica_records_shipped)
printf "insert Family(14, 'Orexin', 'O1')\ncommit\n" | "$BIN" client "$paddr" > /dev/null
start_follower
wait_until "follower to resume and converge" follower_matches_primary
shipped_after=$(stat_of "$paddr" replica_records_shipped)
delta=$((shipped_after - shipped_before))
[ "$delta" -eq 1 ] || {
    echo "FAIL: expected exactly 1 shipped record after restart, got $delta"
    echo "(a checkpoint re-bootstrap ships 0; a full WAL replay ships more)"
    exit 1; }
echo "restarted follower resumed from its local WAL (1 record shipped)"

echo "replication smoke ok (primary $pdata, follower $fdata)"

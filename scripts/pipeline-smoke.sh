#!/usr/bin/env bash
# Pipelined-transport smoke test: start `citesys serve --event-loop` on
# an ephemeral port, run a `client --pipeline` script whose whole body
# goes out before the first response comes back (asserting the commit
# burst coalesced into one group window), check raw `@tag` framing over
# /dev/tcp, attach a `serve --follow` replica through the event
# transport's feed handoff, then shut the primary down over the wire.
# CI runs this as the dedicated pipeline-smoke job; it needs only
# loopback networking.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/citesys
if [ ! -x "$BIN" ]; then
    cargo build --release --bin citesys
fi

workdir=$(mktemp -d)
primary_pid=""
follower_pid=""
cleanup() {
    for pid in "$primary_pid" "$follower_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

# Polls `listening on <addr>` out of a server log; sets $addr.
read_addr() {
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$1" | tail -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: server did not report its address"
        cat "${1%.out}.err" 2>/dev/null || true
        exit 1
    fi
}

# Polls until `cmd...` succeeds (exit 0) or ~10s pass.
wait_until() {
    local desc=$1
    shift
    for _ in $(seq 1 100); do
        if "$@" > /dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: timed out waiting for $desc"
    exit 1
}

# --- Phase 1: event-loop primary, pipelined scripted client -----------------
"$BIN" serve --listen 127.0.0.1:0 --event-loop --max-connections 512 \
    --commit-window-ms 200 --data-dir "$workdir/primary" \
    > "$workdir/primary.out" 2> "$workdir/primary.err" &
primary_pid=$!
read_addr "$workdir/primary.out"
paddr=$addr
grep -qF "event loop enabled (max 512 connections)" "$workdir/primary.out" || {
    echo "FAIL: server did not announce the event transport"
    cat "$workdir/primary.out"; exit 1; }
echo "event-loop primary listening on $paddr"

# The whole script is pipelined up front, so the two `commit` lines are
# in flight together and must coalesce into one group-commit window.
cat > "$workdir/smoke.cts" <<'EOF'
schema Family(FID:int, FName:text, Desc:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert FamilyIntro(11, '1st')
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'
commit
begin
insert Family(12, 'Dopamine', 'D1')
insert FamilyIntro(12, '2nd')
commit
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
verify
stats
EOF
"$BIN" client --pipeline "$paddr" "$workdir/smoke.cts" > "$workdir/client.out"

assert_out() {
    if ! grep -qF "$1" "$workdir/client.out"; then
        echo "FAIL: pipelined client output lacks '$1'"
        cat "$workdir/client.out"
        exit 1
    fi
}
assert_out "schema Family (3 attributes)"
assert_out "view V2 registered"
# Both commits merged: one version, group of 2, twice.
assert_out "committed version 1 (2 op(s), group of 2)"
if [ "$(grep -cF 'group of 2' "$workdir/client.out")" -ne 2 ]; then
    echo "FAIL: expected both commit acks to report the merged group"
    cat "$workdir/client.out"
    exit 1
fi
assert_out "2 answer tuple(s) at version 1"
assert_out "GtoPdb"
assert_out "fixity verified: v1"
assert_out "commits 2"
echo "pipelined script ok (commit burst coalesced into one window)"

# --- Phase 2: raw tagged framing over /dev/tcp ------------------------------
host=${paddr%:*}
port=${paddr##*:}
exec 3<>"/dev/tcp/$host/$port"
printf '@t1 tables\n@t2 quit\n' >&3
timeout 10 cat <&3 > "$workdir/raw.out" || true
exec 3>&- 3<&-
grep -q '^citesys-net v1' "$workdir/raw.out" || {
    echo "FAIL: no banner on raw connection"; cat "$workdir/raw.out"; exit 1; }
grep -q '^ok @t1 ' "$workdir/raw.out" || {
    echo "FAIL: tagged response for @t1 missing"; cat "$workdir/raw.out"; exit 1; }
grep -q '^ok @t2 1' "$workdir/raw.out" || {
    echo "FAIL: tagged farewell for @t2 missing"; cat "$workdir/raw.out"; exit 1; }
echo "raw @tag framing ok"

# --- Phase 3: error exit codes through the pipelined client -----------------
set +e
echo "cite Q(X) :- Nope(X)" | "$BIN" client --pipeline "$paddr" \
    > /dev/null 2> "$workdir/err.out"
code=$?
set -e
if [ "$code" -ne 4 ]; then
    echo "FAIL: citation error exit code was $code (want 4)"
    cat "$workdir/err.out"
    exit 1
fi
echo "pipelined citation error exited 4"

# --- Phase 4: replication follower through the event transport --------------
"$BIN" serve --listen 127.0.0.1:0 --event-loop --data-dir "$workdir/follower" \
    --follow "$paddr" \
    > "$workdir/follower.out" 2> "$workdir/follower.err" &
follower_pid=$!
read_addr "$workdir/follower.out"
faddr=$addr
grep -qF "following $paddr" "$workdir/follower.out" || {
    echo "FAIL: follower did not announce its primary"
    cat "$workdir/follower.out"; exit 1; }

cat > "$workdir/read.cts" <<'EOF'
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
verify
EOF
follower_matches_primary() {
    "$BIN" client --pipeline "$paddr" "$workdir/read.cts" \
        > "$workdir/primary.read" 2>/dev/null
    "$BIN" client --pipeline "$faddr" "$workdir/read.cts" \
        > "$workdir/follower.read" 2>/dev/null
    cmp -s "$workdir/primary.read" "$workdir/follower.read"
}
wait_until "follower catch-up over the event transport" follower_matches_primary
grep -qF "fixity verified" "$workdir/follower.read" || {
    echo "FAIL: follower did not verify fixity"
    cat "$workdir/follower.read"; exit 1; }
echo "follower replicated through the event transport (byte-identical reads)"

set +e
echo "insert Family(99, 'Nope', 'X')" | "$BIN" client --pipeline "$faddr" \
    > /dev/null 2> "$workdir/ro.err"
rc=$?
set -e
[ "$rc" -eq 4 ] || {
    echo "FAIL: readonly rejection exited $rc, expected 4"
    cat "$workdir/ro.err"; exit 1; }
echo "follower rejected a pipelined write (exit 4)"

# --- Phase 5: wire shutdown of both servers ---------------------------------
echo "shutdown" | "$BIN" client --pipeline "$faddr" > /dev/null
wait "$follower_pid"
follower_pid=""
echo "shutdown" | "$BIN" client --pipeline "$paddr" > /dev/null
wait "$primary_pid"
primary_pid=""

echo "pipeline smoke ok ($paddr)"

#!/usr/bin/env bash
# End-to-end smoke test of the TCP front end: start `citesys serve
# --listen` on an ephemeral port, run a client script exercising
# schema / insert / view / cite / begin-commit / stats, assert the
# output, then shut the server down over the wire. CI runs this after
# the release build; it needs only loopback networking.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/citesys
if [ ! -x "$BIN" ]; then
    cargo build --release --bin citesys
fi

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

cat > "$workdir/smoke.cts" <<'EOF'
schema Family(FID:int, FName:text, Desc:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert FamilyIntro(11, '1st')
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'
commit
begin
insert Family(12, 'Dopamine', 'D1')
insert FamilyIntro(12, '2nd')
commit
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
verify
stats
EOF

"$BIN" serve --listen 127.0.0.1:0 --plan-cache "$workdir/smoke.plans" \
    > "$workdir/server.out" 2> "$workdir/server.err" &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$workdir/server.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "server did not report its address"
    cat "$workdir/server.err"
    exit 1
fi
echo "server listening on $addr"

"$BIN" client "$addr" "$workdir/smoke.cts" > "$workdir/client.out"

assert_out() {
    if ! grep -qF "$1" "$workdir/client.out"; then
        echo "FAIL: client output lacks '$1'"
        cat "$workdir/client.out"
        exit 1
    fi
}
assert_out "schema Family (3 attributes)"
assert_out "view V2 registered"
assert_out "committed version 1"
assert_out "committed version 2 (2 op(s), group of 1)"
assert_out "2 answer tuple(s) at version 2"
assert_out "GtoPdb"
assert_out "fixity verified: v2"
assert_out "commits 2"

# A protocol/citation error must come back framed with the right exit
# code, without ending the server.
set +e
echo "cite Q(X) :- Nope(X)" | "$BIN" client "$addr" > /dev/null 2> "$workdir/err.out"
code=$?
set -e
if [ "$code" -ne 4 ]; then
    echo "FAIL: citation error exit code was $code (want 4)"
    cat "$workdir/err.out"
    exit 1
fi

# The periodic plan-cache save already persisted the cite's plan — the
# durability guarantee, checked while the server is still running.
if ! grep -q "^citesys-plan-cache v1" "$workdir/smoke.plans"; then
    echo "FAIL: plan cache not persisted mid-session"
    exit 1
fi

# Graceful remote shutdown.
echo "shutdown" | "$BIN" client "$addr" > /dev/null
wait "$server_pid"
server_pid=""

echo "net smoke ok ($addr)"

# Crash-recovery phase: SIGKILL the server mid-commit-window (after the
# ack, before any checkpoint) and assert the reopened store replays the
# write-ahead log to the acked version with warm caches.
"$(dirname "$0")/recovery-smoke.sh"

//! # citesys-obs — hermetic observability primitives
//!
//! A dependency-free metrics and tracing layer for the citation server:
//!
//! * **Instruments** — [`Counter`], [`Gauge`] and fixed-bucket latency
//!   [`Histogram`]s, all plain `AtomicU64` state so the hot path is a
//!   handful of relaxed atomic ops and never takes a lock.
//! * **[`Registry`]** — owns the instrument families (name, help text,
//!   labels) and renders them in Prometheus **text exposition format**
//!   (`# HELP`/`# TYPE`, `_bucket{le=…}`/`_sum`/`_count` for
//!   histograms), sorted by family name so scrapes diff cleanly.
//!   Registration takes a mutex once; recording never does.
//! * **Spans** — [`SpanTimer`] and [`SpanSet`]: lightweight per-request
//!   tracing used to break a `cite` into its pipeline stages
//!   (plan-cache lookup → rewrite → eval → digest → render) for stage
//!   histograms and the slow-cite log. When timings are disabled the
//!   timers skip the clock reads entirely, so the disabled cost is a
//!   branch, not a syscall.
//!
//! Histograms measure in **microseconds** internally and expose
//! **seconds** (Prometheus convention). Percentiles (p50/p95/p99) are
//! extracted from the bucket counts with linear interpolation inside
//! the winning bucket.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value. Counters are normally monotone; this exists
    /// for **scrape-time mirrors** — counters whose source of truth is an
    /// existing atomic elsewhere (plan-cache shards, the view cache) and
    /// which the registry refreshes just before rendering.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (running maximum).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec_sat(&self) {
        // fetch_update never fails with this closure shape.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in microseconds: 5µs … 10s in a
/// roughly 1-2.5-5 progression, chosen so plan-cache lookups (~µs),
/// cites (~100µs–10ms) and fsyncs (~ms) all land mid-range.
pub const DEFAULT_LATENCY_BOUNDS_US: &[u64] = &[
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket latency histogram.
///
/// `bounds` are inclusive upper bounds in microseconds; one implicit
/// `+Inf` bucket catches the rest. Recording is two relaxed atomic adds
/// and one increment — no locks, no allocation. Recording is skipped
/// entirely while the owning registry's timings are
/// [disabled](Registry::set_timings_enabled).
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// A point-in-time copy of a histogram's state.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds in microseconds (the `+Inf` bucket is
    /// `counts.last()`).
    pub bounds_us: Vec<u64>,
    /// Per-bucket observation counts (`bounds_us.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all observed values, microseconds.
    pub sum_us: u64,
    /// Total observations.
    pub count: u64,
}

impl Histogram {
    fn new(enabled: Arc<AtomicBool>, bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            enabled,
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// True while the owning registry has timings enabled. Callers use
    /// this to skip the clock reads feeding the histogram.
    pub fn timings_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one observation of `us` microseconds. A no-op while
    /// timings are disabled.
    pub fn observe_micros(&self, us: u64) {
        if !self.timings_enabled() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`].
    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values, microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for rendering and percentile math
    /// (buckets are read individually; a racing observation may land
    /// between reads, which scraping tolerates by design).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds_us: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.count(),
        }
    }

    /// The `q`-quantile (0 < q ≤ 1) in **seconds**, linearly
    /// interpolated inside the winning bucket (assuming a uniform
    /// spread, the Prometheus `histogram_quantile` convention). Returns
    /// `None` with no observations. Observations in the `+Inf` bucket
    /// clamp to the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if (cumulative as f64) >= rank && n > 0 {
                if i >= self.bounds_us.len() {
                    // +Inf bucket: clamp to the largest finite bound.
                    return Some(*self.bounds_us.last().expect("nonempty") as f64 / 1e6);
                }
                let upper = self.bounds_us[i] as f64;
                let lower = if i == 0 {
                    0.0
                } else {
                    self.bounds_us[i - 1] as f64
                };
                let before = (cumulative - n) as f64;
                let frac = ((rank - before) / n as f64).clamp(0.0, 1.0);
                return Some((lower + (upper - lower) * frac) / 1e6);
            }
        }
        Some(*self.bounds_us.last().expect("nonempty") as f64 / 1e6)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Label pairs attached to one instrument within a family.
pub type Labels = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    name: String,
    help: String,
    members: Vec<(Labels, Instrument)>,
}

/// The instrument registry: one per server/store.
///
/// Registration (`counter`, `gauge`, `histogram` and their `_with`
/// label variants) is idempotent — asking for an existing
/// `(name, labels)` pair hands back the same instrument — and takes a
/// mutex; recording on the returned `Arc`s never does.
pub struct Registry {
    timings_enabled: Arc<AtomicBool>,
    families: Mutex<Vec<Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with timings enabled.
    pub fn new() -> Self {
        Registry {
            timings_enabled: Arc::new(AtomicBool::new(true)),
            families: Mutex::new(Vec::new()),
        }
    }

    /// Turns latency-histogram recording (and, via
    /// [`timings_enabled`](Self::timings_enabled), callers' span clock
    /// reads) on or off. Counters and gauges are unaffected — they feed
    /// the `stats` command and must stay correct either way.
    pub fn set_timings_enabled(&self, enabled: bool) {
        self.timings_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether latency timings are currently recorded.
    pub fn timings_enabled(&self) -> bool {
        self.timings_enabled.load(Ordering::Relaxed)
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, help, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, help, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram with the
    /// [default latency buckets](DEFAULT_LATENCY_BOUNDS_US).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled histogram with the
    /// [default latency buckets](DEFAULT_LATENCY_BOUNDS_US).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let enabled = Arc::clone(&self.timings_enabled);
        match self.instrument(name, help, labels, move || {
            Instrument::Histogram(Arc::new(Histogram::new(enabled, DEFAULT_LATENCY_BOUNDS_US)))
        }) {
            Instrument::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let labels: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    members: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, existing)) = family.members.iter().find(|(l, _)| *l == labels) {
            return clone_instrument(existing);
        }
        let made = make();
        let out = clone_instrument(&made);
        family.members.push((labels, made));
        out
    }

    /// Renders every family in Prometheus text exposition format,
    /// sorted by family name (and by label set within a family) so
    /// consecutive scrapes diff cleanly.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));
        let mut out = String::new();
        for idx in order {
            let f = &families[idx];
            let kind = match f.members.first() {
                Some((_, i)) => i.kind(),
                None => continue,
            };
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, kind));
            let mut members: Vec<&(Labels, Instrument)> = f.members.iter().collect();
            members.sort_by(|a, b| a.0.cmp(&b.0));
            for (labels, inst) in members {
                render_member(&mut out, &f.name, labels, inst);
            }
        }
        out
    }
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
    }
}

/// `{k="v",…}` with label values escaped per the exposition format.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Microseconds → seconds, rendered as a minimal decimal (`0.00025`,
/// `1`, `2.5`), never scientific notation (some exposition parsers
/// choke on it for `le` values).
fn secs(us: u64) -> String {
    let whole = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        return format!("{whole}");
    }
    let s = format!("{whole}.{frac:06}");
    s.trim_end_matches('0').to_string()
}

fn render_member(out: &mut String, name: &str, labels: &[(String, String)], inst: &Instrument) {
    match inst {
        Instrument::Counter(c) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(labels, None),
                c.get()
            ));
        }
        Instrument::Gauge(g) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(labels, None),
                g.get()
            ));
        }
        Instrument::Histogram(h) => {
            let snap = h.snapshot();
            let mut cumulative = 0u64;
            for (i, &n) in snap.counts.iter().enumerate() {
                cumulative += n;
                let le = if i < snap.bounds_us.len() {
                    secs(snap.bounds_us[i])
                } else {
                    "+Inf".to_string()
                };
                out.push_str(&format!(
                    "{name}_bucket{} {cumulative}\n",
                    label_block(labels, Some(("le", &le)))
                ));
            }
            out.push_str(&format!(
                "{name}_sum{} {}\n",
                label_block(labels, None),
                secs(snap.sum_us)
            ));
            out.push_str(&format!(
                "{name}_count{} {}\n",
                label_block(labels, None),
                snap.count
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A start-time capture that costs nothing when timings are off.
#[derive(Debug)]
pub struct SpanTimer(Option<Instant>);

impl SpanTimer {
    /// Starts the timer — reads the clock only when `enabled`.
    pub fn start(enabled: bool) -> Self {
        SpanTimer(enabled.then(Instant::now))
    }

    /// Microseconds since [`start`](Self::start) (0 when disabled).
    pub fn elapsed_micros(&self) -> u64 {
        self.0
            .map(|t| t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0)
    }
}

/// The named stage durations of one traced request, in pipeline order.
///
/// A disabled set records nothing and reports no spans, so the same
/// code path serves both the instrumented and the bare cite.
#[derive(Debug)]
pub struct SpanSet {
    enabled: bool,
    spans: Vec<(&'static str, u64)>,
}

impl SpanSet {
    /// A span set that records when `enabled`.
    pub fn new(enabled: bool) -> Self {
        SpanSet {
            enabled,
            spans: Vec::new(),
        }
    }

    /// A span set that records nothing (the un-instrumented path).
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether this set records (callers skip clock reads when not).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `us` microseconds against stage `name`.
    pub fn record_micros(&mut self, name: &'static str, us: u64) {
        if self.enabled {
            self.spans.push((name, us));
        }
    }

    /// Times `f` as stage `name`.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let t = SpanTimer::start(self.enabled);
        let out = f();
        self.record_micros(name, t.elapsed_micros());
        out
    }

    /// The recorded duration of stage `name`, if it ran.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.spans
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, us)| *us)
    }

    /// All recorded `(stage, microseconds)` pairs, in recording order.
    pub fn spans(&self) -> &[(&'static str, u64)] {
        &self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(42);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7, "set_max must not lower");
        g.set_max(9);
        assert_eq!(g.get(), 9);
        g.inc();
        assert_eq!(g.get(), 10);
        g.set(0);
        g.dec_sat();
        assert_eq!(g.get(), 0, "dec_sat saturates at zero");
    }

    fn hist(bounds: &[u64]) -> Histogram {
        Histogram::new(Arc::new(AtomicBool::new(true)), bounds)
    }

    #[test]
    fn histogram_bucket_placement() {
        let h = hist(&[10, 100, 1000]);
        h.observe_micros(10); // inclusive upper bound → first bucket
        h.observe_micros(11);
        h.observe_micros(100);
        h.observe_micros(5000); // +Inf
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 0, 1]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_us, 10 + 11 + 100 + 5000);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = hist(&[100, 200, 400]);
        // 100 observations uniformly "in" the 100–200µs bucket.
        for _ in 0..100 {
            h.observe_micros(150);
        }
        // p50 lands mid-bucket: 100µs + 0.5·(200−100)µs = 150µs.
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 150e-6).abs() < 1e-9, "p50 = {p50}");
        // p100 is the bucket's upper bound.
        let p100 = h.quantile(1.0).unwrap();
        assert!((p100 - 200e-6).abs() < 1e-9, "p100 = {p100}");
    }

    #[test]
    fn histogram_quantiles_across_buckets() {
        let h = hist(&[100, 200, 400]);
        for _ in 0..90 {
            h.observe_micros(50); // first bucket
        }
        for _ in 0..10 {
            h.observe_micros(300); // third bucket
        }
        // p50 is inside the first bucket; p99 inside the third.
        assert!(h.quantile(0.5).unwrap() <= 100e-6);
        let p99 = h.quantile(0.99).unwrap();
        assert!((200e-6..=400e-6).contains(&p99), "p99 = {p99}");
        // Empty histogram has no quantiles.
        assert!(hist(&[10]).quantile(0.5).is_none());
    }

    #[test]
    fn histogram_inf_bucket_clamps() {
        let h = hist(&[100]);
        h.observe_micros(1_000_000);
        assert_eq!(h.quantile(0.99), Some(100e-6));
    }

    #[test]
    fn disabled_timings_skip_recording() {
        let r = Registry::new();
        let h = r.histogram("t_seconds", "test");
        r.set_timings_enabled(false);
        h.observe_micros(10);
        assert_eq!(h.count(), 0);
        r.set_timings_enabled(true);
        h.observe_micros(10);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x_total", "help");
        let b = r.counter("x_total", "help");
        a.inc();
        assert_eq!(b.get(), 1, "same (name, labels) → same instrument");
        let l1 = r.counter_with("y_total", "help", &[("k", "v1")]);
        let l2 = r.counter_with("y_total", "help", &[("k", "v2")]);
        l1.add(2);
        assert_eq!(l2.get(), 0, "distinct labels → distinct instruments");
    }

    #[test]
    fn render_exposition_format() {
        let r = Registry::new();
        r.counter("z_total", "a counter").add(3);
        r.gauge("a_gauge", "a gauge").set(9);
        let h = r.histogram_with("lat_seconds", "latency", &[("stage", "eval")]);
        h.observe_micros(7);
        h.observe_micros(2_000_000);
        let text = r.render();
        // Families sorted by name: a_gauge < lat_seconds < z_total.
        let a = text.find("# HELP a_gauge").unwrap();
        let l = text.find("# HELP lat_seconds").unwrap();
        let z = text.find("# HELP z_total").unwrap();
        assert!(a < l && l < z, "{text}");
        assert!(text.contains("# TYPE z_total counter"));
        assert!(text.contains("z_total 3"));
        assert!(text.contains("# TYPE a_gauge gauge"));
        assert!(text.contains("a_gauge 9"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        // 7µs ≤ 10µs bound; cumulative buckets; +Inf equals count.
        assert!(text.contains("lat_seconds_bucket{stage=\"eval\",le=\"0.00001\"} 1"));
        assert!(text.contains("lat_seconds_bucket{stage=\"eval\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_count{stage=\"eval\"} 2"));
        assert!(text.contains("lat_seconds_sum{stage=\"eval\"} 2.000007"));
        // Buckets are cumulative and nondecreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_seconds_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn le_values_are_plain_decimals() {
        assert_eq!(secs(5), "0.000005");
        assert_eq!(secs(250), "0.00025");
        assert_eq!(secs(1_000_000), "1");
        assert_eq!(secs(2_500_000), "2.5");
    }

    #[test]
    fn span_set_records_in_order() {
        let mut s = SpanSet::new(true);
        s.record_micros("plan_lookup", 5);
        let out = s.time("eval", || 42);
        assert_eq!(out, 42);
        assert_eq!(s.get("plan_lookup"), Some(5));
        assert!(s.get("eval").is_some());
        assert!(s.get("render").is_none());
        assert_eq!(s.spans().len(), 2);

        let mut off = SpanSet::disabled();
        off.record_micros("eval", 5);
        assert!(off.spans().is_empty());
        assert_eq!(SpanTimer::start(false).elapsed_micros(), 0);
    }
}

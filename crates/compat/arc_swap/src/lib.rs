//! Offline shim for `arc-swap`: an atomically swappable `Arc<T>` whose
//! **read path is lock-free** — `load()` is a single `Acquire` pointer
//! load, with no reference-count traffic and no lock.
//!
//! The upstream crate reclaims old values with a hazard/debt scheme. This
//! shim uses a simpler *retire-list* design suited to published-snapshot
//! handles: every value ever stored is kept alive (in a mutex-guarded
//! list the read path never touches) until the `ArcSwap` itself is
//! dropped. That makes `load()` trivially sound — a loaded reference can
//! never dangle — at the cost of memory proportional to the number of
//! `store`s over the handle's lifetime. Use it for values that are
//! republished a bounded number of times (e.g. a view cache that grows
//! once per registered view), not for unbounded high-frequency swapping.
//!
//! API divergence from upstream, documented in `crates/compat/README.md`:
//! [`Guard`] derefs to `T` (upstream's derefs to `Arc<T>`), and only the
//! subset used by this workspace is provided.

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// An `Arc<T>` that can be atomically loaded and stored.
///
/// `load()` never blocks and never touches the reference count; `store`
/// / `swap` serialize on an internal mutex and retire the previous value
/// instead of freeing it (see the module docs for the trade-off).
pub struct ArcSwap<T> {
    /// Pointer into the allocation of the most recently stored `Arc`.
    /// Every target is kept alive by `state.history` until drop.
    current: AtomicPtr<T>,
    state: Mutex<State<T>>,
}

struct State<T> {
    /// The live value (what `current` points at).
    live: Arc<T>,
    /// Every previously stored value, retired but kept alive so that
    /// outstanding `load()` references can never dangle.
    history: Vec<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Creates a handle owning `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        let current = AtomicPtr::new(Arc::as_ptr(&initial) as *mut T);
        ArcSwap {
            current,
            state: Mutex::new(State {
                live: initial,
                history: Vec::new(),
            }),
        }
    }

    /// Creates a handle from an owned value.
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Lock-free read of the current value: one `Acquire` load, no lock,
    /// no reference-count update. The returned guard borrows `self`, and
    /// the value it points at stays alive for the handle's whole lifetime
    /// (retired values are never freed early), so the guard may be held
    /// across arbitrary work.
    pub fn load(&self) -> Guard<'_, T> {
        // SAFETY: `current` only ever holds pointers obtained from
        // `Arc::as_ptr` of Arcs stored in `state` (live or history), all
        // of which are kept alive until `self` is dropped; dropping
        // requires exclusive access, which outstanding guards (borrowing
        // `self`) prevent.
        Guard {
            value: unsafe { &*self.current.load(Ordering::Acquire) },
        }
    }

    /// Clones out the current value as an owned `Arc` (takes the internal
    /// mutex briefly; meant for writers and occasional readers that must
    /// outlive the handle).
    pub fn load_full(&self) -> Arc<T> {
        Arc::clone(&self.lock().live)
    }

    /// Publishes `new`, retiring the previous value.
    pub fn store(&self, new: Arc<T>) {
        self.swap(new);
    }

    /// Publishes `new` and returns the previously published value (which
    /// also remains retained by the handle's retire list).
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let mut state = self.lock();
        let ptr = Arc::as_ptr(&new) as *mut T;
        let old = std::mem::replace(&mut state.live, new);
        state.history.push(Arc::clone(&old));
        // Release pairs with the Acquire in `load`: a reader that sees
        // the new pointer also sees the fully initialized value.
        self.current.store(ptr, Ordering::Release);
        old
    }

    /// How many values have been retired (diagnostic for the retire-list
    /// memory trade-off).
    pub fn retired(&self) -> usize {
        self.lock().history.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap")
            .field("value", &*self.load())
            .finish()
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        ArcSwap::from_pointee(T::default())
    }
}

/// A borrowed view of the currently published value; see
/// [`ArcSwap::load`].
pub struct Guard<'a, T> {
    value: &'a T,
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Guard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.value.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_latest_store() {
        let s = ArcSwap::from_pointee(1u64);
        assert_eq!(*s.load(), 1);
        s.store(Arc::new(2));
        assert_eq!(*s.load(), 2);
        assert_eq!(*s.load_full(), 2);
        assert_eq!(s.retired(), 1);
    }

    #[test]
    fn guard_survives_concurrent_store() {
        let s = ArcSwap::from_pointee(String::from("old"));
        let g = s.load();
        s.store(Arc::new(String::from("new")));
        // The retired value is still alive and readable via the guard.
        assert_eq!(&*g, "old");
        assert_eq!(&*s.load(), "new");
    }

    #[test]
    fn swap_returns_previous() {
        let s = ArcSwap::from_pointee(10i32);
        let old = s.swap(Arc::new(20));
        assert_eq!(*old, 10);
        assert_eq!(*s.load(), 20);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let s = Arc::new(ArcSwap::from_pointee(0usize));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let mut last = 0usize;
                    for _ in 0..10_000 {
                        let v = *s.load();
                        assert!(v >= last, "published values are monotone");
                        last = v;
                    }
                });
            }
            for i in 1..=100 {
                s.store(Arc::new(i));
            }
        });
        assert_eq!(*s.load(), 100);
    }
}

//! Offline shim for `proptest`: the strategy combinators and macros the
//! workspace's property tests use, with a deterministic per-test PRNG and
//! **no shrinking** (a failing case reports its seed and case number
//! instead).
//!
//! Covered surface: `proptest!` (with `#![proptest_config]`), `prop_oneof!`
//! (weighted and unweighted), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, `Strategy::{prop_map, prop_recursive,
//! boxed}`, `Just`, integer-range strategies, tuple strategies up to arity
//! 4, `any::<bool>()`, `any::<Index>()`, `prop::sample::select`, and
//! `prop::collection::{vec, btree_set, btree_map}`.

/// Test execution: config, RNG, and case-level errors.
pub mod test_runner {
    use std::fmt;

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*!` failed — the whole test fails.
        Fail(String),
        /// A `prop_assume!` precondition did not hold — the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption rejection (case skipped, not failed).
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
                TestCaseError::Reject => write!(f, "assumption rejected"),
            }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// FNV-1a over a string — stable per-test seeds from test names.
    pub fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }
}

/// Strategies: value generators with combinators.
pub mod strategy {
    use std::ops::Range;
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A generator of values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds recursive values: up to `depth` levels of `branch`
        /// applications over `self` as the leaf strategy. The `_desired`
        /// and `_branches` hints are accepted for API compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired: u32,
            _branches: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let leaf = self.clone().boxed();
                let deeper = branch(current).boxed();
                current = one_of(vec![(1, leaf), (1, deeper)]).boxed();
            }
            current
        }

        /// Type-erases the strategy behind an `Arc`d closure.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!`'s engine).
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    /// Builds a weighted choice; weights must not all be zero.
    pub fn one_of<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        OneOf { arms, total }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed above")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::sample::Index;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index::from_raw(rng.next_u64() as usize)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An abstract index into collections of unknown length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn from_raw(raw: usize) -> Self {
            Index(raw)
        }

        /// Resolves the index against a concrete non-zero length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    /// Uniform choice from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Chooses uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: an exact count or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            debug_assert!(self.min < self.max_exclusive);
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Vectors of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Sets of values from `element`; sizes are best-effort when the
    /// element domain is small.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..(target * 10 + 10) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// `prop::collection::btree_set`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Maps with keys from `key` and values from `value`; sizes are
    /// best-effort when the key domain is small.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..(target * 10 + 10) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// `prop::collection::btree_map`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng = $crate::test_runner::TestRng::from_seed(
                    __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(())
                    | ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (seed {:#x}): {}",
                            stringify!($name), __case, __seed, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts within a property test; failure fails the case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

/// Asserts inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{}` != `{}`\n  both: {:?}",
                    stringify!($left), stringify!($right), __l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, $($fmt)*);
            }
        }
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in -5i64..5, m in 0usize..3) {
            prop_assert!((-5..5).contains(&n));
            prop_assert!(m < 3);
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0u8..4, any::<bool>())) {
            prop_assert!(a < 4);
            let _ = b;
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0i64..10, 2..5),
            s in prop::collection::btree_set(0u8..100, 0..6),
            m in prop::collection::btree_map(0u8..100, 0i64..3, 1..4),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(s.len() < 6);
            prop_assert!((1..4).contains(&m.len()));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![3 => 0i64..10, 1 => 100i64..110]) {
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
        }

        #[test]
        fn assume_skips(n in 0u8..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn select_and_index(
            s in prop::sample::select(vec!["a", "b"]),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(s == "a" || s == "b");
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0i64..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(n in 0u8..4) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}

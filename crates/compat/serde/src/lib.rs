//! Offline shim for `serde`: just enough of the trait surface for the
//! workspace to compile without crates.io access.
//!
//! The derive macros (re-exported from the sibling `serde_derive` shim)
//! expand to nothing, and the traits below cover the one hand-written impl
//! in the workspace (`citesys_cq::Symbol`). Actual persistence in this repo
//! uses hand-rolled canonical text formats instead.

/// Serialization half of the shim.
pub mod ser {
    /// Minimal stand-in for `serde::Serializer`.
    pub trait Serializer: Sized {
        /// Successful output type.
        type Ok;
        /// Error type.
        type Error;
        /// Serializes a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    }

    /// Minimal stand-in for `serde::Serialize`.
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    impl Serialize for str {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }
}

/// Deserialization half of the shim.
pub mod de {
    /// Minimal stand-in for `serde::Deserializer`.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error;
        /// Deserializes an owned string.
        fn deserialize_string(self) -> Result<String, Self::Error>;
    }

    /// Minimal stand-in for `serde::Deserialize`.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes `Self` from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    impl<'de> Deserialize<'de> for String {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            deserializer.deserialize_string()
        }
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// The no-op derives; trait and macro namespaces coexist, as in real serde.
pub use serde_derive::{Deserialize, Serialize};

//! Offline shim for `parking_lot`: `Mutex` and `RwLock` backed by their
//! `std::sync` counterparts, with the parking_lot API shape (no poison
//! `Result`s — a poisoned lock is recovered, matching parking_lot's
//! behaviour of not poisoning at all).

use std::sync::{self, PoisonError};

/// `std::sync::Mutex` with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `std::sync::RwLock` with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}

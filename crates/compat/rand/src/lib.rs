//! Offline shim for `rand` 0.8: the subset of the API the workspace uses
//! (`StdRng::seed_from_u64`, `gen_range` over half-open and inclusive
//! integer ranges, `gen_bool`), backed by SplitMix64.
//!
//! The generators in `citesys-gtopdb` only need *deterministic, seedable,
//! well-mixed* randomness — statistical quality beyond that is irrelevant,
//! and determinism per seed is actually load-bearing for the test suite.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding trait (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Samples uniformly from the given integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled to produce a value of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — public-domain constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "suspicious bias: {hits}");
    }
}

//! Offline shim for `serde_derive`: the derives parse and expand to nothing.
//!
//! The workspace builds in a hermetic environment with no crates.io access,
//! so the real serde is unavailable. Types keep their `#[derive(Serialize,
//! Deserialize)]` attributes for source compatibility; serialization in this
//! repo is done with hand-rolled canonical text formats (see
//! `citesys_storage::fixity` and `citesys_rewrite::plan`).

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline shim for `criterion`: the subset of the API the bench suite
//! uses, backed by a simple calibrated wall-clock loop instead of
//! criterion's statistical machinery.
//!
//! Each `Bencher::iter` call warms up, picks an iteration count targeting a
//! fixed measurement window, and reports the mean time per iteration. Set
//! `CITESYS_BENCH_QUICK=1` to shrink the window for smoke runs (CI uses
//! this — the numbers are then indicative only).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement window per benchmark (split across samples).
fn measure_window() -> Duration {
    if std::env::var_os("CITESYS_BENCH_QUICK").is_some() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Registers a stand-alone benchmark (top-level `bench_function`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.into(), None);
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Throughput annotation (accepted and echoed, not used for rates).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (kept for API compatibility; the shim
    /// scales its window by this only loosely).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()), self.throughput);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label), self.throughput);
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Runs the closure under measurement; mirrors `criterion::Bencher`.
#[derive(Default)]
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Measures the mean wall-clock time of one call to `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: time a single call to choose a batch size.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let window = measure_window();
        let iters = (window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / iters);
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        match self.mean {
            Some(mean) => {
                let extra = match throughput {
                    Some(Throughput::Elements(n)) => format!("  ({n} elems/iter)"),
                    Some(Throughput::Bytes(n)) => format!("  ({n} bytes/iter)"),
                    None => String::new(),
                };
                println!("{label:<48} {}{extra}", format_duration(mean));
            }
            None => println!("{label:<48} (no measurement)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns/iter")
    } else if ns < 1_000_000 {
        format!("{:.2} µs/iter", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms/iter", ns as f64 / 1e6)
    } else {
        format!("{:.2} s/iter", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CITESYS_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).throughput(Throughput::Elements(3));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns/iter"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs/iter"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms/iter"));
        assert!(format_duration(Duration::from_secs(10)).ends_with("s/iter"));
    }
}

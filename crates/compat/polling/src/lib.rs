//! Offline shim standing in for the `polling` crate: a minimal
//! readiness poller over raw Linux `epoll(7)`.
//!
//! The real `polling` crate abstracts epoll/kqueue/IOCP behind one API.
//! This shim keeps the same surface — [`Poller`], [`Event`],
//! `add`/`modify`/`delete`/`wait`/`notify` — but implements only the
//! Linux epoll backend through direct `extern "C"` declarations (the
//! workspace is hermetic, so there is no `libc` crate to lean on). On
//! other platforms everything compiles but [`Poller::new`] returns
//! [`io::ErrorKind::Unsupported`], which callers surface as "event loop
//! not available on this platform".
//!
//! One deliberate divergence from upstream: interests here are
//! **level-triggered and persistent**. Upstream `polling` arms
//! interests in oneshot mode and requires re-arming after every event;
//! the event loop in `citesys-net` wants the classic level-triggered
//! contract (an interest stays set until `modify`/`delete`), so that is
//! what the shim provides.

#![deny(missing_docs)]

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// A readiness event (or an interest) for the source registered under
/// `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back by [`Poller::wait`].
    pub key: usize,
    /// Interest in (or occurrence of) read readiness. Errors and
    /// hangups are reported as readable so a blocked reader wakes up
    /// and observes the failure from the socket itself.
    pub readable: bool,
    /// Interest in (or occurrence of) write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest — the source stays registered but reports nothing.
    pub fn none(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Key reserved for the internal notify channel; user registrations
/// must stay below it (the event loop hands out small dense keys, so
/// this never collides in practice).
const NOTIFY_KEY: u64 = u64::MAX;

/// An epoll instance plus an eventfd used by [`Poller::notify`] to wake
/// a blocked [`Poller::wait`] from another thread.
#[derive(Debug)]
pub struct Poller {
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    epfd: i32,
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    notify_fd: i32,
}

#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// Kernel `struct epoll_event`. Packed on x86/x86_64 (the kernel
    /// ABI packs it there); naturally aligned everywhere else.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    /// Converts a `-1` libc return into the current `errno` error.
    pub fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Creates a new poller (epoll instance + notify eventfd).
    pub fn new() -> io::Result<Self> {
        let epfd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        let notify_fd =
            match sys::cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { sys::close(epfd) };
                    return Err(e);
                }
            };
        let poller = Poller { epfd, notify_fd };
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN,
            data: NOTIFY_KEY,
        };
        // On error, Drop closes both fds.
        sys::cvt(unsafe {
            sys::epoll_ctl(poller.epfd, sys::EPOLL_CTL_ADD, poller.notify_fd, &mut ev)
        })?;
        Ok(poller)
    }

    fn interest_bits(interest: Event) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    fn ctl(&self, op: i32, fd: i32, interest: Event) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: Self::interest_bits(interest),
            data: interest.key as u64,
        };
        sys::cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `source` with the given interest. Level-triggered: the
    /// interest persists until [`modify`](Poller::modify) or
    /// [`delete`](Poller::delete).
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, source.as_raw_fd(), interest)
    }

    /// Replaces the interest of an already-registered `source`.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, source.as_raw_fd(), interest)
    }

    /// Removes `source` from the poller.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, source.as_raw_fd(), Event::none(0))
    }

    /// Waits for readiness, appending events to `events` (which is
    /// cleared first) and returning how many were delivered. `None`
    /// blocks indefinitely; `Some(d)` rounds sub-millisecond waits up
    /// to 1ms so short timeouts do not degrade to a busy spin.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            Some(d) => i64::from(u32::try_from(d.as_millis().max(1)).unwrap_or(u32::MAX))
                .min(i64::from(i32::MAX)) as i32,
        };
        const CAP: usize = 1024;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        let n = loop {
            match sys::cvt(unsafe {
                sys::epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, timeout_ms)
            }) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in buf.iter().take(n) {
            let bits = ev.events;
            let data = ev.data;
            if data == NOTIFY_KEY {
                // Drain the eventfd counter so the next wait can block.
                let mut scratch = [0u8; 8];
                unsafe {
                    sys::read(
                        self.notify_fd,
                        scratch.as_mut_ptr() as *mut std::os::raw::c_void,
                        scratch.len(),
                    )
                };
                continue;
            }
            events.push(Event {
                key: data as usize,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR)
                    != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLERR) != 0,
            });
        }
        Ok(events.len())
    }

    /// Wakes a concurrent [`Poller::wait`] (possibly before it starts —
    /// notifications coalesce but never get lost).
    pub fn notify(&self) -> io::Result<()> {
        let one: u64 = 1;
        let ret = unsafe {
            sys::write(
                self.notify_fd,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
        if ret < 0 {
            let e = io::Error::last_os_error();
            // EAGAIN means the counter is already saturated — a wakeup
            // is pending, which is all notify promises.
            if e.kind() != io::ErrorKind::WouldBlock {
                return Err(e);
            }
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.notify_fd);
            sys::close(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    /// The shim only implements the Linux epoll backend; elsewhere the
    /// poller reports itself unsupported at runtime (the crate still
    /// compiles so the workspace builds everywhere).
    pub fn new() -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim: only the Linux epoll backend is implemented",
        ))
    }

    /// Unreachable: `new` never returns a poller on this platform.
    pub fn add(&self, _source: &impl AsRawFd, _interest: Event) -> io::Result<()> {
        unreachable!("no Poller can exist on this platform")
    }

    /// Unreachable: `new` never returns a poller on this platform.
    pub fn modify(&self, _source: &impl AsRawFd, _interest: Event) -> io::Result<()> {
        unreachable!("no Poller can exist on this platform")
    }

    /// Unreachable: `new` never returns a poller on this platform.
    pub fn delete(&self, _source: &impl AsRawFd) -> io::Result<()> {
        unreachable!("no Poller can exist on this platform")
    }

    /// Unreachable: `new` never returns a poller on this platform.
    pub fn wait(&self, _events: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<usize> {
        unreachable!("no Poller can exist on this platform")
    }

    /// Unreachable: `new` never returns a poller on this platform.
    pub fn notify(&self) -> io::Result<()> {
        unreachable!("no Poller can exist on this platform")
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readable_event_fires_when_data_arrives() {
        let (mut client, server) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 0, "no data yet, nothing should be ready");
        client.write_all(b"ping\n").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn interests_are_level_triggered_until_modified() {
        let (mut client, mut server) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(3)).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        for _ in 0..2 {
            // Unconsumed data keeps reporting readable (level-triggered).
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1);
            assert!(events[0].readable);
        }
        let mut byte = [0u8; 1];
        server.read_exact(&mut byte).unwrap();
        poller.modify(&server, Event::all(3)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "an idle socket is writable");
        assert!(events[0].writable);
        assert!(!events[0].readable);
        poller.delete(&server).unwrap();
        client.write_all(b"y").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 0, "deleted sources report nothing");
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0, "notify is internal, no user event surfaces");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wait returned via notify, not timeout"
        );
        t.join().unwrap();
        // A stale notification must not persist once drained.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn many_sockets_multiplex_on_one_poller() {
        let poller = Poller::new().unwrap();
        let mut pairs = Vec::new();
        for key in 0..64usize {
            let (client, server) = pair();
            poller.add(&server, Event::readable(key)).unwrap();
            pairs.push((client, server));
        }
        for (i, (client, _)) in pairs.iter_mut().enumerate() {
            if i % 3 == 0 {
                client.write_all(b"hello\n").unwrap();
            }
        }
        let expected: usize = (0..64).filter(|i| i % 3 == 0).count();
        let mut ready = std::collections::BTreeSet::new();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while ready.len() < expected && Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for ev in &events {
                assert!(ev.readable);
                assert_eq!(ev.key % 3, 0);
                ready.insert(ev.key);
            }
        }
        assert_eq!(ready.len(), expected);
    }
}

//! Set-based provenance semirings: lineage and why-provenance.

use std::collections::BTreeSet;
use std::fmt;

use citesys_cq::Symbol;
use citesys_storage::Tuple;

use crate::semiring::Semiring;

/// Identifies a base tuple: `(relation, tuple)`. The atoms `X` of the
/// provenance polynomials ℕ\[X\].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProvToken {
    /// Relation the tuple belongs to.
    pub relation: Symbol,
    /// The tuple itself.
    pub tuple: Tuple,
}

impl ProvToken {
    /// Builds a token.
    pub fn new(relation: impl Into<Symbol>, tuple: Tuple) -> Self {
        ProvToken {
            relation: relation.into(),
            tuple,
        }
    }
}

impl fmt::Display for ProvToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.relation, self.tuple)
    }
}

/// Lineage semiring `Lin(X) = P(X) ∪ {⊥}`:
/// which base tuples were *involved at all*?
///
/// `⊥` (represented by `None`) is the additive identity; `∅` is the
/// multiplicative identity; both `+` and `·` union the sets otherwise.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lineage(pub Option<BTreeSet<ProvToken>>);

impl Lineage {
    /// Lineage of a single base tuple.
    pub fn of(token: ProvToken) -> Self {
        let mut s = BTreeSet::new();
        s.insert(token);
        Lineage(Some(s))
    }

    /// Number of contributing tuples (0 for ⊥).
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, BTreeSet::len)
    }

    /// True for ⊥ or the empty set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Semiring for Lineage {
    fn zero() -> Self {
        Lineage(None)
    }
    fn one() -> Self {
        Lineage(Some(BTreeSet::new()))
    }
    fn add(&self, other: &Self) -> Self {
        match (&self.0, &other.0) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => Lineage(Some(a.union(b).cloned().collect())),
        }
    }
    fn mul(&self, other: &Self) -> Self {
        match (&self.0, &other.0) {
            (None, _) | (_, None) => Lineage(None),
            (Some(a), Some(b)) => Lineage(Some(a.union(b).cloned().collect())),
        }
    }
}

/// Why-provenance `Why(X) = P(P(X))`: the *witness basis* — each inner set
/// is one minimal combination of base tuples justifying the answer.
///
/// `+` is union of witness sets; `·` is pairwise union of witnesses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Why(pub BTreeSet<BTreeSet<ProvToken>>);

impl Why {
    /// The singleton witness {{token}}.
    pub fn of(token: ProvToken) -> Self {
        let mut inner = BTreeSet::new();
        inner.insert(token);
        let mut outer = BTreeSet::new();
        outer.insert(inner);
        Why(outer)
    }

    /// Number of witnesses.
    pub fn witness_count(&self) -> usize {
        self.0.len()
    }
}

impl Semiring for Why {
    fn zero() -> Self {
        Why(BTreeSet::new())
    }
    fn one() -> Self {
        let mut outer = BTreeSet::new();
        outer.insert(BTreeSet::new());
        Why(outer)
    }
    fn add(&self, other: &Self) -> Self {
        Why(self.0.union(&other.0).cloned().collect())
    }
    fn mul(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        Why(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::law_tests::check_laws;
    use citesys_storage::tuple;

    fn tok(rel: &str, id: i64) -> ProvToken {
        ProvToken::new(rel, tuple![id])
    }

    fn lineage_samples() -> Vec<Lineage> {
        vec![
            Lineage::zero(),
            Lineage::one(),
            Lineage::of(tok("R", 1)),
            Lineage::of(tok("R", 2)),
            Lineage::of(tok("S", 1)).mul(&Lineage::of(tok("R", 1))),
        ]
    }

    fn why_samples() -> Vec<Why> {
        vec![
            Why::zero(),
            Why::one(),
            Why::of(tok("R", 1)),
            Why::of(tok("R", 2)),
            Why::of(tok("R", 1)).add(&Why::of(tok("S", 3))),
            Why::of(tok("R", 1)).mul(&Why::of(tok("S", 3))),
        ]
    }

    #[test]
    fn lineage_laws() {
        check_laws(&lineage_samples());
    }

    #[test]
    fn why_laws() {
        check_laws(&why_samples());
    }

    #[test]
    fn lineage_collects_everything() {
        let l = Lineage::of(tok("R", 1))
            .mul(&Lineage::of(tok("S", 2)))
            .add(&Lineage::of(tok("R", 3)));
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        assert!(Lineage::zero().is_empty());
        assert!(Lineage::one().is_empty());
    }

    #[test]
    fn why_keeps_witnesses_separate() {
        // (r1·s2) + r3 has two witnesses: {r1,s2} and {r3}.
        let w = Why::of(tok("R", 1))
            .mul(&Why::of(tok("S", 2)))
            .add(&Why::of(tok("R", 3)));
        assert_eq!(w.witness_count(), 2);
    }

    #[test]
    fn why_mul_distributes_witnesses() {
        // (a + b) · c = a·c + b·c : two witnesses.
        let a = Why::of(tok("R", 1));
        let b = Why::of(tok("R", 2));
        let c = Why::of(tok("S", 9));
        let w = a.add(&b).mul(&c);
        assert_eq!(w.witness_count(), 2);
        for witness in &w.0 {
            assert!(witness.contains(&tok("S", 9)));
            assert_eq!(witness.len(), 2);
        }
    }

    #[test]
    fn token_display() {
        assert_eq!(tok("R", 1).to_string(), "R(1)");
    }
}

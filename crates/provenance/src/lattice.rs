//! Lattice-flavoured semirings: minimal-witness provenance and access
//! control.
//!
//! Two more interpretations of the citation algebra's `+`/`·`:
//!
//! * [`MinWhy`] — why-provenance with *absorption*: a witness that is a
//!   superset of another carries no extra information, so it is dropped.
//!   This is the positive-Boolean-expression (`PosBool(X)`) semiring of
//!   Green et al., and the natural notion of "the smallest combinations of
//!   portions you must cite".
//! * [`Access`] — the security/clearance semiring: alternatives take the
//!   most permissive path, joint use needs the most restrictive input.
//!   Cited data inherits the clearance of the portions that produced it —
//!   directly relevant when some curated portions are embargoed.

use std::collections::BTreeSet;
use std::fmt;

use crate::semiring::Semiring;
use crate::sets::ProvToken;

/// Why-provenance with absorption (`PosBool(X)`): only ⊆-minimal witnesses
/// are kept.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MinWhy(BTreeSet<BTreeSet<ProvToken>>);

impl MinWhy {
    /// The singleton witness {{token}}.
    pub fn of(token: ProvToken) -> Self {
        let mut inner = BTreeSet::new();
        inner.insert(token);
        let mut outer = BTreeSet::new();
        outer.insert(inner);
        MinWhy(outer)
    }

    /// The minimal witnesses.
    pub fn witnesses(&self) -> &BTreeSet<BTreeSet<ProvToken>> {
        &self.0
    }

    /// Number of minimal witnesses.
    pub fn witness_count(&self) -> usize {
        self.0.len()
    }

    /// Drops witnesses that are supersets of another witness.
    fn absorb(witnesses: BTreeSet<BTreeSet<ProvToken>>) -> Self {
        let minimal: BTreeSet<BTreeSet<ProvToken>> = witnesses
            .iter()
            .filter(|w| {
                !witnesses
                    .iter()
                    .any(|other| other != *w && other.is_subset(w))
            })
            .cloned()
            .collect();
        MinWhy(minimal)
    }
}

impl Semiring for MinWhy {
    fn zero() -> Self {
        MinWhy(BTreeSet::new())
    }
    fn one() -> Self {
        let mut outer = BTreeSet::new();
        outer.insert(BTreeSet::new());
        MinWhy(outer)
    }
    fn add(&self, other: &Self) -> Self {
        Self::absorb(self.0.union(&other.0).cloned().collect())
    }
    fn mul(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        Self::absorb(out)
    }
}

impl fmt::Display for MinWhy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, t) in w.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

/// Clearance levels, most permissive first. `NoAccess` is the additive
/// identity (an inaccessible derivation contributes nothing);
/// `Public` is the multiplicative identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Access {
    /// Readable by anyone.
    Public,
    /// Restricted to registered collaborators.
    Confidential,
    /// Restricted to the curation team.
    Secret,
    /// Owner only.
    TopSecret,
    /// Not derivable at any clearance.
    NoAccess,
}

impl Semiring for Access {
    fn zero() -> Self {
        Access::NoAccess
    }
    fn one() -> Self {
        Access::Public
    }
    /// Alternatives: the most permissive derivation wins (min).
    fn add(&self, other: &Self) -> Self {
        *self.min(other)
    }
    /// Joint use: as restrictive as the most restricted input (max).
    fn mul(&self, other: &Self) -> Self {
        *self.max(other)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Access::Public => "public",
            Access::Confidential => "confidential",
            Access::Secret => "secret",
            Access::TopSecret => "top-secret",
            Access::NoAccess => "no-access",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::law_tests::check_laws;
    use citesys_storage::tuple;

    fn tok(rel: &str, id: i64) -> ProvToken {
        ProvToken::new(rel, tuple![id])
    }

    #[test]
    fn minwhy_laws() {
        let samples = vec![
            MinWhy::zero(),
            MinWhy::one(),
            MinWhy::of(tok("R", 1)),
            MinWhy::of(tok("R", 2)),
            MinWhy::of(tok("R", 1)).mul(&MinWhy::of(tok("S", 3))),
            MinWhy::of(tok("R", 1)).add(&MinWhy::of(tok("S", 3))),
        ];
        check_laws(&samples);
    }

    #[test]
    fn absorption_drops_supersets() {
        // r1 + r1·s2 = r1 (the larger witness is absorbed).
        let r1 = MinWhy::of(tok("R", 1));
        let joint = r1.mul(&MinWhy::of(tok("S", 2)));
        let sum = r1.add(&joint);
        assert_eq!(sum, r1);
        assert_eq!(sum.witness_count(), 1);
    }

    #[test]
    fn absorption_is_why_minimization() {
        // (r1 + r2)·(r1 + s3) = r1 + r2·s3 after absorption
        // (expansion gives r1, r1·s3, r1·r2, r2·s3 — middle two absorbed).
        let r1 = MinWhy::of(tok("R", 1));
        let r2 = MinWhy::of(tok("R", 2));
        let s3 = MinWhy::of(tok("S", 3));
        let prod = r1.add(&r2).mul(&r1.add(&s3));
        assert_eq!(prod.witness_count(), 2);
        assert_eq!(prod, r1.add(&r2.mul(&s3)));
    }

    #[test]
    fn minwhy_idempotent_add() {
        let x = MinWhy::of(tok("R", 1)).mul(&MinWhy::of(tok("S", 2)));
        assert_eq!(x.add(&x), x);
    }

    #[test]
    fn access_laws() {
        check_laws(&[
            Access::Public,
            Access::Confidential,
            Access::Secret,
            Access::TopSecret,
            Access::NoAccess,
        ]);
    }

    #[test]
    fn access_semantics() {
        // A tuple derivable publicly OR secretly is public.
        assert_eq!(Access::Public.add(&Access::Secret), Access::Public);
        // A join of confidential and secret inputs is secret.
        assert_eq!(Access::Confidential.mul(&Access::Secret), Access::Secret);
        // Nothing joins with an inaccessible input.
        assert_eq!(Access::Public.mul(&Access::NoAccess), Access::NoAccess);
        assert_eq!(Access::NoAccess.add(&Access::TopSecret), Access::TopSecret);
    }

    #[test]
    fn access_through_polynomial_evaluation() {
        use crate::polynomial::Polynomial;
        // xy + z: x secret, y public, z confidential → min(max(S,P), C) = C.
        let x = Polynomial::var(tok("R", 1));
        let y = Polynomial::var(tok("R", 2));
        let z = Polynomial::var(tok("S", 1));
        let p = x.mul(&y).add(&z);
        let level = p.eval_in::<Access>(&|t| match (t.relation.as_str(), t.tuple.get(0)) {
            ("R", Some(v)) if v.as_int() == Some(1) => Access::Secret,
            ("R", _) => Access::Public,
            _ => Access::Confidential,
        });
        assert_eq!(level, Access::Confidential);
    }

    #[test]
    fn displays() {
        assert_eq!(Access::Secret.to_string(), "secret");
        let w = MinWhy::of(tok("R", 1)).mul(&MinWhy::of(tok("S", 2)));
        assert_eq!(w.to_string(), "{{R(1), S(2)}}");
    }
}

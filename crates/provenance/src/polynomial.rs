//! Provenance polynomials ℕ\[X\] — the free commutative semiring.
//!
//! ℕ\[X\] is *universal*: any assignment of the variables `X` into a
//! commutative semiring `K` extends uniquely to a semiring homomorphism
//! `ℕ\[X\] → K` ([`Polynomial::eval_in`]). The citation engine exploits this:
//! it computes one symbolic annotation and then interprets it under
//! whichever policy semiring the database owner chose.

use std::collections::BTreeMap;
use std::fmt;

use crate::semiring::Semiring;
use crate::sets::ProvToken;

/// A monomial: variables with positive integer exponents.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Monomial(BTreeMap<ProvToken, u32>);

impl Monomial {
    /// The empty monomial (multiplicative identity).
    pub fn unit() -> Self {
        Monomial::default()
    }

    /// The monomial consisting of a single variable.
    pub fn var(token: ProvToken) -> Self {
        let mut m = BTreeMap::new();
        m.insert(token, 1);
        Monomial(m)
    }

    /// Multiplies two monomials (adds exponents).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = self.0.clone();
        for (t, e) in &other.0 {
            *out.entry(t.clone()).or_insert(0) += e;
        }
        Monomial(out)
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }

    /// Iterates `(variable, exponent)` pairs.
    pub fn vars(&self) -> impl Iterator<Item = (&ProvToken, u32)> {
        self.0.iter().map(|(t, &e)| (t, e))
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        for (i, (t, e)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *e == 1 {
                write!(f, "{t}")?;
            } else {
                write!(f, "{t}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A polynomial with natural-number coefficients in canonical form
/// (no zero coefficients stored).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polynomial(BTreeMap<Monomial, u64>);

impl Polynomial {
    /// The polynomial for a single base-tuple variable.
    pub fn var(token: ProvToken) -> Self {
        let mut p = BTreeMap::new();
        p.insert(Monomial::var(token), 1);
        Polynomial(p)
    }

    /// Number of monomials.
    pub fn term_count(&self) -> usize {
        self.0.len()
    }

    /// Iterates `(monomial, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, u64)> {
        self.0.iter().map(|(m, &c)| (m, c))
    }

    /// The set of distinct variables appearing in the polynomial.
    pub fn variables(&self) -> std::collections::BTreeSet<&ProvToken> {
        self.0
            .keys()
            .flat_map(|m| m.vars().map(|(t, _)| t))
            .collect()
    }

    /// Evaluates the polynomial in `K` under an assignment of variables —
    /// the unique homomorphic extension guaranteed by universality.
    ///
    /// ```
    /// use citesys_provenance::{Polynomial, ProvToken, Semiring, Cost};
    /// use citesys_storage::tuple;
    ///
    /// let x = Polynomial::var(ProvToken::new("R", tuple![1]));
    /// let y = Polynomial::var(ProvToken::new("S", tuple![2]));
    /// let p = x.mul(&y).add(&x); // xy + x
    ///
    /// // Counting: x = 2 derivations, y = 3 → 2·3 + 2 = 8.
    /// let n = p.eval_in::<u64>(&|t| if t.relation == "R" { 2 } else { 3 });
    /// assert_eq!(n, 8);
    ///
    /// // Tropical (min, +): cheapest derivation costs min(2+3, 2) = 2.
    /// let c = p.eval_in::<Cost>(&|t| if t.relation == "R" { Cost(2) } else { Cost(3) });
    /// assert_eq!(c, Cost(2));
    /// ```
    pub fn eval_in<K: Semiring>(&self, assign: &dyn Fn(&ProvToken) -> K) -> K {
        K::sum(self.0.iter().map(|(m, &coeff)| {
            let term = K::product(m.vars().map(|(t, e)| assign(t).pow(e)));
            K::from_natural(coeff).mul(&term)
        }))
    }
}

impl Semiring for Polynomial {
    fn zero() -> Self {
        Polynomial::default()
    }

    fn one() -> Self {
        let mut p = BTreeMap::new();
        p.insert(Monomial::unit(), 1);
        Polynomial(p)
    }

    fn add(&self, other: &Self) -> Self {
        let mut out = self.0.clone();
        for (m, c) in &other.0 {
            let e = out.entry(m.clone()).or_insert(0);
            *e = e.saturating_add(*c);
        }
        out.retain(|_, c| *c != 0);
        Polynomial(out)
    }

    fn mul(&self, other: &Self) -> Self {
        let mut out: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (m1, c1) in &self.0 {
            for (m2, c2) in &other.0 {
                let m = m1.mul(m2);
                let e = out.entry(m).or_insert(0);
                *e = e.saturating_add(c1.saturating_mul(*c2));
            }
        }
        out.retain(|_, c| *c != 0);
        Polynomial(out)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c != 1 {
                write!(f, "{c}·")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::law_tests::check_laws;
    use crate::semiring::Cost;
    use crate::sets::{Lineage, Why};
    use citesys_storage::tuple;

    fn tok(rel: &str, id: i64) -> ProvToken {
        ProvToken::new(rel, tuple![id])
    }

    fn x() -> Polynomial {
        Polynomial::var(tok("R", 1))
    }
    fn y() -> Polynomial {
        Polynomial::var(tok("R", 2))
    }
    fn z() -> Polynomial {
        Polynomial::var(tok("S", 1))
    }

    #[test]
    fn polynomial_laws() {
        let samples = vec![
            Polynomial::zero(),
            Polynomial::one(),
            x(),
            y(),
            x().add(&y()),
            x().mul(&z()),
        ];
        check_laws(&samples);
    }

    #[test]
    fn canonical_form_merges_terms() {
        // x + x = 2x, one term.
        let p = x().add(&x());
        assert_eq!(p.term_count(), 1);
        assert_eq!(p.to_string(), "2·R(1)");
        // x·x = x².
        let q = x().mul(&x());
        assert_eq!(q.to_string(), "R(1)^2");
    }

    #[test]
    fn distribution_expands() {
        // (x + y)·z = xz + yz.
        let p = x().add(&y()).mul(&z());
        assert_eq!(p.term_count(), 2);
        let q = x().mul(&z()).add(&y().mul(&z()));
        assert_eq!(p, q);
    }

    #[test]
    fn variables_collected() {
        let p = x().mul(&z()).add(&y());
        assert_eq!(p.variables().len(), 3);
    }

    #[test]
    fn eval_into_counting() {
        // p = 2xy + z, with x=3, y=1, z=5  →  2·3·1 + 5 = 11.
        let p = Polynomial::from_natural(2).mul(&x()).mul(&y()).add(&z());
        let v = p.eval_in::<u64>(&|t| match (t.relation.as_str(), t.tuple.get(0)) {
            ("R", Some(v)) if v.as_int() == Some(1) => 3,
            ("R", _) => 1,
            _ => 5,
        });
        assert_eq!(v, 11);
    }

    #[test]
    fn eval_into_boolean_is_satisfiability() {
        let p = x().mul(&y()).add(&z());
        // z present ⇒ true even if x absent.
        let v = p.eval_in::<bool>(&|t| t.relation.as_str() == "S");
        assert!(v);
        let v = p.eval_in::<bool>(&|_| false);
        assert!(!v);
    }

    #[test]
    fn eval_into_tropical_is_min_cost() {
        // xy + z with cost(x)=1, cost(y)=2, cost(z)=10 → min(1+2, 10) = 3.
        let p = x().mul(&y()).add(&z());
        let v = p.eval_in::<Cost>(&|t| match t.relation.as_str() {
            "R" => {
                if t.tuple.get(0).unwrap().as_int() == Some(1) {
                    Cost(1)
                } else {
                    Cost(2)
                }
            }
            _ => Cost(10),
        });
        assert_eq!(v, Cost(3));
    }

    #[test]
    fn eval_is_homomorphism_spot_check() {
        // h(p + q) = h(p) + h(q), h(p·q) = h(p)·h(q) for h = eval into ℕ.
        let assign = |t: &ProvToken| -> u64 {
            match t.relation.as_str() {
                "R" => 2,
                _ => 3,
            }
        };
        let p = x().add(&y().mul(&z()));
        let q = z().add(&Polynomial::one());
        let lhs_add = p.add(&q).eval_in::<u64>(&assign);
        let rhs_add = p.eval_in::<u64>(&assign).add(&q.eval_in::<u64>(&assign));
        assert_eq!(lhs_add, rhs_add);
        let lhs_mul = p.mul(&q).eval_in::<u64>(&assign);
        let rhs_mul = p.eval_in::<u64>(&assign).mul(&q.eval_in::<u64>(&assign));
        assert_eq!(lhs_mul, rhs_mul);
    }

    #[test]
    fn eval_into_lineage_and_why() {
        let p = x().mul(&z()).add(&y());
        let lin = p.eval_in::<Lineage>(&|t| Lineage::of(t.clone()));
        assert_eq!(lin.len(), 3);
        let why = p.eval_in::<Why>(&|t| Why::of(t.clone()));
        assert_eq!(why.witness_count(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Polynomial::zero().to_string(), "0");
        assert_eq!(Polynomial::one().to_string(), "1");
        assert_eq!(x().add(&y()).mul(&z()).to_string(), "R(1)·S(1) + R(2)·S(1)");
    }
}

//! K-relations: annotated databases and annotated query evaluation.
//!
//! Green et al.'s semantics: the annotation of an output tuple is the sum,
//! over all derivations (bindings), of the product of the annotations of
//! the base tuples used. The citation engine uses this with the citation
//! algebra as `K`; the tests here validate the machinery against the
//! classical instances.

use std::collections::HashMap;

use citesys_cq::{ConjunctiveQuery, Symbol};
use citesys_storage::{evaluate, Database, StorageError, Tuple};

use crate::polynomial::Polynomial;
use crate::semiring::Semiring;
use crate::sets::ProvToken;

/// A database whose base tuples carry annotations in a semiring `K`.
///
/// Tuples without an explicit annotation default to `K::one()` —
/// "present, with trivial provenance".
#[derive(Clone, Debug)]
pub struct AnnotatedDatabase<K: Semiring> {
    db: Database,
    ann: HashMap<(Symbol, Tuple), K>,
}

impl<K: Semiring> AnnotatedDatabase<K> {
    /// Wraps a plain database; all annotations default to `1`.
    pub fn new(db: Database) -> Self {
        AnnotatedDatabase {
            db,
            ann: HashMap::new(),
        }
    }

    /// Read access to the underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Inserts a tuple with an explicit annotation.
    pub fn insert_annotated(&mut self, rel: &str, t: Tuple, k: K) -> Result<bool, StorageError> {
        let changed = self.db.insert(rel, t.clone())?;
        self.ann.insert((Symbol::new(rel), t), k);
        Ok(changed)
    }

    /// Sets the annotation of an existing tuple.
    pub fn annotate(&mut self, rel: &str, t: Tuple, k: K) {
        self.ann.insert((Symbol::new(rel), t), k);
    }

    /// The annotation of a base tuple (defaults to `1` when present but
    /// unannotated; callers should not ask about absent tuples).
    pub fn annotation(&self, rel: &Symbol, t: &Tuple) -> K {
        self.ann
            .get(&(rel.clone(), t.clone()))
            .cloned()
            .unwrap_or_else(K::one)
    }

    /// Evaluates `q` under K-relation semantics: each output tuple is
    /// paired with `Σ_bindings Π_atoms annotation(matched base tuple)`.
    ///
    /// Output tuples whose annotation is `0` are dropped (a `0`-annotated
    /// tuple "is not in" the K-relation).
    pub fn evaluate_annotated(
        &self,
        q: &ConjunctiveQuery,
    ) -> Result<Vec<(Tuple, K)>, StorageError> {
        let answer = evaluate(&self.db, q)?;
        let mut out = Vec::with_capacity(answer.rows.len());
        for row in &answer.rows {
            let k = K::sum(row.bindings.iter().map(|b| {
                K::product(q.body.iter().map(|atom| {
                    let ground: Vec<_> = atom
                        .terms
                        .iter()
                        .map(|t| b.eval_term(t).expect("binding covers body vars"))
                        .collect();
                    self.annotation(&atom.predicate, &Tuple::new(ground))
                }))
            }));
            if !k.is_zero() {
                out.push((row.tuple.clone(), k));
            }
        }
        Ok(out)
    }
}

/// Computes the **provenance polynomial** of every output tuple of `q`:
/// the ℕ\[X\] annotation where each base tuple is its own variable.
///
/// By universality, evaluating these polynomials under any assignment
/// into `K` agrees with direct annotated evaluation — the property the
/// citation engine relies on, and which `tests/proptests.rs` verifies.
pub fn provenance(
    db: &Database,
    q: &ConjunctiveQuery,
) -> Result<Vec<(Tuple, Polynomial)>, StorageError> {
    let answer = evaluate(db, q)?;
    let mut out = Vec::with_capacity(answer.rows.len());
    for row in &answer.rows {
        let poly = Polynomial::sum(row.bindings.iter().map(|b| {
            Polynomial::product(q.body.iter().map(|atom| {
                let ground: Vec<_> = atom
                    .terms
                    .iter()
                    .map(|t| b.eval_term(t).expect("binding covers body vars"))
                    .collect();
                Polynomial::var(ProvToken::new(atom.predicate.clone(), Tuple::new(ground)))
            }))
        }));
        out.push((row.tuple.clone(), poly));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::Cost;
    use crate::sets::{Lineage, Why};
    use citesys_cq::{parse_query, ValueType};
    use citesys_storage::{tuple, RelationSchema};

    fn base_db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::from_parts(
            "R",
            &[("A", ValueType::Int), ("B", ValueType::Int)],
            &[],
        ))
        .unwrap();
        d.create_relation(RelationSchema::from_parts(
            "S",
            &[("B", ValueType::Int), ("C", ValueType::Int)],
            &[],
        ))
        .unwrap();
        d.insert("R", tuple![1, 2]).unwrap();
        d.insert("R", tuple![1, 3]).unwrap();
        d.insert("S", tuple![2, 9]).unwrap();
        d.insert("S", tuple![3, 9]).unwrap();
        d
    }

    #[test]
    fn counting_derivations() {
        // Q(X, C) :- R(X, Y), S(Y, C): (1,9) derivable via Y=2 and Y=3.
        let adb: AnnotatedDatabase<u64> = AnnotatedDatabase::new(base_db());
        let q = parse_query("Q(X, C) :- R(X, Y), S(Y, C)").unwrap();
        let out = adb.evaluate_annotated(&q).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, tuple![1, 9]);
        assert_eq!(out[0].1, 2);
    }

    #[test]
    fn zero_annotated_tuples_vanish() {
        let mut adb: AnnotatedDatabase<bool> = AnnotatedDatabase::new(base_db());
        // "Delete" both S tuples in the Boolean K-relation sense.
        adb.annotate("S", tuple![2, 9], false);
        adb.annotate("S", tuple![3, 9], false);
        let q = parse_query("Q(X, C) :- R(X, Y), S(Y, C)").unwrap();
        let out = adb.evaluate_annotated(&q).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn lineage_collects_all_contributors() {
        let mut adb: AnnotatedDatabase<Lineage> = AnnotatedDatabase::new(base_db());
        for (rel, t) in [
            ("R", tuple![1, 2]),
            ("R", tuple![1, 3]),
            ("S", tuple![2, 9]),
            ("S", tuple![3, 9]),
        ] {
            adb.annotate(rel, t.clone(), Lineage::of(ProvToken::new(rel, t)));
        }
        let q = parse_query("Q(X, C) :- R(X, Y), S(Y, C)").unwrap();
        let out = adb.evaluate_annotated(&q).unwrap();
        assert_eq!(out[0].1.len(), 4);
    }

    #[test]
    fn why_provenance_separates_witnesses() {
        let mut adb: AnnotatedDatabase<Why> = AnnotatedDatabase::new(base_db());
        for (rel, t) in [
            ("R", tuple![1, 2]),
            ("R", tuple![1, 3]),
            ("S", tuple![2, 9]),
            ("S", tuple![3, 9]),
        ] {
            adb.annotate(rel, t.clone(), Why::of(ProvToken::new(rel, t)));
        }
        let q = parse_query("Q(X, C) :- R(X, Y), S(Y, C)").unwrap();
        let out = adb.evaluate_annotated(&q).unwrap();
        assert_eq!(out[0].1.witness_count(), 2);
    }

    #[test]
    fn provenance_polynomial_shape() {
        // Two derivations, each a product of two distinct tuples:
        // r12·s29 + r13·s39.
        let db = base_db();
        let q = parse_query("Q(X, C) :- R(X, Y), S(Y, C)").unwrap();
        let prov = provenance(&db, &q).unwrap();
        assert_eq!(prov.len(), 1);
        let poly = &prov[0].1;
        assert_eq!(poly.term_count(), 2);
        for (m, c) in poly.terms() {
            assert_eq!(c, 1);
            assert_eq!(m.degree(), 2);
        }
    }

    #[test]
    fn self_join_squares_variable() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::from_parts(
            "E",
            &[("A", ValueType::Int), ("B", ValueType::Int)],
            &[],
        ))
        .unwrap();
        d.insert("E", tuple![1, 1]).unwrap();
        let q = parse_query("Q(X) :- E(X, Y), E(Y, X)").unwrap();
        let prov = provenance(&d, &q).unwrap();
        // Single derivation using e11 twice: e11².
        assert_eq!(prov[0].1.to_string(), "E(1, 1)^2");
    }

    #[test]
    fn universality_on_example() {
        // eval_in(provenance) == direct annotated evaluation (Cost).
        let db = base_db();
        let q = parse_query("Q(X, C) :- R(X, Y), S(Y, C)").unwrap();
        let cost_of = |t: &ProvToken| -> Cost {
            // R tuples cost 1, S tuples cost 10.
            if t.relation.as_str() == "R" {
                Cost(1)
            } else {
                Cost(10)
            }
        };
        let mut adb: AnnotatedDatabase<Cost> = AnnotatedDatabase::new(db.clone());
        for (rel, t) in [
            ("R", tuple![1, 2]),
            ("R", tuple![1, 3]),
            ("S", tuple![2, 9]),
            ("S", tuple![3, 9]),
        ] {
            let tokc = cost_of(&ProvToken::new(rel, t.clone()));
            adb.annotate(rel, t, tokc);
        }
        let direct = adb.evaluate_annotated(&q).unwrap();
        let via_poly = provenance(&db, &q).unwrap();
        assert_eq!(direct.len(), via_poly.len());
        for ((t1, k), (t2, p)) in direct.iter().zip(&via_poly) {
            assert_eq!(t1, t2);
            assert_eq!(*k, p.eval_in::<Cost>(&cost_of));
        }
    }

    #[test]
    fn constant_query_annotation_is_one() {
        let adb: AnnotatedDatabase<u64> = AnnotatedDatabase::new(base_db());
        let q = parse_query("C('x') :- true").unwrap();
        let out = adb.evaluate_annotated(&q).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 1);
    }
}

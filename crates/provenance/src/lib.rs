//! # citesys-provenance — semirings and K-relations
//!
//! The paper models joint (`·`) and alternative (`+`) use of citation
//! annotations "using the semirings approach of [Green, Karvounarakis,
//! Tannen — PODS 2007]". This crate provides:
//!
//! * the commutative [`Semiring`] trait with classic instances — Boolean
//!   (set semantics), counting ℕ (bag semantics), tropical [`Cost`] (the
//!   paper's *minimum size* policy), [`Lineage`] and [`Why`]-provenance,
//! * the free semiring of provenance polynomials ℕ\[X\]
//!   ([`Polynomial`]), whose universality lets one symbolic annotation be
//!   re-interpreted under any policy,
//! * annotated databases (K-relations) and annotated conjunctive-query
//!   evaluation ([`AnnotatedDatabase`], [`provenance`]).
//!
//! ## Quick example
//!
//! ```
//! use citesys_cq::{parse_query, ValueType};
//! use citesys_storage::{Database, RelationSchema, tuple};
//! use citesys_provenance::{provenance, Semiring};
//!
//! let mut db = Database::new();
//! db.create_relation(RelationSchema::from_parts(
//!     "R", &[("A", ValueType::Int), ("B", ValueType::Int)], &[])).unwrap();
//! db.insert("R", tuple![1, 2]).unwrap();
//! let q = parse_query("Q(X) :- R(X, Y)").unwrap();
//! let prov = provenance(&db, &q).unwrap();
//! assert_eq!(prov[0].1.to_string(), "R(1, 2)");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annotated;
pub mod lattice;
pub mod polynomial;
pub mod semiring;
pub mod sets;

pub use annotated::{provenance, AnnotatedDatabase};
pub use lattice::{Access, MinWhy};
pub use polynomial::{Monomial, Polynomial};
pub use semiring::{Cost, Semiring};
pub use sets::{Lineage, ProvToken, Why};

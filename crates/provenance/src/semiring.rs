//! The commutative-semiring abstraction and scalar instances.
//!
//! The paper models the joint (`·`) and alternative (`+`) combination of
//! citation annotations "using the semirings approach of [Green,
//! Karvounarakis, Tannen — PODS 2007]". This module provides the generic
//! trait and the classic instances; `polynomial` provides the free
//! (universal) semiring ℕ\[X\], and `citesys-core` builds the citation
//! algebra on top.

use std::fmt;

/// A commutative semiring `(K, +, ·, 0, 1)`.
///
/// Laws (validated by property tests for every instance in this crate):
/// `+` is associative and commutative with identity `0`; `·` is associative
/// and commutative with identity `1`; `·` distributes over `+`; `0`
/// annihilates `·`.
pub trait Semiring: Clone + PartialEq + fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition — the *alternative* use of annotations.
    fn add(&self, other: &Self) -> Self;
    /// Multiplication — the *joint* use of annotations.
    fn mul(&self, other: &Self) -> Self;

    /// True when this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Embeds a natural number: `n ↦ 1 + 1 + … + 1` (n times), computed by
    /// binary doubling so large coefficients stay cheap.
    fn from_natural(n: u64) -> Self {
        if n == 0 {
            return Self::zero();
        }
        let mut acc = Self::zero();
        let mut base = Self::one();
        let mut k = n;
        loop {
            if k & 1 == 1 {
                acc = acc.add(&base);
            }
            k >>= 1;
            if k == 0 {
                break;
            }
            base = base.add(&base);
        }
        acc
    }

    /// Raises to a natural-number power by binary exponentiation
    /// (`x^0 = 1`).
    fn pow(&self, mut e: u32) -> Self {
        let mut acc = Self::one();
        let mut base = self.clone();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base);
            }
            base = base.mul(&base);
            e >>= 1;
        }
        acc
    }

    /// Sums an iterator of elements.
    fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::zero(), |acc, x| acc.add(&x))
    }

    /// Multiplies an iterator of elements.
    fn product<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::one(), |acc, x| acc.mul(&x))
    }
}

/// The Boolean semiring `(𝔹, ∨, ∧, false, true)` — set semantics:
/// "is this tuple in the answer?"
impl Semiring for bool {
    fn zero() -> Self {
        false
    }
    fn one() -> Self {
        true
    }
    fn add(&self, other: &Self) -> Self {
        *self || *other
    }
    fn mul(&self, other: &Self) -> Self {
        *self && *other
    }
}

/// The counting semiring `(ℕ, +, ×, 0, 1)` — bag semantics: "how many
/// derivations does this tuple have?" Saturating arithmetic keeps large
/// synthetic workloads panic-free.
impl Semiring for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn add(&self, other: &Self) -> Self {
        self.saturating_add(*other)
    }
    fn mul(&self, other: &Self) -> Self {
        self.saturating_mul(*other)
    }
}

/// The tropical (min, +) semiring used for the paper's **minimum-size**
/// `+R` policy: alternatives take the cheaper option, joint use adds sizes.
/// `Cost::INFINITY` is the additive identity ("no derivation").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Cost(pub u64);

impl Cost {
    /// The additive identity: no derivation exists.
    pub const INFINITY: Cost = Cost(u64::MAX);

    /// True when this cost is infinite.
    pub fn is_infinite(&self) -> bool {
        *self == Cost::INFINITY
    }
}

impl Semiring for Cost {
    fn zero() -> Self {
        Cost::INFINITY
    }
    fn one() -> Self {
        Cost(0)
    }
    fn add(&self, other: &Self) -> Self {
        Cost(self.0.min(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        if self.is_infinite() || other.is_infinite() {
            Cost::INFINITY
        } else {
            Cost(self.0.saturating_add(other.0))
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
pub(crate) mod law_tests {
    use super::*;

    /// Checks all semiring laws on a slice of sample elements.
    pub(crate) fn check_laws<K: Semiring>(samples: &[K]) {
        for a in samples {
            assert_eq!(a.add(&K::zero()), *a, "0 is + identity");
            assert_eq!(a.mul(&K::one()), *a, "1 is · identity");
            assert_eq!(a.mul(&K::zero()), K::zero(), "0 annihilates ·");
            for b in samples {
                assert_eq!(a.add(b), b.add(a), "+ commutes");
                assert_eq!(a.mul(b), b.mul(a), "· commutes");
                for c in samples {
                    assert_eq!(a.add(&b.add(c)), a.add(b).add(c), "+ associates");
                    assert_eq!(a.mul(&b.mul(c)), a.mul(b).mul(c), "· associates");
                    assert_eq!(
                        a.mul(&b.add(c)),
                        a.mul(b).add(&a.mul(c)),
                        "· distributes over +"
                    );
                }
            }
        }
    }

    #[test]
    fn boolean_laws() {
        check_laws(&[false, true]);
    }

    #[test]
    fn counting_laws() {
        check_laws(&[0u64, 1, 2, 3, 7]);
    }

    #[test]
    fn tropical_laws() {
        check_laws(&[Cost(0), Cost(1), Cost(5), Cost::INFINITY]);
    }

    #[test]
    fn from_natural_counts() {
        assert_eq!(u64::from_natural(0), 0);
        assert_eq!(u64::from_natural(13), 13);
        assert!(!bool::from_natural(0));
        assert!(bool::from_natural(5));
        assert_eq!(Cost::from_natural(0), Cost::INFINITY);
        assert_eq!(Cost::from_natural(9), Cost(0), "min of nine zeros");
    }

    #[test]
    fn pow_by_doubling() {
        assert_eq!(3u64.pow(<u64 as Semiring>::zero() as u32), 1);
        assert_eq!(Semiring::pow(&2u64, 10), 1024);
        assert_eq!(Semiring::pow(&Cost(3), 4), Cost(12));
        assert_eq!(Semiring::pow(&Cost::INFINITY, 0), Cost(0), "x^0 = 1");
    }

    #[test]
    fn sum_and_product_helpers() {
        assert_eq!(u64::sum([1, 2, 3]), 6);
        assert_eq!(u64::product([2, 3, 4]), 24);
        assert_eq!(Cost::sum([Cost(5), Cost(2), Cost(9)]), Cost(2));
        assert_eq!(Cost::product([Cost(5), Cost(2)]), Cost(7));
        assert_eq!(u64::sum(std::iter::empty()), 0);
        assert_eq!(u64::product(std::iter::empty()), 1);
    }

    #[test]
    fn cost_display() {
        assert_eq!(Cost(3).to_string(), "3");
        assert_eq!(Cost::INFINITY.to_string(), "∞");
    }
}

//! Property-based tests: semiring laws on random elements and the
//! fundamental universality property of provenance polynomials.

use citesys_cq::{parse_query, Value, ValueType};
use citesys_provenance::{
    provenance, AnnotatedDatabase, Cost, Lineage, Polynomial, ProvToken, Semiring, Why,
};
use citesys_storage::{Database, RelationSchema, Tuple};
use proptest::prelude::*;

fn tok(i: u8) -> ProvToken {
    ProvToken::new("T", Tuple::new(vec![Value::Int(i64::from(i))]))
}

/// Random polynomial built from a handful of variables.
fn poly() -> impl Strategy<Value = Polynomial> {
    let leaf = prop_oneof![
        Just(Polynomial::zero()),
        Just(Polynomial::one()),
        (0u8..4).prop_map(|i| Polynomial::var(tok(i))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(&b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.mul(&b)),
        ]
    })
}

fn check_laws_on<K: Semiring>(a: &K, b: &K, c: &K) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.add(b), b.add(a));
    prop_assert_eq!(a.mul(b), b.mul(a));
    prop_assert_eq!(a.add(&b.add(c)), a.add(b).add(c));
    prop_assert_eq!(a.mul(&b.mul(c)), a.mul(b).mul(c));
    prop_assert_eq!(a.mul(&b.add(c)), a.mul(b).add(&a.mul(c)));
    prop_assert_eq!(a.add(&K::zero()), a.clone());
    prop_assert_eq!(a.mul(&K::one()), a.clone());
    prop_assert_eq!(a.mul(&K::zero()), K::zero());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn polynomial_laws(a in poly(), b in poly(), c in poly()) {
        check_laws_on(&a, &b, &c)?;
    }

    #[test]
    fn cost_laws(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
        check_laws_on(&Cost(a), &Cost(b), &Cost(c))?;
        check_laws_on(&Cost(a), &Cost::INFINITY, &Cost(c))?;
    }

    #[test]
    fn counting_laws(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
        check_laws_on(&a, &b, &c)?;
    }

    /// eval_in is a homomorphism: it commutes with + and ·.
    #[test]
    fn eval_in_is_homomorphic(a in poly(), b in poly()) {
        let assign = |t: &ProvToken| -> u64 {
            1 + t.tuple.get(0).and_then(Value::as_int).unwrap_or(0) as u64
        };
        prop_assert_eq!(
            a.add(&b).eval_in::<u64>(&assign),
            a.eval_in::<u64>(&assign) + b.eval_in::<u64>(&assign)
        );
        prop_assert_eq!(
            a.mul(&b).eval_in::<u64>(&assign),
            a.eval_in::<u64>(&assign) * b.eval_in::<u64>(&assign)
        );
    }

    /// Lineage and Why laws on random small elements.
    #[test]
    fn lineage_why_laws(xs in prop::collection::vec(0u8..4, 3)) {
        let l: Vec<Lineage> = xs.iter().map(|&i| Lineage::of(tok(i))).collect();
        check_laws_on(&l[0], &l[1], &l[2])?;
        let w: Vec<Why> = xs.iter().map(|&i| Why::of(tok(i))).collect();
        check_laws_on(&w[0], &w[1], &w[2])?;
    }
}

/// Random small database for the universality test.
fn rand_db() -> impl Strategy<Value = Database> {
    (
        prop::collection::btree_set((0i64..5, 0i64..5), 0..12),
        prop::collection::btree_set((0i64..5, 0i64..5), 0..12),
    )
        .prop_map(|(rs, ss)| {
            let mut d = Database::new();
            d.create_relation(RelationSchema::from_parts(
                "R",
                &[("A", ValueType::Int), ("B", ValueType::Int)],
                &[],
            ))
            .unwrap();
            d.create_relation(RelationSchema::from_parts(
                "S",
                &[("B", ValueType::Int), ("C", ValueType::Int)],
                &[],
            ))
            .unwrap();
            for (a, b) in rs {
                d.insert("R", Tuple::new(vec![Value::Int(a), Value::Int(b)]))
                    .unwrap();
            }
            for (b, c) in ss {
                d.insert("S", Tuple::new(vec![Value::Int(b), Value::Int(c)]))
                    .unwrap();
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fundamental property (universality of ℕ\[X\]): computing provenance
    /// polynomials and then evaluating them under an assignment gives the
    /// same result as evaluating the annotated database directly — for the
    /// counting, Boolean and tropical semirings.
    #[test]
    fn universality(db in rand_db(), costs in prop::collection::vec(1u64..5, 50)) {
        let q = parse_query("Q(X, C) :- R(X, Y), S(Y, C)").unwrap();
        let cost_fn = {
            let costs = costs.clone();
            move |t: &ProvToken| -> u64 {
                let a = t.tuple.get(0).and_then(Value::as_int).unwrap_or(0) as usize;
                let b = t.tuple.get(1).and_then(Value::as_int).unwrap_or(0) as usize;
                let base = if t.relation.as_str() == "R" { 0 } else { 25 };
                costs[(base + a * 5 + b) % costs.len()]
            }
        };

        let prov = provenance(&db, &q).unwrap();

        // Counting semiring.
        let mut adb: AnnotatedDatabase<u64> = AnnotatedDatabase::new(db.clone());
        for rel in ["R", "S"] {
            let tuples: Vec<Tuple> = db.relation(rel).unwrap().scan().cloned().collect();
            for t in tuples {
                let k = cost_fn(&ProvToken::new(rel, t.clone()));
                adb.annotate(rel, t, k);
            }
        }
        let direct = adb.evaluate_annotated(&q).unwrap();
        prop_assert_eq!(direct.len(), prov.len());
        for ((t1, k), (t2, p)) in direct.iter().zip(&prov) {
            prop_assert_eq!(t1, t2);
            prop_assert_eq!(*k, p.eval_in::<u64>(&|t| cost_fn(t)));
        }

        // Tropical semiring via the same polynomials.
        let mut adb2: AnnotatedDatabase<Cost> = AnnotatedDatabase::new(db.clone());
        for rel in ["R", "S"] {
            let tuples: Vec<Tuple> = db.relation(rel).unwrap().scan().cloned().collect();
            for t in tuples {
                let k = Cost(cost_fn(&ProvToken::new(rel, t.clone())));
                adb2.annotate(rel, t, k);
            }
        }
        let direct2 = adb2.evaluate_annotated(&q).unwrap();
        for ((t1, k), (t2, p)) in direct2.iter().zip(&prov) {
            prop_assert_eq!(t1, t2);
            prop_assert_eq!(*k, p.eval_in::<Cost>(&|t| Cost(cost_fn(t))));
        }

        // Boolean: every returned tuple has a satisfiable polynomial.
        for (_, p) in &prov {
            prop_assert!(p.eval_in::<bool>(&|_| true));
        }
    }
}

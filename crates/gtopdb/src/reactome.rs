//! A Reactome-style pathway database (§1: "Reactome, an open-source,
//! curated and peer reviewed pathway relational database").
//!
//! Structure preserved from the real system: pathways form a part-of
//! hierarchy, each pathway has participant molecules and named curators,
//! and citations are attached per pathway ("cite the pathway and the people
//! who curated it") as well as database-wide.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use citesys_core::{CitationFunction, CitationQuery, CitationRegistry, CitationView};
use citesys_cq::{parse_query, ConjunctiveQuery, Value, ValueType};
use citesys_storage::{Database, RelationSchema, Tuple};

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReactomeConfig {
    /// Number of top-level pathways.
    pub roots: usize,
    /// Sub-pathways per pathway (one level of hierarchy).
    pub children_per_root: usize,
    /// Participant molecules per pathway.
    pub participants_per_pathway: usize,
    /// Curators per pathway.
    pub curators_per_pathway: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReactomeConfig {
    fn default() -> Self {
        ReactomeConfig {
            roots: 8,
            children_per_root: 3,
            participants_per_pathway: 4,
            curators_per_pathway: 2,
            seed: 0x8EAC,
        }
    }
}

impl ReactomeConfig {
    /// Total number of pathways (roots + children).
    pub fn pathways(&self) -> usize {
        self.roots * (1 + self.children_per_root)
    }
}

/// Relation schemas.
pub fn reactome_schemas() -> Vec<RelationSchema> {
    vec![
        RelationSchema::from_parts(
            "Pathway",
            &[
                ("PID", ValueType::Int),
                ("PName", ValueType::Text),
                ("Species", ValueType::Text),
            ],
            &[0],
        ),
        RelationSchema::from_parts(
            "PathwayPart",
            &[("Parent", ValueType::Int), ("Child", ValueType::Int)],
            &[0, 1],
        ),
        RelationSchema::from_parts(
            "Participant",
            &[("PID", ValueType::Int), ("Protein", ValueType::Text)],
            &[0, 1],
        ),
        RelationSchema::from_parts(
            "PathwayCurator",
            &[("PID", ValueType::Int), ("Curator", ValueType::Text)],
            &[0, 1],
        ),
    ]
}

const PATHWAY_STEMS: [&str; 8] = [
    "Glycolysis",
    "Apoptosis",
    "Signal transduction",
    "DNA repair",
    "Cell cycle",
    "Immune response",
    "Lipid metabolism",
    "Translation",
];
const SPECIES: [&str; 3] = ["H. sapiens", "M. musculus", "D. melanogaster"];
const CURATORS: [&str; 8] = [
    "Stein",
    "Hermjakob",
    "Jassal",
    "Gillespie",
    "Matthews",
    "Wu",
    "Haw",
    "Weiser",
];

/// Generates a Reactome-style database.
pub fn generate(cfg: &ReactomeConfig) -> Database {
    let mut db = Database::new();
    for s in reactome_schemas() {
        db.create_relation(s).expect("fresh database");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pid = 0i64;
    for r in 0..cfg.roots {
        let root = pid;
        insert_pathway(
            &mut db,
            &mut rng,
            cfg,
            root,
            &format!("{} pathway", PATHWAY_STEMS[r % PATHWAY_STEMS.len()]),
        );
        pid += 1;
        for c in 0..cfg.children_per_root {
            insert_pathway(
                &mut db,
                &mut rng,
                cfg,
                pid,
                &format!("{} step {}", PATHWAY_STEMS[r % PATHWAY_STEMS.len()], c + 1),
            );
            db.insert(
                "PathwayPart",
                Tuple::new(vec![Value::Int(root), Value::Int(pid)]),
            )
            .expect("valid");
            pid += 1;
        }
    }
    db
}

fn insert_pathway(db: &mut Database, rng: &mut StdRng, cfg: &ReactomeConfig, pid: i64, name: &str) {
    db.insert(
        "Pathway",
        Tuple::new(vec![
            Value::Int(pid),
            Value::from(name),
            Value::from(SPECIES[rng.gen_range(0..SPECIES.len())]),
        ]),
    )
    .expect("valid");
    for p in 0..cfg.participants_per_pathway {
        db.insert(
            "Participant",
            Tuple::new(vec![
                Value::Int(pid),
                Value::from(format!("PROT-{pid}-{p}")),
            ]),
        )
        .expect("valid");
    }
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < cfg.curators_per_pathway.min(CURATORS.len()) {
        chosen.insert(CURATORS[rng.gen_range(0..CURATORS.len())]);
    }
    for c in chosen {
        db.insert(
            "PathwayCurator",
            Tuple::new(vec![Value::Int(pid), Value::from(c)]),
        )
        .expect("valid");
    }
}

/// Citation registry: per-pathway parameterized views (pathway facts and
/// participants, cited by pathway curators) plus a database-wide constant
/// view.
pub fn pathway_registry() -> CitationRegistry {
    let mut reg = CitationRegistry::new();
    reg.add(
        CitationView::new(
            parse_query("λ PID. RP(PID, PName, Species) :- Pathway(PID, PName, Species)")
                .expect("ok"),
            vec![
                CitationQuery::new(
                    parse_query("λ PID. CRPc(PID, Curator) :- PathwayCurator(PID, Curator)")
                        .expect("ok"),
                ),
                CitationQuery::new(
                    parse_query("λ PID. CRPn(PID, PName) :- Pathway(PID, PName, S)").expect("ok"),
                ),
            ],
            CitationFunction::new().with_static("database", "Reactome"),
        )
        .expect("RP well-formed"),
    )
    .expect("fresh");
    reg.add(
        CitationView::new(
            parse_query("λ PID. RPart(PID, Protein) :- Participant(PID, Protein)").expect("ok"),
            vec![CitationQuery::new(
                parse_query("λ PID. CRPart(PID, Curator) :- PathwayCurator(PID, Curator)")
                    .expect("ok"),
            )],
            CitationFunction::new().with_static("database", "Reactome"),
        )
        .expect("RPart well-formed"),
    )
    .expect("unique");
    reg.add(
        CitationView::new(
            parse_query("RAll(PID, PName, Species) :- Pathway(PID, PName, Species)").expect("ok"),
            vec![CitationQuery::with_fields(
                parse_query("CRAll(D) :- D = 'Reactome: a curated pathway database'").expect("ok"),
                vec!["citation".to_string()],
            )
            .expect("arity 1")],
            CitationFunction::new(),
        )
        .expect("RAll well-formed"),
    )
    .expect("unique");
    reg
}

/// Participants of every pathway, with pathway names.
pub fn q_participants() -> ConjunctiveQuery {
    parse_query("Q(PName, Protein) :- Pathway(PID, PName, S), Participant(PID, Protein)")
        .expect("well-formed")
}

/// Sub-pathway pairs (parent name, child name) — exercises the hierarchy.
pub fn q_hierarchy() -> ConjunctiveQuery {
    parse_query("Q(Pn, Cn) :- PathwayPart(P, C), Pathway(P, Pn, S1), Pathway(C, Cn, S2)")
        .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_core::{CitationMode, CitationService, EngineOptions};
    use citesys_storage::evaluate;

    #[test]
    fn generation_counts() {
        let cfg = ReactomeConfig::default();
        let db = generate(&cfg);
        assert_eq!(db.relation("Pathway").unwrap().len(), cfg.pathways());
        assert_eq!(
            db.relation("PathwayPart").unwrap().len(),
            cfg.roots * cfg.children_per_root
        );
        assert_eq!(
            db.relation("Participant").unwrap().len(),
            cfg.pathways() * cfg.participants_per_pathway
        );
    }

    #[test]
    fn hierarchy_query_returns_edges() {
        let cfg = ReactomeConfig::default();
        let db = generate(&cfg);
        let a = evaluate(&db, &q_hierarchy()).unwrap();
        assert_eq!(a.len(), cfg.roots * cfg.children_per_root);
    }

    #[test]
    fn participant_citations_carry_curators() {
        let db = generate(&ReactomeConfig {
            roots: 2,
            ..Default::default()
        });
        let reg = pathway_registry();
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(reg.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            })
            .build()
            .unwrap();
        let cited = engine.cite(&q_participants()).unwrap();
        assert!(!cited.answer.is_empty());
        // Participant atoms come from the parameterized RPart view, whose
        // citation query pulls the pathway curators.
        let has_curator = cited
            .tuples
            .iter()
            .any(|t| t.snippets.iter().any(|s| !s.field("Curator").is_empty()));
        assert!(has_curator);
    }

    #[test]
    fn pathway_scan_min_size_prefers_constant_view() {
        let db = generate(&ReactomeConfig::default());
        let reg = pathway_registry();
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(reg.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            })
            .build()
            .unwrap();
        let q = parse_query("Q(PID, PName, S) :- Pathway(PID, PName, S)").unwrap();
        let cited = engine.cite(&q).unwrap();
        // RAll (constant) beats RP (one citation per pathway).
        for t in &cited.tuples {
            assert_eq!(t.atoms.iter().next().unwrap().view.as_str(), "RAll");
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&ReactomeConfig::default());
        let b = generate(&ReactomeConfig::default());
        assert_eq!(
            citesys_storage::digest_database(&a),
            citesys_storage::digest_database(&b)
        );
    }
}

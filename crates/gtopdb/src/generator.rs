//! Deterministic, seeded generation of GtoPdb-style instances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use citesys_cq::Value;
use citesys_storage::{Database, Tuple, VersionedDatabase};

use crate::schema::gtopdb_schemas;

/// Generator configuration. `scale` is the headline knob: all relation
/// cardinalities grow linearly with it.
#[derive(Clone, Copy, Debug)]
pub struct GtopdbConfig {
    /// Scale factor: `families = 8 × scale`.
    pub scale: usize,
    /// Fraction of families whose name duplicates an earlier family's —
    /// the paper's two-Calcitonin situation, which multiplies bindings.
    pub dup_name_rate: f64,
    /// Committee members per family.
    pub committee_size: usize,
    /// Targets per family.
    pub targets_per_family: usize,
    /// Distinct ligands (shared across targets).
    pub ligands: usize,
    /// Interactions per target.
    pub interactions_per_target: usize,
    /// Curators per target.
    pub curators_per_target: usize,
    /// RNG seed (all output is deterministic in the seed).
    pub seed: u64,
}

impl Default for GtopdbConfig {
    fn default() -> Self {
        GtopdbConfig {
            scale: 1,
            dup_name_rate: 0.2,
            committee_size: 3,
            targets_per_family: 4,
            ligands: 32,
            interactions_per_target: 3,
            curators_per_target: 2,
            seed: 0xC17E5,
        }
    }
}

impl GtopdbConfig {
    /// Number of families at this configuration.
    pub fn families(&self) -> usize {
        8 * self.scale.max(1)
    }

    /// Number of contributors (shared pool).
    pub fn contributors(&self) -> usize {
        (4 * self.scale.max(1)).max(8)
    }
}

const FIRST_NAMES: [&str; 12] = [
    "Alice", "Bob", "Carol", "Dave", "Eve", "Frank", "Grace", "Heidi", "Ivan", "Judy", "Ken",
    "Laura",
];
const LAST_NAMES: [&str; 12] = [
    "Adams", "Baker", "Clark", "Davis", "Evans", "Foster", "Gray", "Hill", "Irwin", "Jones",
    "Klein", "Lewis",
];
const FAMILY_STEMS: [&str; 16] = [
    "Calcitonin",
    "Dopamine",
    "Serotonin",
    "Adrenoceptor",
    "Histamine",
    "Glutamate",
    "Melatonin",
    "Orexin",
    "Ghrelin",
    "Vasopressin",
    "Opioid",
    "Purinergic",
    "Chemokine",
    "Bradykinin",
    "Galanin",
    "Endothelin",
];
const LIGAND_TYPES: [&str; 4] = ["peptide", "small molecule", "antibody", "natural product"];

fn person_name(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
    )
}

/// Generates a GtoPdb-style database.
pub fn generate(cfg: &GtopdbConfig) -> Database {
    let mut db = Database::new();
    for s in gtopdb_schemas() {
        db.create_relation(s).expect("fresh database");
    }
    populate(&mut db, cfg);
    db
}

/// Generates the same content into a versioned store, committing after the
/// initial load (version 1).
pub fn generate_versioned(cfg: &GtopdbConfig) -> VersionedDatabase {
    let mut vdb = VersionedDatabase::new(gtopdb_schemas()).expect("fresh store");
    populate(&mut vdb, cfg);
    vdb.commit();
    vdb
}

/// Insert target used by [`populate`]: a plain database, a versioned
/// store, or the streaming CSV emitter ([`crate::emit::CsvEmit`]).
pub(crate) trait TupleSink {
    fn insert(&mut self, rel: &str, t: Tuple);
}

impl TupleSink for Database {
    fn insert(&mut self, rel: &str, t: Tuple) {
        Database::insert(self, rel, t).expect("generated tuple is schema-valid");
    }
}

impl TupleSink for VersionedDatabase {
    fn insert(&mut self, rel: &str, t: Tuple) {
        VersionedDatabase::insert(self, rel, t).expect("generated tuple is schema-valid");
    }
}

pub(crate) fn populate(sink: &mut dyn TupleSink, cfg: &GtopdbConfig) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_fam = cfg.families();
    let n_contrib = cfg.contributors();

    // Contributors.
    for cid in 0..n_contrib {
        let name = person_name(&mut rng);
        let affil = format!("University {}", rng.gen_range(1..30));
        sink.insert(
            "Contributor",
            Tuple::new(vec![
                Value::Int(cid as i64),
                Value::from(name),
                Value::from(affil),
            ]),
        );
    }

    // Families, committees, intros.
    let mut names: Vec<String> = Vec::with_capacity(n_fam);
    #[allow(clippy::needless_range_loop)] // names grows inside the loop
    for fid in 0..n_fam {
        // Base names are unique by construction (stem cycles, block number
        // increments); duplicates appear only via the explicit reuse
        // branch, so `dup_name_rate` controls them precisely.
        let name = if fid > 0 && rng.gen_bool(cfg.dup_name_rate) {
            names[rng.gen_range(0..names.len())].clone()
        } else {
            format!(
                "{} receptor {}",
                FAMILY_STEMS[fid % FAMILY_STEMS.len()],
                fid / FAMILY_STEMS.len() + 1
            )
        };
        names.push(name.clone());
        sink.insert(
            "Family",
            Tuple::new(vec![
                Value::Int(fid as i64),
                Value::from(name),
                Value::from(format!("Family description {fid}")),
            ]),
        );
        sink.insert(
            "FamilyIntro",
            Tuple::new(vec![
                Value::Int(fid as i64),
                Value::from(format!("Introductory text for family {fid}")),
            ]),
        );
        let mut members = std::collections::BTreeSet::new();
        while members.len() < cfg.committee_size {
            members.insert(person_name(&mut rng));
        }
        for m in members {
            sink.insert(
                "Committee",
                Tuple::new(vec![Value::Int(fid as i64), Value::from(m)]),
            );
        }
    }

    // Ligands.
    for lid in 0..cfg.ligands {
        sink.insert(
            "Ligand",
            Tuple::new(vec![
                Value::Int(lid as i64),
                Value::from(format!("ligand-{lid}")),
                Value::from(LIGAND_TYPES[rng.gen_range(0..LIGAND_TYPES.len())]),
            ]),
        );
    }

    // Targets, curators, interactions.
    let mut tid = 0i64;
    for (fid, fam_name) in names.iter().enumerate() {
        for t in 0..cfg.targets_per_family {
            sink.insert(
                "Target",
                Tuple::new(vec![
                    Value::Int(tid),
                    Value::from(format!("{fam_name} target {t}")),
                    Value::Int(fid as i64),
                ]),
            );
            let mut curators = std::collections::BTreeSet::new();
            while curators.len() < cfg.curators_per_target.min(n_contrib) {
                curators.insert(rng.gen_range(0..n_contrib) as i64);
            }
            for cid in curators {
                sink.insert(
                    "TargetCurator",
                    Tuple::new(vec![Value::Int(tid), Value::Int(cid)]),
                );
            }
            let mut lids = std::collections::BTreeSet::new();
            while lids.len() < cfg.interactions_per_target.min(cfg.ligands) {
                lids.insert(rng.gen_range(0..cfg.ligands) as i64);
            }
            for lid in lids {
                sink.insert(
                    "Interaction",
                    Tuple::new(vec![
                        Value::Int(tid),
                        Value::Int(lid),
                        Value::Int(rng.gen_range(1..1000)),
                    ]),
                );
            }
            tid += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = GtopdbConfig::default();
        let d1 = generate(&cfg);
        let d2 = generate(&cfg);
        assert_eq!(
            citesys_storage::digest_database(&d1),
            citesys_storage::digest_database(&d2)
        );
        let d3 = generate(&GtopdbConfig { seed: 7, ..cfg });
        assert_ne!(
            citesys_storage::digest_database(&d1),
            citesys_storage::digest_database(&d3)
        );
    }

    #[test]
    fn cardinalities_scale() {
        let small = generate(&GtopdbConfig {
            scale: 1,
            ..Default::default()
        });
        let large = generate(&GtopdbConfig {
            scale: 4,
            ..Default::default()
        });
        let fam = |d: &Database| d.relation("Family").unwrap().len();
        assert_eq!(fam(&small), 8);
        assert_eq!(fam(&large), 32);
        let tgt = |d: &Database| d.relation("Target").unwrap().len();
        assert_eq!(tgt(&large), 32 * 4);
    }

    #[test]
    fn duplicate_names_present_at_high_rate() {
        let cfg = GtopdbConfig {
            scale: 4,
            dup_name_rate: 0.5,
            ..Default::default()
        };
        let db = generate(&cfg);
        let rel = db.relation("Family").unwrap();
        let mut names = std::collections::HashSet::new();
        let mut dupes = 0;
        for t in rel.scan() {
            if !names.insert(t.get(1).unwrap().clone()) {
                dupes += 1;
            }
        }
        assert!(dupes > 0, "expected duplicated family names");
    }

    #[test]
    fn no_duplicates_at_zero_rate() {
        let cfg = GtopdbConfig {
            scale: 2,
            dup_name_rate: 0.0,
            ..Default::default()
        };
        let db = generate(&cfg);
        let rel = db.relation("Family").unwrap();
        let names: std::collections::HashSet<_> =
            rel.scan().map(|t| t.get(1).unwrap().clone()).collect();
        assert_eq!(names.len(), rel.len());
    }

    #[test]
    fn versioned_generation_matches_plain() {
        let cfg = GtopdbConfig::default();
        let plain = generate(&cfg);
        let vdb = generate_versioned(&cfg);
        assert_eq!(vdb.latest_version(), 1);
        assert_eq!(
            citesys_storage::digest_database(&plain),
            vdb.digest_at(1).unwrap()
        );
    }

    #[test]
    fn referential_structure() {
        let cfg = GtopdbConfig::default();
        let db = generate(&cfg);
        let n_fam = cfg.families();
        // Every target references an existing family.
        for t in db.relation("Target").unwrap().scan() {
            let fid = t.get(2).unwrap().as_int().unwrap();
            assert!((fid as usize) < n_fam);
        }
        // Committee size respected.
        assert_eq!(
            db.relation("Committee").unwrap().len(),
            n_fam * cfg.committee_size
        );
    }
}

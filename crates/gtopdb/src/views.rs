//! Citation views for the synthetic GtoPdb, mirroring how the real
//! database attaches citations at different granularities (§1: "Different
//! portions of the database, with varying granularity, are contributed
//! and/or curated by different subgroups").

use citesys_core::{CitationFunction, CitationQuery, CitationRegistry, CitationView};
use citesys_cq::parse_query;

/// The constant whole-database citation text.
pub const DB_CITATION: &str = "IUPHAR/BPS Guide to PHARMACOLOGY...";

/// The paper's three views (V1 parameterized by family, V2/V3 constant).
pub fn family_views() -> CitationRegistry {
    let mut reg = CitationRegistry::new();
    reg.add(
        CitationView::new(
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            vec![CitationQuery::new(
                parse_query("λ FID. CV1(FID, PName) :- Committee(FID, PName)").unwrap(),
            )],
            CitationFunction::new().with_static("database", "GtoPdb"),
        )
        .expect("V1 well-formed"),
    )
    .expect("fresh registry");
    for (name, body) in [
        ("V2", "V2(FID, FName, Desc) :- Family(FID, FName, Desc)"),
        ("V3", "V3(FID, Text) :- FamilyIntro(FID, Text)"),
    ] {
        let _ = name;
        reg.add(
            CitationView::new(
                parse_query(body).unwrap(),
                vec![CitationQuery::with_fields(
                    parse_query(&format!("C{}(D) :- D = \"{DB_CITATION}\"", name)).unwrap(),
                    vec!["citation".to_string()],
                )
                .expect("arity 1")],
                CitationFunction::new(),
            )
            .expect("constant view well-formed"),
        )
        .expect("unique name");
    }
    reg
}

/// The full registry: the paper's family views plus target-, ligand- and
/// interaction-level citation views over the extended schema.
pub fn full_registry() -> CitationRegistry {
    let mut reg = family_views();

    // Target view, parameterized by target id; cited by its curators.
    reg.add(
        CitationView::new(
            parse_query("λ TID. VT(TID, TName, FID) :- Target(TID, TName, FID)").unwrap(),
            vec![CitationQuery::new(
                parse_query(
                    "λ TID. CVT(TID, CName) :- TargetCurator(TID, CID), Contributor(CID, CName, Affil)",
                )
                .unwrap(),
            )],
            CitationFunction::new().with_static("database", "GtoPdb"),
        )
        .expect("VT well-formed"),
    )
    .expect("unique name");

    // Ligand view, unparameterized (whole-table citation).
    reg.add(
        CitationView::new(
            parse_query("VL(LID, LName, LType) :- Ligand(LID, LName, LType)").unwrap(),
            vec![CitationQuery::with_fields(
                parse_query(&format!("CVL(D) :- D = \"{DB_CITATION}\"")).unwrap(),
                vec!["citation".to_string()],
            )
            .expect("arity 1")],
            CitationFunction::new(),
        )
        .expect("VL well-formed"),
    )
    .expect("unique name");

    // Interaction view, parameterized by target; cited by target curators.
    reg.add(
        CitationView::new(
            parse_query("λ TID. VI(TID, LID, Affinity) :- Interaction(TID, LID, Affinity)")
                .unwrap(),
            vec![CitationQuery::new(
                parse_query(
                    "λ TID. CVI(TID, CName) :- TargetCurator(TID, CID), Contributor(CID, CName, Affil)",
                )
                .unwrap(),
            )],
            CitationFunction::new().with_static("database", "GtoPdb"),
        )
        .expect("VI well-formed"),
    )
    .expect("unique name");

    // Committee view, unparameterized.
    reg.add(
        CitationView::new(
            parse_query("VC(FID, PName) :- Committee(FID, PName)").unwrap(),
            vec![CitationQuery::with_fields(
                parse_query(&format!("CVC(D) :- D = \"{DB_CITATION}\"")).unwrap(),
                vec!["citation".to_string()],
            )
            .expect("arity 1")],
            CitationFunction::new(),
        )
        .expect("VC well-formed"),
    )
    .expect("unique name");

    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GtopdbConfig};
    use citesys_core::{CitationMode, CitationService, EngineOptions};

    #[test]
    fn family_views_match_paper() {
        let reg = family_views();
        assert_eq!(reg.len(), 3);
        assert!(reg.get("V1").unwrap().is_parameterized());
    }

    #[test]
    fn full_registry_has_seven_views() {
        let reg = full_registry();
        assert_eq!(reg.len(), 7);
        assert!(reg.get("VT").unwrap().is_parameterized());
        assert!(!reg.get("VL").unwrap().is_parameterized());
    }

    #[test]
    fn generated_db_supports_paper_query() {
        let db = generate(&GtopdbConfig::default());
        let reg = full_registry();
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(reg.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            })
            .build()
            .unwrap();
        let q =
            citesys_cq::parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
                .unwrap();
        let cited = engine.cite(&q).unwrap();
        assert!(!cited.answer.is_empty());
        // Min-size prefers the constant V2 citation.
        assert!(cited.tuples[0].atoms.iter().all(|a| a.params.is_empty()));
    }

    #[test]
    fn target_interaction_query_cites_curators() {
        let db = generate(&GtopdbConfig::default());
        let reg = full_registry();
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(reg.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            })
            .build()
            .unwrap();
        // Interactions of targets: only VT/VI (parameterized) cover these
        // relations, so citations carry curator names.
        let q = citesys_cq::parse_query(
            "Q(TName, LID) :- Target(TID, TName, FID), Interaction(TID, LID, Affinity)",
        )
        .unwrap();
        let cited = engine.cite(&q).unwrap();
        assert!(!cited.answer.is_empty());
        let has_curator = cited
            .tuples
            .iter()
            .any(|t| t.snippets.iter().any(|s| !s.field("CName").is_empty()));
        assert!(has_curator, "expected curator names in citations");
    }
}

//! `citesys-gtopdb` — generator tool. The `emit` mode writes a
//! deterministic synthetic GtoPdb instance as per-relation CSV dump
//! files, sized by `--scale`, for `citesys ingest` smoke tests and
//! benches.

use std::path::Path;
use std::process::ExitCode;

use citesys_gtopdb::{emit_csv, GtopdbConfig};

const EXIT_IO: u8 = 1;
const EXIT_USAGE: u8 = 2;

fn usage() -> String {
    "usage: citesys-gtopdb emit <dir> [options]\n\
     \n\
     Writes one '<Relation>.csv' per gtopdb relation into <dir>\n\
     (created if missing). Output is deterministic in the seed.\n\
     \n\
     options:\n\
     \x20 --scale <n>                 scale factor (families = 8 x n; default 1)\n\
     \x20 --seed <n>                  RNG seed (default 0xC17E5)\n\
     \x20 --targets-per-family <n>    targets per family (default 4)\n\
     \x20 --interactions <n>          interactions per target (default 3)\n\
     \x20 --ligands <n>               distinct ligands (default 32)\n\
     \x20 --dup-rate <f>              duplicated family-name rate (default 0.2)\n"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit") => emit_cmd(&args[1..]),
        Some("--help") | Some("-h") => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{}", usage());
            ExitCode::from(EXIT_USAGE)
        }
    }
}

fn emit_cmd(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::from(EXIT_USAGE);
    };
    let mut cfg = GtopdbConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut num = |what: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{what} needs a value"))?
                .parse::<usize>()
                .map_err(|_| format!("{what} needs an integer"))
        };
        let r = match flag.as_str() {
            "--scale" => num("--scale").map(|n| cfg.scale = n.max(1)),
            "--seed" => num("--seed").map(|n| cfg.seed = n as u64),
            "--targets-per-family" => {
                num("--targets-per-family").map(|n| cfg.targets_per_family = n)
            }
            "--interactions" => num("--interactions").map(|n| cfg.interactions_per_target = n),
            "--ligands" => num("--ligands").map(|n| cfg.ligands = n),
            "--dup-rate" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(f)) if (0.0..=1.0).contains(&f) => {
                    cfg.dup_name_rate = f;
                    Ok(())
                }
                _ => Err("--dup-rate needs a fraction in [0,1]".to_string()),
            },
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(m) = r {
            eprintln!("error: {m}");
            eprint!("{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    }
    match emit_csv(Path::new(dir), &cfg) {
        Ok(stats) => {
            for (file, n) in &stats.files {
                println!("  {file}: {n} records");
            }
            println!(
                "emitted {} records across {} files in {dir}",
                stats.records,
                stats.files.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_IO)
        }
    }
}

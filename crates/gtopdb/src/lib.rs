//! # citesys-gtopdb — synthetic evaluation substrate
//!
//! The paper motivates data citation with live curated databases — the
//! IUPHAR/BPS Guide to Pharmacology (GtoPdb), eagle-i, Reactome, DrugBank —
//! that cannot be shipped with a reproduction. This crate substitutes
//! deterministic, seeded generators that reproduce the *structure* the
//! citation problem cares about:
//!
//! * [`schema`]/[`generator`]: the paper's `Family`/`Committee`/
//!   `FamilyIntro` fragment extended with targets, contributors, ligands
//!   and interactions, scale-factor parameterized, with a controllable
//!   duplicated-family-name rate (the paper's two-Calcitonin situation);
//! * [`views`]: citation registries at family / target / ligand
//!   granularity, mirroring GtoPdb's per-portion contributor credits;
//! * [`synthetic`]: abstract chain/star instances for the rewriting
//!   scalability experiments;
//! * [`eaglei`]: an RDF-style triple store with per-class citation views
//!   (§3 *Other models*);
//! * [`workload`]: standard query workloads and candidate view pools for
//!   the view-selection experiment;
//! * [`emit`]: streams a generated instance to per-relation CSV dump
//!   files on disk (the `citesys-gtopdb emit` binary mode) — realistic
//!   multi-million-tuple inputs for `citesys ingest`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eaglei;
pub mod emit;
pub mod generator;
pub mod reactome;
pub mod schema;
pub mod synthetic;
pub mod views;
pub mod workload;

pub use emit::{emit_csv, EmitStats};
pub use generator::{generate, generate_versioned, GtopdbConfig};
pub use schema::gtopdb_schemas;
pub use views::{family_views, full_registry, DB_CITATION};

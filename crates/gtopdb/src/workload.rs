//! Query workloads over the synthetic GtoPdb schema (used by the view
//! selection experiment E8 and the engine benchmarks).

use citesys_cq::{parse_query, ConjunctiveQuery};

/// The paper's query: family names that have an intro.
pub fn q_family_intro() -> ConjunctiveQuery {
    parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        .expect("well-formed")
}

/// Targets with their family names.
pub fn q_targets_of_families() -> ConjunctiveQuery {
    parse_query("Q(TName, FName) :- Target(TID, TName, FID), Family(FID, FName, Desc)")
        .expect("well-formed")
}

/// Target–ligand interaction pairs.
pub fn q_interactions() -> ConjunctiveQuery {
    parse_query(
        "Q(TName, LName) :- Target(TID, TName, FID), Interaction(TID, LID, Aff), Ligand(LID, LName, LType)",
    )
    .expect("well-formed")
}

/// All committee members.
pub fn q_committee() -> ConjunctiveQuery {
    parse_query("Q(PName) :- Committee(FID, PName)").expect("well-formed")
}

/// All family descriptions.
pub fn q_families() -> ConjunctiveQuery {
    parse_query("Q(FID, FName, Desc) :- Family(FID, FName, Desc)").expect("well-formed")
}

/// Ligands of a family (4-way join).
pub fn q_family_ligands() -> ConjunctiveQuery {
    parse_query(
        "Q(FName, LName) :- Family(FID, FName, Desc), Target(TID, TName, FID), Interaction(TID, LID, Aff), Ligand(LID, LName, LType)",
    )
    .expect("well-formed")
}

/// The standard workload: a mix of the above, ordered easy → hard.
pub fn standard_workload() -> Vec<ConjunctiveQuery> {
    vec![
        q_families(),
        q_committee(),
        q_family_intro(),
        q_targets_of_families(),
        q_interactions(),
        q_family_ligands(),
    ]
}

/// Candidate views for selection experiments: identity views over every
/// relation plus the paper's parameterized `V1` and two join views.
pub fn candidate_views() -> Vec<ConjunctiveQuery> {
    vec![
        parse_query("λ FID. W1(FID, FName, Desc) :- Family(FID, FName, Desc)").expect("ok"),
        parse_query("W2(FID, FName, Desc) :- Family(FID, FName, Desc)").expect("ok"),
        parse_query("W3(FID, Text) :- FamilyIntro(FID, Text)").expect("ok"),
        parse_query("W4(FID, PName) :- Committee(FID, PName)").expect("ok"),
        parse_query("W5(TID, TName, FID) :- Target(TID, TName, FID)").expect("ok"),
        parse_query("W6(LID, LName, LType) :- Ligand(LID, LName, LType)").expect("ok"),
        parse_query("W7(TID, LID, Aff) :- Interaction(TID, LID, Aff)").expect("ok"),
        parse_query("W8(TID, TName, FName) :- Target(TID, TName, FID), Family(FID, FName, D)")
            .expect("ok"),
        parse_query("W9(TID, LName) :- Interaction(TID, LID, A), Ligand(LID, LName, T)")
            .expect("ok"),
    ]
}

/// Random acyclic join queries over the GtoPdb schema, following its
/// foreign-key joins. Used to fuzz the citation engine: every generated
/// query is guaranteed evaluable, and — over the identity views of
/// [`candidate_views`] — coverable.
pub mod random {
    use citesys_cq::{parse_query, ConjunctiveQuery};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// FK-join steps: (relation, its variables, join var shared with prior).
    const STEPS: [(&str, &str); 4] = [
        ("Family(FID, FName, Desc)", "FID"),
        ("Target(TID, TName, FID)", "TID"),
        ("Interaction(TID, LID, Aff)", "LID"),
        ("Ligand(LID, LName, LType)", ""),
    ];

    /// Generates `count` random contiguous FK-chain queries (length 1–4)
    /// with a random projection of the chain's variables.
    pub fn chain_queries(seed: u64, count: usize) -> Vec<ConjunctiveQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        let vars_of: [&[&str]; 4] = [
            &["FID", "FName", "Desc"],
            &["TID", "TName", "FID"],
            &["TID", "LID", "Aff"],
            &["LID", "LName", "LType"],
        ];
        let mut out = Vec::with_capacity(count);
        for qi in 0..count {
            let start = rng.gen_range(0..STEPS.len());
            let len = rng.gen_range(1..=(STEPS.len() - start));
            let body: Vec<&str> = STEPS[start..start + len].iter().map(|(a, _)| *a).collect();
            // Project 1–3 distinct variables from the used atoms.
            let mut pool: Vec<&str> = vars_of[start..start + len].concat();
            pool.dedup();
            let k = rng.gen_range(1..=pool.len().min(3));
            let mut head: Vec<&str> = Vec::new();
            while head.len() < k {
                let v = pool[rng.gen_range(0..pool.len())];
                if !head.contains(&v) {
                    head.push(v);
                }
            }
            let q = format!("Q{qi}({}) :- {}", head.join(", "), body.join(", "));
            out.push(parse_query(&q).expect("generated query is well-formed"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GtopdbConfig};
    use citesys_storage::evaluate;

    #[test]
    fn workload_queries_run_on_generated_db() {
        let db = generate(&GtopdbConfig::default());
        for q in standard_workload() {
            let a = evaluate(&db, &q).unwrap();
            assert!(!a.is_empty(), "query {} returned nothing", q);
        }
    }

    #[test]
    fn candidates_parse_and_are_distinctly_named() {
        let cands = candidate_views();
        let names: std::collections::BTreeSet<_> = cands.iter().map(|v| v.name().clone()).collect();
        assert_eq!(names.len(), cands.len());
    }

    #[test]
    fn identity_candidates_cover_standard_workload() {
        use citesys_core::greedy_select;
        use citesys_rewrite::RewriteOptions;
        let sel = greedy_select(
            &standard_workload(),
            &candidate_views(),
            &RewriteOptions::default(),
        );
        assert!(sel.covers_all(), "covered: {:?}", sel.covered);
    }

    #[test]
    fn random_chain_queries_evaluate_and_are_coverable() {
        use citesys_core::covers;
        use citesys_rewrite::RewriteOptions;
        let db = generate(&GtopdbConfig::default());
        let queries = random::chain_queries(42, 24);
        assert_eq!(queries.len(), 24);
        let cands = candidate_views();
        for q in &queries {
            evaluate(&db, q).unwrap_or_else(|e| panic!("{q} failed: {e}"));
            assert!(
                covers(q, &cands, &RewriteOptions::default()),
                "identity views must cover {q}"
            );
        }
    }

    #[test]
    fn random_queries_deterministic_in_seed() {
        let a = random::chain_queries(7, 10);
        let b = random::chain_queries(7, 10);
        assert_eq!(
            a.iter().map(ToString::to_string).collect::<Vec<_>>(),
            b.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        let c = random::chain_queries(8, 10);
        assert_ne!(
            a.iter().map(ToString::to_string).collect::<Vec<_>>(),
            c.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}

//! The synthetic GtoPdb-style schema.
//!
//! The paper's published fragment (`Family`, `Committee`, `FamilyIntro`) is
//! reproduced verbatim and extended with the publicly documented
//! surrounding structure of the IUPHAR/BPS Guide to Pharmacology: drug
//! targets grouped into families, contributors curating targets, ligands,
//! and target–ligand interactions. This is the substitution documented in
//! DESIGN.md: the real GtoPdb is a live curated web database; the generator
//! reproduces its *shape* (schema and cardinality structure) so that
//! citation cost and size scale the same way.

use citesys_cq::ValueType;
use citesys_storage::RelationSchema;

/// All relation schemas of the synthetic GtoPdb.
pub fn gtopdb_schemas() -> Vec<RelationSchema> {
    vec![
        // The paper's fragment.
        RelationSchema::from_parts(
            "Family",
            &[
                ("FID", ValueType::Int),
                ("FName", ValueType::Text),
                ("Desc", ValueType::Text),
            ],
            &[0],
        ),
        RelationSchema::from_parts(
            "Committee",
            &[("FID", ValueType::Int), ("PName", ValueType::Text)],
            &[0, 1],
        ),
        RelationSchema::from_parts(
            "FamilyIntro",
            &[("FID", ValueType::Int), ("Text", ValueType::Text)],
            &[0],
        ),
        // Surrounding structure.
        RelationSchema::from_parts(
            "Target",
            &[
                ("TID", ValueType::Int),
                ("TName", ValueType::Text),
                ("FID", ValueType::Int),
            ],
            &[0],
        ),
        RelationSchema::from_parts(
            "Contributor",
            &[
                ("CID", ValueType::Int),
                ("CName", ValueType::Text),
                ("Affiliation", ValueType::Text),
            ],
            &[0],
        ),
        RelationSchema::from_parts(
            "TargetCurator",
            &[("TID", ValueType::Int), ("CID", ValueType::Int)],
            &[0, 1],
        ),
        RelationSchema::from_parts(
            "Ligand",
            &[
                ("LID", ValueType::Int),
                ("LName", ValueType::Text),
                ("LType", ValueType::Text),
            ],
            &[0],
        ),
        RelationSchema::from_parts(
            "Interaction",
            &[
                ("TID", ValueType::Int),
                ("LID", ValueType::Int),
                ("Affinity", ValueType::Int),
            ],
            &[0, 1],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_inventory() {
        let schemas = gtopdb_schemas();
        assert_eq!(schemas.len(), 8);
        let names: Vec<&str> = schemas.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"Family"));
        assert!(names.contains(&"Interaction"));
        // Paper keys: Family(FID), Committee(FID, PName).
        assert_eq!(schemas[0].key, vec![0]);
        assert_eq!(schemas[1].key, vec![0, 1]);
    }
}

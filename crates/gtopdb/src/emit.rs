//! `emit` mode: write a synthetic GtoPdb instance as per-relation CSV
//! dump files — multi-million-tuple inputs for the ingestion smoke test
//! and benches, produced without ever materializing the database.
//!
//! Rows stream straight from the generator to buffered per-relation
//! writers, so emitting a 2M-tuple dump holds only file buffers in
//! memory. Output is deterministic in the seed and byte-stable: the
//! same `GtopdbConfig` always emits identical files (the manifest
//! digests in the ingestion registry rely on this).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use citesys_storage::{csv_header, render_csv_value, Tuple};

use crate::generator::{populate, GtopdbConfig, TupleSink};
use crate::schema::gtopdb_schemas;

/// Summary of one emitted dump.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmitStats {
    /// `(file name, records written)` per relation, in name order.
    pub files: Vec<(String, u64)>,
    /// Total records across all files.
    pub records: u64,
}

/// Streaming CSV sink: one `<Relation>.csv` per gtopdb relation.
pub(crate) struct CsvEmit {
    writers: BTreeMap<String, (PathBuf, BufWriter<File>, u64)>,
    error: Option<io::Error>,
}

impl CsvEmit {
    fn create(dir: &Path) -> io::Result<CsvEmit> {
        std::fs::create_dir_all(dir)?;
        let mut writers = BTreeMap::new();
        for schema in gtopdb_schemas() {
            let path = dir.join(format!("{}.csv", schema.name));
            let mut w = BufWriter::new(File::create(&path)?);
            w.write_all(csv_header(&schema).as_bytes())?;
            w.write_all(b"\n")?;
            writers.insert(schema.name.to_string(), (path, w, 0));
        }
        Ok(CsvEmit {
            writers,
            error: None,
        })
    }

    fn finish(mut self) -> io::Result<EmitStats> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut files = Vec::new();
        let mut records = 0;
        for (rel, (path, mut w, n)) in self.writers {
            w.flush()?;
            w.into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?
                .sync_all()?;
            let _ = path;
            files.push((format!("{rel}.csv"), n));
            records += n;
        }
        Ok(EmitStats { files, records })
    }
}

impl TupleSink for CsvEmit {
    fn insert(&mut self, rel: &str, t: Tuple) {
        if self.error.is_some() {
            return;
        }
        let (_, w, n) = self
            .writers
            .get_mut(rel)
            .expect("generator only emits gtopdb relations");
        let mut line = String::new();
        for (i, v) in t.values().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&render_csv_value(v));
        }
        line.push('\n');
        if let Err(e) = w.write_all(line.as_bytes()) {
            self.error = Some(e);
            return;
        }
        *n += 1;
    }
}

/// Emits the configured instance as CSV dump files under `dir`
/// (creating it), returning per-file record counts.
pub fn emit_csv(dir: &Path, cfg: &GtopdbConfig) -> io::Result<EmitStats> {
    let mut sink = CsvEmit::create(dir)?;
    populate(&mut sink, cfg);
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use citesys_storage::{digest_database, load_csv, Database};

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("citesys-emit-{tag}-{}", std::process::id()))
    }

    #[test]
    fn emitted_dump_matches_in_memory_generation() {
        let dir = tmp("match");
        let cfg = GtopdbConfig::default();
        let stats = emit_csv(&dir, &cfg).unwrap();
        assert_eq!(stats.files.len(), 8);
        let mut db = Database::new();
        for (file, _) in &stats.files {
            let rel = file.strip_suffix(".csv").unwrap();
            let text = std::fs::read_to_string(dir.join(file)).unwrap();
            // Keys in the dump header match the canonical schemas.
            let schema = gtopdb_schemas()
                .into_iter()
                .find(|s| s.name == rel)
                .unwrap();
            let n = load_csv(&mut db, rel, &schema.key, &text).unwrap();
            assert_eq!(
                n as u64,
                stats.files.iter().find(|(f, _)| f == file).unwrap().1
            );
        }
        assert_eq!(digest_database(&db), digest_database(&generate(&cfg)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn emission_is_byte_deterministic() {
        let d1 = tmp("det1");
        let d2 = tmp("det2");
        let cfg = GtopdbConfig {
            scale: 2,
            ..Default::default()
        };
        emit_csv(&d1, &cfg).unwrap();
        emit_csv(&d2, &cfg).unwrap();
        for schema in gtopdb_schemas() {
            let f = format!("{}.csv", schema.name);
            assert_eq!(
                std::fs::read(d1.join(&f)).unwrap(),
                std::fs::read(d2.join(&f)).unwrap(),
                "{f}"
            );
        }
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }
}

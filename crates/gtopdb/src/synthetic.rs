//! Abstract synthetic instances for the rewriting-scalability experiments:
//! chain databases, segment views, star queries and noise views.

use citesys_cq::Value;
use citesys_cq::{parse_query, ConjunctiveQuery, ValueType};
use citesys_storage::{Database, RelationSchema, Tuple};

/// A chain database: `E(i, i+1)` for `i in 0..edges`.
pub fn chain_db(edges: usize) -> Database {
    let mut db = Database::new();
    db.create_relation(RelationSchema::from_parts(
        "E",
        &[("A", ValueType::Int), ("B", ValueType::Int)],
        &[],
    ))
    .expect("fresh database");
    for i in 0..edges {
        db.insert(
            "E",
            Tuple::new(vec![Value::Int(i as i64), Value::Int(i as i64 + 1)]),
        )
        .expect("schema-valid");
    }
    db
}

/// The chain query of length `n`:
/// `Q(X0, Xn) :- E(X0, X1), …, E(Xn-1, Xn)`.
pub fn chain_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let body: Vec<String> = (0..n).map(|i| format!("E(X{i}, X{})", i + 1)).collect();
    parse_query(&format!("Q(X0, X{n}) :- {}", body.join(", "))).expect("well-formed chain")
}

/// A segment view of length `k`, named `name`, projecting both endpoints.
pub fn segment_view(name: &str, k: usize) -> ConjunctiveQuery {
    assert!(k >= 1);
    let body: Vec<String> = (0..k).map(|i| format!("E(Y{i}, Y{})", i + 1)).collect();
    parse_query(&format!("{name}(Y0, Y{k}) :- {}", body.join(", "))).expect("well-formed segment")
}

/// `count` copies of the unit segment view (distinct names) — the worst
/// case for the bucket algorithm's cross product (every view lands in every
/// bucket).
pub fn redundant_unit_views(count: usize) -> Vec<ConjunctiveQuery> {
    (0..count)
        .map(|i| segment_view(&format!("U{i}"), 1))
        .collect()
}

/// `count` noise views over predicates that do not occur in chain queries
/// (exercise schema-level pruning).
pub fn noise_views(count: usize) -> Vec<ConjunctiveQuery> {
    (0..count)
        .map(|i| {
            parse_query(&format!("N{i}(A, B) :- Unrelated{i}(A, B)")).expect("well-formed noise")
        })
        .collect()
}

/// `count` *trap* views over the paper's schema: each matches the `Family`
/// subgoal of a query (so, without schema-level pruning, it enters buckets
/// and burns an expansion + equivalence check) but joins in `Committee`,
/// which makes it unusable for any equivalent rewriting of a query that
/// does not mention `Committee`. Schema-level pruning rejects them in O(1)
/// per view — this is what experiment E5 measures.
pub fn trap_views(count: usize) -> Vec<ConjunctiveQuery> {
    (0..count)
        .map(|i| {
            parse_query(&format!(
                "T{i}(FID, FName, Desc) :- Family(FID, FName, Desc), Committee(FID, P)"
            ))
            .expect("well-formed trap")
        })
        .collect()
}

/// A star query: center joined to `arms` leaf relations:
/// `Q(C, L1, …, Lk) :- Hub(C), Spoke1(C, L1), …, Spokek(C, Lk)`.
pub fn star_query(arms: usize) -> ConjunctiveQuery {
    assert!(arms >= 1);
    let mut body = vec!["Hub(C)".to_string()];
    let mut head = vec!["C".to_string()];
    for i in 1..=arms {
        body.push(format!("Spoke{i}(C, L{i})"));
        head.push(format!("L{i}"));
    }
    parse_query(&format!("Q({}) :- {}", head.join(", "), body.join(", ")))
        .expect("well-formed star")
}

/// Identity views for a star schema: one per relation used by
/// [`star_query`].
pub fn star_views(arms: usize) -> Vec<ConjunctiveQuery> {
    let mut out = vec![parse_query("VHub(C) :- Hub(C)").expect("well-formed")];
    for i in 1..=arms {
        out.push(parse_query(&format!("VSpoke{i}(C, L) :- Spoke{i}(C, L)")).expect("well-formed"));
    }
    out
}

/// A star database with `centers` hub rows and `fanout` leaves per spoke.
pub fn star_db(arms: usize, centers: usize, fanout: usize) -> Database {
    let mut db = Database::new();
    db.create_relation(RelationSchema::from_parts(
        "Hub",
        &[("C", ValueType::Int)],
        &[],
    ))
    .expect("fresh");
    for i in 1..=arms {
        db.create_relation(RelationSchema::from_parts(
            format!("Spoke{i}"),
            &[("C", ValueType::Int), ("L", ValueType::Int)],
            &[],
        ))
        .expect("fresh");
    }
    for c in 0..centers {
        db.insert("Hub", Tuple::new(vec![Value::Int(c as i64)]))
            .expect("valid");
        for i in 1..=arms {
            for l in 0..fanout {
                db.insert(
                    &format!("Spoke{i}"),
                    Tuple::new(vec![Value::Int(c as i64), Value::Int(l as i64)]),
                )
                .expect("valid");
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_rewrite::{rewrite, RewriteOptions, ViewSet};
    use citesys_storage::evaluate;

    #[test]
    fn chain_db_and_query_agree() {
        let db = chain_db(10);
        let q = chain_query(3);
        let a = evaluate(&db, &q).unwrap();
        // Paths of length 3 in a 10-edge chain: 0..=7 start points.
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn segment_views_rewrite_chains() {
        let q = chain_query(4);
        let views = ViewSet::new(vec![segment_view("S2", 2)]).unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].query.body.len(), 2);
    }

    #[test]
    fn redundant_views_multiply_rewritings() {
        let q = chain_query(2);
        let views = ViewSet::new(redundant_unit_views(3)).unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        // 3 choices per subgoal ⇒ 9 combinations, all equivalent.
        assert_eq!(out.rewritings.len(), 9);
    }

    #[test]
    fn star_query_rewrites_with_identity_views() {
        let q = star_query(3);
        let views = ViewSet::new(star_views(3)).unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].query.body.len(), 4);
    }

    #[test]
    fn star_db_cardinalities() {
        let db = star_db(2, 3, 4);
        assert_eq!(db.relation("Hub").unwrap().len(), 3);
        assert_eq!(db.relation("Spoke1").unwrap().len(), 12);
        let a = evaluate(&db, &star_query(2)).unwrap();
        assert_eq!(a.len(), 3 * 4 * 4);
    }

    #[test]
    fn noise_views_are_unrelated() {
        let q = chain_query(2);
        let mut views = vec![segment_view("S1", 1)];
        views.extend(noise_views(5));
        let set = ViewSet::new(views).unwrap();
        let out = rewrite(&q, &set, &RewriteOptions::default()).unwrap();
        assert_eq!(out.stats.views_pruned, 5);
        assert_eq!(out.rewritings.len(), 1);
    }
}

//! An eagle-i-style RDF substrate, encoded relationally (§3 *Other
//! models*): resources typed by an ontology class, with per-class citation
//! views.
//!
//! eagle-i is an RDF dataset for sharing research resources (cell lines,
//! software, antibodies…). We encode triples as a single relation
//! `Triple(S, P, O)`; class membership uses predicate `type`. The paper's
//! observation — "the citation depends on the class of resource" — becomes
//! one parameterized citation view per class, and the experiment E10 checks
//! conjunctive citation views work unchanged over this encoding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use citesys_core::{CitationFunction, CitationQuery, CitationRegistry, CitationView};
use citesys_cq::{parse_query, Value, ValueType};
use citesys_storage::{Database, RelationSchema, Tuple};

/// Resource classes modeled after eagle-i's ontology.
pub const CLASSES: [&str; 4] = ["CellLine", "Software", "Antibody", "Protocol"];

/// Generator configuration for the triple store.
#[derive(Clone, Copy, Debug)]
pub struct EagleIConfig {
    /// Resources per class.
    pub resources_per_class: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EagleIConfig {
    fn default() -> Self {
        EagleIConfig {
            resources_per_class: 16,
            seed: 0xEA61E,
        }
    }
}

/// The triple relation schema.
pub fn triple_schema() -> RelationSchema {
    RelationSchema::from_parts(
        "Triple",
        &[
            ("S", ValueType::Text),
            ("P", ValueType::Text),
            ("O", ValueType::Text),
        ],
        &[],
    )
}

/// Generates the triple store: each resource gets `type`, `label` and
/// `provider` triples.
pub fn generate(cfg: &EagleIConfig) -> Database {
    let mut db = Database::new();
    db.create_relation(triple_schema()).expect("fresh database");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for class in CLASSES {
        for i in 0..cfg.resources_per_class {
            let s = format!("res:{}/{}", class.to_lowercase(), i);
            let rows = [
                (s.clone(), "type".to_string(), class.to_string()),
                (s.clone(), "label".to_string(), format!("{class} #{i}")),
                (
                    s.clone(),
                    "provider".to_string(),
                    format!("Lab {}", rng.gen_range(1..10)),
                ),
            ];
            for (subj, pred, obj) in rows {
                db.insert(
                    "Triple",
                    Tuple::new(vec![Value::from(subj), Value::from(pred), Value::from(obj)]),
                )
                .expect("schema-valid");
            }
        }
    }
    db
}

/// One parameterized citation view per resource class: the view exposes the
/// labelled members of the class, and the citation query pulls the
/// resource's provider — the class determines the citation, as the paper
/// observes for RDF systems.
pub fn class_registry() -> CitationRegistry {
    let mut reg = CitationRegistry::new();
    for class in CLASSES {
        let view = parse_query(&format!(
            "λ S. V{class}(S, N) :- Triple(S, 'type', '{class}'), Triple(S, 'label', N)"
        ))
        .expect("well-formed class view");
        let citation = parse_query(&format!(
            "λ S. CV{class}(S, Org) :- Triple(S, 'provider', Org)"
        ))
        .expect("well-formed class citation");
        reg.add(
            CitationView::new(
                view,
                vec![CitationQuery::new(citation)],
                CitationFunction::new()
                    .with_static("database", "eagle-i")
                    .with_static("class", class),
            )
            .expect("class view well-formed"),
        )
        .expect("unique class name");
    }
    reg
}

/// The class-extent query: labels of all resources of `class`.
pub fn class_query(class: &str) -> citesys_cq::ConjunctiveQuery {
    parse_query(&format!(
        "Q(S, N) :- Triple(S, 'type', '{class}'), Triple(S, 'label', N)"
    ))
    .expect("well-formed class query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_core::{CitationMode, CitationService, EngineOptions};
    use citesys_storage::evaluate;

    #[test]
    fn triple_store_generates() {
        let db = generate(&EagleIConfig::default());
        // 4 classes × 16 resources × 3 triples.
        assert_eq!(db.relation("Triple").unwrap().len(), 4 * 16 * 3);
    }

    #[test]
    fn class_query_selects_class_members() {
        let db = generate(&EagleIConfig::default());
        let a = evaluate(&db, &class_query("CellLine")).unwrap();
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn class_views_cite_rdf_queries() {
        let db = generate(&EagleIConfig {
            resources_per_class: 4,
            ..Default::default()
        });
        let reg = class_registry();
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(reg.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            })
            .build()
            .unwrap();
        let cited = engine.cite(&class_query("Software")).unwrap();
        assert_eq!(cited.answer.len(), 4);
        // Each tuple's citation is the class view at its own subject.
        for t in &cited.tuples {
            assert_eq!(t.atoms.len(), 1);
            let atom = t.atoms.iter().next().unwrap();
            assert_eq!(atom.view.as_str(), "VSoftware");
            assert_eq!(atom.params.len(), 1);
        }
        // Snippets include provider and the static class field.
        let s = &cited.tuples[0].snippets[0];
        assert!(!s.field("Org").is_empty());
        assert_eq!(s.field("class"), ["Software"]);
    }

    #[test]
    fn cross_class_query_has_no_citation() {
        // A query ignoring `type` cannot be covered by class views.
        let db = generate(&EagleIConfig::default());
        let reg = class_registry();
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(reg.clone())
            .options(EngineOptions::default())
            .build()
            .unwrap();
        let q = parse_query("Q(S, N) :- Triple(S, 'label', N)").unwrap();
        assert!(engine.cite(&q).is_err());
    }
}

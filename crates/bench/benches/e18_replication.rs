//! E18 bench: replication read scale-out — the same client pool spread
//! over a primary plus 0/1/2 WAL-shipping followers, over loopback TCP.
//!
//! Servers and followers are spawned (and caught up) outside the timing
//! loop; each measured closure is pure read traffic. The lag-under-storm
//! observable is in the `repro` table (`repro e18`), which samples the
//! follower's counters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use citesys_bench::e18::{aggregate_cites, spawn_primary, spawn_replicas};

fn bench(c: &mut Criterion) {
    let quick = std::env::var_os("CITESYS_BENCH_QUICK").is_some();
    let families = 16;
    let (clients, rounds) = if quick { (2, 5) } else { (4, 10) };

    let mut group = c.benchmark_group("e18_replica_scaling");
    group.sample_size(10);
    for replicas in [0usize, 1, 2] {
        let (primary, paddr) = spawn_primary(families, replicas, clients);
        let followers = spawn_replicas(&paddr, replicas, clients);
        let mut addrs = vec![paddr];
        addrs.extend(followers.iter().map(|(_, a)| a.clone()));
        group.throughput(Throughput::Elements((clients * rounds) as u64));
        group.bench_with_input(
            BenchmarkId::new("aggregate_cites", replicas),
            &replicas,
            |b, _| {
                // aggregate_cites pre-connects before its own clock, but
                // the bench mean still includes that setup; the repro
                // table (`repro e18`) reports the pure streaming wall.
                b.iter(|| aggregate_cites(&addrs, clients, rounds, families))
            },
        );
        for (server, _) in followers {
            server.stop();
        }
        primary.stop();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

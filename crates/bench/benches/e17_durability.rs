//! E17 bench: the durability layer — WAL-on vs WAL-off commit latency
//! and cold vs warm restart time-to-first-cite.
//!
//! The WAL arm fsyncs every commit before acking, so its numbers are
//! disk-bound by design; the comparison prices the durability contract.
//! The restart arms compare replaying the setup script from scratch
//! against recovering a checkpoint with pre-seeded views and plans.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use citesys_bench::e17::{
    cold_start, commit_stream, durable_interp, mem_interp, prepare_warm_dir, warm_start,
};

fn bench(c: &mut Criterion) {
    let families = 16;
    let commits = 10;

    let mut group = c.benchmark_group("e17_commit_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(commits as u64));
    // Each iteration gets a fresh key range: reusing keys would turn
    // every insert into a set-semantics no-op and every commit into an
    // empty changeset, and the arms would measure nothing.
    group.bench_function("wal_off_memory", |b| {
        let mut interp = mem_interp(families);
        let mut round = 0;
        b.iter(|| {
            round += 1;
            commit_stream(&mut interp, commits, round)
        });
    });
    group.bench_function("wal_on_fsync", |b| {
        let (mut interp, dir) = durable_interp(families, "bench-throughput");
        let mut round = 0;
        b.iter(|| {
            round += 1;
            commit_stream(&mut interp, commits, round)
        });
        drop(interp);
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();

    let mut group = c.benchmark_group("e17_restart");
    group.sample_size(10);
    group.bench_function("cold_script_replay", |b| b.iter(|| cold_start(families)));
    group.bench_function("warm_checkpoint_recovery", |b| {
        let dir = prepare_warm_dir(families, "bench-warm");
        b.iter(|| warm_start(&dir));
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

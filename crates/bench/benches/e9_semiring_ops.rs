//! E9 bench: citation-algebra normalization and polynomial operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use citesys_bench::e9::{binding_sum, poly};
use citesys_provenance::Semiring;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_semiring_ops");
    group.sample_size(20);
    for n in [100usize, 1_000, 5_000] {
        let raw = binding_sum(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("normalize", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(&raw).normalize())
        });
        let normalized = raw.normalize();
        group.bench_with_input(BenchmarkId::new("estimated_size", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(&normalized).estimated_size())
        });
    }
    for n in [32usize, 128] {
        let p = poly(n);
        let q = poly(n / 2 + 1);
        group.bench_with_input(BenchmarkId::new("poly_mul", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(&p).mul(std::hint::black_box(&q)))
        });
        let prod = p.mul(&q);
        group.bench_with_input(BenchmarkId::new("poly_eval_counting", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(&prod).eval_in::<u64>(&|_| 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E14 bench: concurrent service throughput — N threads cloning one warm
//! service over the sharded plan cache, plus a mixed cite/update workload
//! where delta-maintained view caches keep materializations warm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use std::sync::Arc;

use citesys_bench::e13::parameterized_workload;
use citesys_bench::e14::{concurrent_cites, mixed_cite_update};
use citesys_core::{CitationMode, CitationService, EngineOptions};
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};

fn bench(c: &mut Criterion) {
    let cfg = GtopdbConfig {
        scale: 2,
        ..Default::default()
    };
    let db = generate(&cfg).into_shared();
    let registry = Arc::new(full_registry());
    let workload = parameterized_workload(&cfg, 16);

    // One warm service shared (cloned) by every thread: plans and views
    // are cached before measurement so the arms time the concurrent hot
    // path, not the first search.
    let service = CitationService::builder()
        .database(Arc::clone(&db))
        .registry(Arc::clone(&registry))
        .options(EngineOptions {
            mode: CitationMode::CostPruned,
            ..Default::default()
        })
        .build()
        .expect("complete builder");
    for q in &workload {
        service.cite(q).expect("warmup");
    }

    let mut group = c.benchmark_group("e14_concurrent_service");
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        // Total cites per iteration grows with the thread count, so equal
        // per-iteration times mean linear scaling.
        group.throughput(Throughput::Elements((threads * workload.len()) as u64));
        group.bench_with_input(
            BenchmarkId::new("cached_cites", threads),
            &threads,
            |b, &n| b.iter(|| concurrent_cites(&service, std::hint::black_box(&workload), n, 1)),
        );
    }

    group.throughput(Throughput::Elements(workload.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("mixed_cite_update", "4r+4w"),
        &(),
        |b, ()| b.iter(|| mixed_cite_update(&db, &registry, std::hint::black_box(&workload), 4, 4)),
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E4 bench: citation computation under different +R policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use citesys_core::{CitationMode, CitationService, EngineOptions, PolicySet, RewritePolicy};
use citesys_gtopdb::workload::q_family_intro;
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};

fn bench(c: &mut Criterion) {
    let registry = full_registry();
    let q = q_family_intro();
    let db = generate(&GtopdbConfig {
        scale: 4,
        dup_name_rate: 0.2,
        ..Default::default()
    });
    let mut group = c.benchmark_group("e4_citation_size_policy");
    group.sample_size(20);
    for (label, policy) in [
        ("min_size", RewritePolicy::MinSize),
        ("union", RewritePolicy::Union),
        ("first", RewritePolicy::First),
    ] {
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                policies: PolicySet {
                    rewritings: policy,
                    ..Default::default()
                },
                ..Default::default()
            })
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("policy", label), &label, |b, _| {
            b.iter(|| engine.cite(std::hint::black_box(&q)).expect("coverable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E6 bench: snapshot materialization and citation verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use citesys_bench::e6::build_store;
use citesys_core::{cite_at_version, verify, EngineOptions};
use citesys_gtopdb::full_registry;
use citesys_gtopdb::workload::q_family_intro;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_fixity");
    group.sample_size(20);
    for versions in [4usize, 16, 64] {
        let store = build_store(versions, 8);
        let latest = store.latest_version();
        // Warm access benefits from the snapshot cache; this measures the
        // steady-state cost a citation service would see.
        group.bench_with_input(
            BenchmarkId::new("snapshot_warm", versions),
            &versions,
            |b, _| b.iter(|| store.snapshot(std::hint::black_box(latest)).expect("known")),
        );
        let registry = full_registry();
        let (_, token) = cite_at_version(
            &store,
            &registry,
            EngineOptions::default(),
            1,
            &q_family_intro(),
        )
        .expect("coverable");
        group.bench_with_input(BenchmarkId::new("verify", versions), &versions, |b, _| {
            b.iter(|| verify(&store, std::hint::black_box(&token)).expect("verifies"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E21 bench: observability overhead on the warm-plan-cache cite path.
//!
//! Three arms of the identical workload: latency timings off (the
//! always-on lock-free counters are the only cost), timings on (each
//! cite takes `Instant::now` readings per stage and feeds fixed-bucket
//! histograms), and timings on with the slow-cite log armed at a
//! threshold that never fires. The acceptance criterion is ≤5% p99
//! overhead for the timings-on arm over the timings-off baseline.

use criterion::{criterion_group, criterion_main, Criterion};

use citesys_bench::e21::{cite_once, setup_interp};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e21_cite_observability");
    for (label, timings, slow) in [
        ("timings_off", false, false),
        ("timings_on", true, false),
        ("timings_on_slow_cite_armed", true, true),
    ] {
        group.bench_function(label, |b| {
            let mut interp = setup_interp(timings, slow);
            b.iter(|| cite_once(&mut interp));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E19 bench: pipelined vs synchronous insert throughput on the
//! event-driven transport, at the acceptance criterion's depth of 64.
//!
//! The server is spawned (and its dataset loaded) outside the timing
//! loop; each measured closure is pure wire traffic on one connection.
//! The connection-scale and tail-latency arms live in the `repro`
//! table (`repro e19`) — they are one-shot observations, not
//! steady-state timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use citesys_bench::e19::{insert_throughput, spawn_event_server, PIPELINE_DEPTH};

fn bench(c: &mut Criterion) {
    let quick = std::env::var_os("CITESYS_BENCH_QUICK").is_some();
    let rounds = if quick { 2 } else { 6 };
    let (server, addr) = spawn_event_server(16, 64);

    let mut group = c.benchmark_group("e19_pipeline_depth_64");
    group.sample_size(10);
    group.throughput(Throughput::Elements((PIPELINE_DEPTH * rounds) as u64));
    for (label, pipelined, key_base) in
        [("sync", false, 10_000_000), ("pipelined", true, 20_000_000)]
    {
        group.bench_with_input(
            BenchmarkId::new("inserts", label),
            &pipelined,
            |b, &pipelined| {
                b.iter(|| insert_throughput(&addr, PIPELINE_DEPTH, rounds, pipelined, key_base))
            },
        );
    }
    group.finish();
    server.stop();
}

criterion_group!(benches, bench);
criterion_main!(benches);

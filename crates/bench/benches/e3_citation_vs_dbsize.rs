//! E3 bench: citation cost vs database scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use citesys_core::{CitationMode, CitationService, EngineOptions};
use citesys_gtopdb::workload::q_family_intro;
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};

fn bench(c: &mut Criterion) {
    let registry = full_registry();
    let q = q_family_intro();
    let mut group = c.benchmark_group("e3_citation_vs_dbsize");
    group.sample_size(20);
    for scale in [1usize, 2, 4, 8] {
        let db = generate(&GtopdbConfig {
            scale,
            dup_name_rate: 0.25,
            ..Default::default()
        });
        group.throughput(Throughput::Elements(db.total_tuples() as u64));
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            })
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("formal", scale), &scale, |b, _| {
            b.iter(|| engine.cite(std::hint::black_box(&q)).expect("coverable"))
        });
        let pruned = CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode: CitationMode::CostPruned,
                ..Default::default()
            })
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("cost_pruned", scale), &scale, |b, _| {
            b.iter(|| pruned.cite(std::hint::black_box(&q)).expect("coverable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E20 bench: time-travel cite latency by history depth and anchor
//! spacing.
//!
//! Each arm reopens a stormed data dir (so the op log starts at the
//! recovered checkpoint) and cites `@ version` at a fixed depth: the
//! latest version is an in-memory snapshot, the oldest resolves through
//! a retained anchor plus a bounded WAL-segment replay. Tight spacing
//! should hold the deep-history latency close to the warm path.

use criterion::{criterion_group, criterion_main, Criterion};

use citesys_bench::e20::{cite_at, reopen, storm_dir};

fn bench(c: &mut Criterion) {
    let commits = 16;

    for every in [2u64, 8] {
        let (dir, latest) = storm_dir(&format!("bench-sweep-{every}"), commits, every);
        let mut group = c.benchmark_group(format!("e20_at_version_spacing_{every}"));
        group.sample_size(10);
        for (label, version) in [("latest", latest), ("oldest", 1)] {
            group.bench_function(label, |b| {
                let mut interp = reopen(&dir);
                b.iter(|| cite_at(&mut interp, version));
            });
        }
        group.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

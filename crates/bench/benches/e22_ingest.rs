//! E22 bench: streaming bulk-ingest throughput vs batch size.
//!
//! Each arm ingests the same emitted GtoPdb CSV dump into a fresh
//! in-memory store with a different tuples-per-commit batch size. Small
//! batches pay the commit path per handful of tuples; large batches
//! amortize it against a bigger in-flight buffer (the memory side of
//! the trade is reported by the repro table's peak-buffered column).

use criterion::{criterion_group, criterion_main, Criterion};

use citesys_bench::e22::{config, emit_dump, ingest_once};

fn bench(c: &mut Criterion) {
    let quick = std::env::var_os("CITESYS_BENCH_QUICK").is_some();
    let (scale, batches) = config(quick);
    let (dump, _records) = emit_dump(scale);
    let mut group = c.benchmark_group("e22_ingest_throughput");
    group.sample_size(10);
    for batch in batches {
        group.bench_function(format!("batch_{batch}"), |b| {
            b.iter(|| ingest_once(&dump, batch));
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dump);
}

criterion_group!(benches, bench);
criterion_main!(benches);

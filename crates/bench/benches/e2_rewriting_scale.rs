//! E2 bench: bucket vs MiniCon rewriting on chain queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use citesys_gtopdb::synthetic::{chain_query, segment_view};
use citesys_rewrite::{rewrite, Algorithm, RewriteOptions, ViewSet};

fn bench(c: &mut Criterion) {
    let q = chain_query(6);
    let mut group = c.benchmark_group("e2_rewriting_scale");
    group.sample_size(10);
    for k in [1usize, 2, 3] {
        let views: Vec<_> = (0..k)
            .map(|i| segment_view(&format!("Seg{i}"), 2))
            .collect();
        let set = ViewSet::new(views).expect("distinct names");
        for (label, alg) in [
            ("bucket", Algorithm::Bucket),
            ("minicon", Algorithm::MiniCon),
        ] {
            let opts = RewriteOptions {
                algorithm: alg,
                max_candidates: 1_000_000,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| rewrite(std::hint::black_box(&q), &set, &opts).expect("within budget"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

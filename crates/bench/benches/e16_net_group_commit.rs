//! E16 bench: the TCP front end — N-client cite round-trip throughput
//! and group-commit vs per-transaction-commit transaction latency.
//!
//! Each measured closure talks to a warm server spawned outside the
//! timing loop over loopback TCP, so the numbers include real protocol
//! framing and socket round-trips. The swap-count comparison (the
//! group-commit headline) is in the `repro` table (`repro e16`), which
//! reads the server's counters.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use citesys_bench::e16::{commit_storm, concurrent_net_cites, spawn_loaded};

fn bench(c: &mut Criterion) {
    let families = 16;
    let rounds = 10;

    let mut group = c.benchmark_group("e16_net_cites");
    group.sample_size(10);
    let (server, addr) = spawn_loaded(Duration::from_millis(2), families);
    for clients in [1, 2, 4] {
        group.throughput(Throughput::Elements((clients * rounds) as u64));
        group.bench_with_input(
            BenchmarkId::new("cite_rtt", clients),
            &clients,
            |b, &clients| b.iter(|| concurrent_net_cites(&addr, clients, rounds, families)),
        );
    }
    server.stop();
    group.finish();

    let mut group = c.benchmark_group("e16_group_commit");
    group.sample_size(10);
    for (label, window) in [
        ("grouped_5ms", Duration::from_millis(5)),
        ("windowless", Duration::ZERO),
    ] {
        let (server, addr) = spawn_loaded(window, families);
        group.throughput(Throughput::Elements(8));
        group.bench_function(label, |b| b.iter(|| commit_storm(&server, &addr, 4, 2)));
        server.stop();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

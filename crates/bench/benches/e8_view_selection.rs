//! E8 bench: greedy vs exhaustive view selection.

use criterion::{criterion_group, criterion_main, Criterion};

use citesys_core::{exhaustive_select, greedy_select};
use citesys_gtopdb::workload::{candidate_views, standard_workload};
use citesys_rewrite::RewriteOptions;

fn bench(c: &mut Criterion) {
    let workload = standard_workload();
    let candidates = candidate_views();
    let opts = RewriteOptions::default();
    let mut group = c.benchmark_group("e8_view_selection");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| {
            let sel = greedy_select(
                std::hint::black_box(&workload),
                std::hint::black_box(&candidates),
                &opts,
            );
            assert!(sel.covers_all());
            sel
        })
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            exhaustive_select(
                std::hint::black_box(&workload),
                std::hint::black_box(&candidates),
                &opts,
            )
            .expect("coverable")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E7 bench: incremental citation maintenance vs recompute-all.

use criterion::{criterion_group, criterion_main, Criterion};

use citesys_bench::e7::workload;
use citesys_core::{CitationService, EngineOptions, IncrementalEngine};
use citesys_cq::Value;
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};
use citesys_storage::Tuple;

fn delta(i: i64) -> Tuple {
    Tuple::new(vec![
        Value::Int(5_000_000 + i),
        Value::from(format!("bench-ligand-{i}")),
        Value::from("peptide"),
    ])
}

fn bench(c: &mut Criterion) {
    let cfg = GtopdbConfig {
        scale: 2,
        ..Default::default()
    };
    let registry = full_registry();
    let queries = workload();
    let mut group = c.benchmark_group("e7_evolution");
    group.sample_size(10);

    group.bench_function("incremental", |b| {
        let mut i = 0i64;
        let mut inc =
            IncrementalEngine::new(generate(&cfg), registry.clone(), EngineOptions::default());
        for q in &queries {
            inc.cite(q).expect("coverable");
        }
        b.iter(|| {
            inc.insert("Ligand", delta(i)).expect("valid");
            i += 1;
            for q in &queries {
                inc.cite(q).expect("coverable");
            }
        })
    });

    group.bench_function("recompute_all", |b| {
        let mut i = 0i64;
        let mut db = generate(&cfg);
        b.iter(|| {
            db.insert("Ligand", delta(i)).expect("valid");
            i += 1;
            let engine = CitationService::builder()
                .database(db.clone())
                .registry(registry.clone())
                .options(EngineOptions::default())
                .build()
                .unwrap();
            for q in &queries {
                engine.cite(q).expect("coverable");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

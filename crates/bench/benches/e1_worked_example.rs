//! E1 bench: end-to-end citation of the paper's worked example.

use criterion::{criterion_group, criterion_main, Criterion};

use citesys_core::paper;
use citesys_core::{CitationMode, CitationService, EngineOptions};

fn bench(c: &mut Criterion) {
    let db = paper::paper_database();
    let registry = paper::paper_registry();
    let q = paper::paper_query();

    let mut group = c.benchmark_group("e1_worked_example");
    group.sample_size(30);
    for (label, mode) in [
        ("formal", CitationMode::Formal),
        ("cost_pruned", CitationMode::CostPruned),
    ] {
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode,
                ..Default::default()
            })
            .build()
            .unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let cited = engine.cite(std::hint::black_box(&q)).expect("coverable");
                assert_eq!(cited.tuples[0].atoms.len(), 2);
                cited
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

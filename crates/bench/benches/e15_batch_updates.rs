//! E15 bench: transactional batch updates vs single-tuple swaps, and
//! reader throughput over the lock-free published-snapshot view cache vs
//! an exclusive-lock baseline.
//!
//! Each update arm constructs a fresh warm engine inside the measured
//! closure (the compat criterion harness has no `iter_batched`); both
//! arms pay the identical setup, so the measured gap is the update path.
//! The detailed apples-to-apples comparison — including the
//! full-recompute arm — is the `repro` table (`repro e15`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use citesys_bench::e13::parameterized_workload;
use citesys_bench::e14::concurrent_cites;
use citesys_bench::e15::{config, locked_cites, release_changeset, warm_engine};
use citesys_storage::Op;

fn bench(c: &mut Criterion) {
    let quick = std::env::var_os("CITESYS_BENCH_QUICK").is_some();
    let (cfg, revised) = config(true); // bench always uses the small config
    let workload = parameterized_workload(&cfg, 6);
    let changes = release_changeset(revised);

    let mut group = c.benchmark_group("e15_batch_updates");
    group.sample_size(10);

    group.throughput(Throughput::Elements(changes.len() as u64));
    group.bench_function("release_as_one_batch", |b| {
        b.iter(|| {
            let mut engine = warm_engine(&cfg, &workload);
            engine.apply(&changes).expect("release applies");
            engine
        })
    });
    group.bench_function("release_as_single_swaps", |b| {
        b.iter(|| {
            let mut engine = warm_engine(&cfg, &workload);
            for op in changes.ops() {
                match op {
                    Op::Insert(rel, t) => {
                        engine.insert(rel.as_str(), t.clone()).expect("insertable");
                    }
                    Op::Delete(rel, t) => {
                        engine.delete(rel.as_str(), t).expect("deletable");
                    }
                }
            }
            engine
        })
    });

    // Reader throughput: lock-free published-snapshot path vs taking an
    // exclusive lock around every cite.
    let engine = warm_engine(&cfg, &workload);
    let service = engine.snapshot_service();
    let rounds = if quick { 1 } else { 4 };
    for threads in [1usize, 4] {
        group.throughput(Throughput::Elements(
            (threads * rounds * workload.len()) as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("lockfree_readers", threads),
            &threads,
            |b, &threads| b.iter(|| concurrent_cites(&service, &workload, threads, rounds)),
        );
        group.bench_with_input(
            BenchmarkId::new("locked_readers", threads),
            &threads,
            |b, &threads| b.iter(|| locked_cites(&service, &workload, threads, rounds)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

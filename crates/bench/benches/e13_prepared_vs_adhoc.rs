//! E13 bench: amortized prepared-query citation vs per-call rewriting on
//! the GtoPdb workload (the service plan cache's headline number).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::Arc;

use citesys_bench::e13::parameterized_workload;
use citesys_core::{CitationMode, CitationService, EngineOptions};
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};

fn bench(c: &mut Criterion) {
    let cfg = GtopdbConfig {
        scale: 2,
        ..Default::default()
    };
    let db = generate(&cfg).into_shared();
    let registry = Arc::new(full_registry());
    let workload = parameterized_workload(&cfg, 16);
    // Arc clones only — the ad-hoc arm times the search, not setup.
    let build = || {
        CitationService::builder()
            .database(Arc::clone(&db))
            .registry(Arc::clone(&registry))
            .options(EngineOptions {
                mode: CitationMode::CostPruned,
                ..Default::default()
            })
            .build()
            .expect("complete builder")
    };

    let mut group = c.benchmark_group("e13_prepared_vs_adhoc");
    group.sample_size(10);

    // Ad-hoc: every cite pays for the rewriting search (cold service).
    group.bench_with_input(BenchmarkId::new("adhoc", workload.len()), &(), |b, ()| {
        b.iter(|| {
            for q in &workload {
                build().cite(std::hint::black_box(q)).expect("coverable");
            }
        })
    });

    // Prepared: one warm service; plans come from the cache.
    let service = build();
    for q in &workload {
        service.cite(q).expect("warmup");
    }
    group.bench_with_input(
        BenchmarkId::new("prepared", workload.len()),
        &(),
        |b, ()| {
            b.iter(|| {
                for r in service.cite_batch(std::hint::black_box(&workload)) {
                    r.expect("coverable");
                }
            })
        },
    );

    // Prepared handle: zero search by construction.
    let prepared = service.prepare(&workload[0]).expect("coverable");
    group.bench_with_input(BenchmarkId::new("prepared_handle", 1), &(), |b, ()| {
        b.iter(|| prepared.execute().expect("coverable"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

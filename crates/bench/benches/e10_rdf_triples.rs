//! E10 bench: class-based citations over the eagle-i triple store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use citesys_core::{CitationMode, CitationService, EngineOptions};
use citesys_gtopdb::eaglei::{class_query, class_registry, generate, EagleIConfig};

fn bench(c: &mut Criterion) {
    let registry = class_registry();
    let q = class_query("CellLine");
    let mut group = c.benchmark_group("e10_rdf_triples");
    group.sample_size(20);
    for n in [8usize, 32, 128] {
        let db = generate(&EagleIConfig {
            resources_per_class: n,
            ..Default::default()
        });
        group.throughput(Throughput::Elements(n as u64));
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            })
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("cite_class", n), &n, |b, _| {
            b.iter(|| engine.cite(std::hint::black_box(&q)).expect("coverable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

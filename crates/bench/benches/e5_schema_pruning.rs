//! E5 bench: schema-level pruning vs full enumeration with trap views.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use citesys_cq::parse_query;
use citesys_gtopdb::synthetic::trap_views;
use citesys_rewrite::{rewrite, RewriteOptions, ViewSet};

fn bench(c: &mut Criterion) {
    let q = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        .expect("well-formed");
    let mut group = c.benchmark_group("e5_schema_pruning");
    group.sample_size(20);
    for m in [0usize, 16, 64] {
        let mut views = vec![
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)").unwrap(),
        ];
        views.extend(trap_views(m));
        let set = ViewSet::new(views).expect("distinct names");
        for (label, prune) in [("pruned", true), ("no_prune", false)] {
            let opts = RewriteOptions {
                prune,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
                b.iter(|| rewrite(std::hint::black_box(&q), &set, &opts).expect("ok"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Minimal result-table model with markdown rendering.

use std::fmt;
use std::time::{Duration, Instant};

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "E2".
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The qualitative shape this table is expected to show (checked
    /// against the paper's claims in EXPERIMENTS.md).
    pub expectation: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (pre-rendered).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders the table as GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("*Expected shape:* {}\n\n", self.expectation));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.markdown())
    }
}

/// Times a closure, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Renders a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Renders a duration as fractional microseconds.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let t = Table {
            id: "E0",
            title: "demo",
            expectation: "flat",
            headers: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let md = t.markdown();
        assert!(md.contains("## E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms(d).parse::<f64>().unwrap() >= 0.0);
        assert!(us(d).parse::<f64>().unwrap() >= 0.0);
    }
}

//! E22 — streaming bulk ingestion: throughput vs batch size, the
//! reader's peak buffered memory, and time-to-first-cite.
//!
//! A GtoPdb-shaped CSV dump is emitted once, then ingested through the
//! interpreter's `ingest` command at several batch sizes. Each batch is
//! one committed changeset, so small batches pay commit overhead per
//! tuple while large batches amortize it — at the price of a bigger
//! in-flight buffer. The reader's high-water mark
//! ([`CsvReader::peak_buffered_bytes`]) is measured per batch size over
//! the largest dump file to show the memory/throughput trade directly,
//! and a first cite after each load prices how quickly ingested data
//! becomes citable.

use std::path::{Path, PathBuf};
use std::time::Duration;

use citesys_ingest::{CsvReader, IngestConfig};
use citesys_net::script::Interpreter;

use crate::table::{ms, timed, us, Table};

/// Bench sizing: (gtopdb scale, batch sizes to sweep).
pub fn config(quick: bool) -> (usize, Vec<usize>) {
    if quick {
        (4, vec![100, 1_000])
    } else {
        (64, vec![100, 1_000, 10_000, 50_000])
    }
}

/// Emits the dump once into a per-process temp dir and returns it.
pub fn emit_dump(scale: usize) -> (PathBuf, u64) {
    let dir = std::env::temp_dir()
        .join("citesys-e22")
        .join(format!("scale{scale}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir dump dir");
    let cfg = citesys_gtopdb::GtopdbConfig {
        scale,
        ..Default::default()
    };
    let stats = citesys_gtopdb::emit_csv(&dir, &cfg).expect("emit dump");
    (dir, stats.records)
}

/// Ingests the dump into a fresh in-memory interpreter at `batch`
/// tuples per commit; returns the interpreter for the follow-up cite.
pub fn ingest_once(dump: &Path, batch: usize) -> (Interpreter, Duration) {
    let mut interp = Interpreter::new();
    let line = format!("ingest '{}' as e22 batch {batch}", dump.display());
    let (out, wall) = timed(|| interp.run_session_line(&line).expect("ingest").output);
    assert!(out.contains("ingested "), "{out}");
    (interp, wall)
}

/// First cite over the freshly ingested Family relation (plan search +
/// view registration included — the cold cost a user sees after a bulk
/// load).
pub fn first_cite(interp: &mut Interpreter) -> Duration {
    interp
        .run_session_line("view VF(FID, N, D) :- Family(FID, N, D) | cite CF(S) :- S = 'GtoPdb'")
        .expect("view");
    let (out, wall) = timed(|| {
        interp
            .run_session_line("cite Q(N) :- Family(F, N, D)")
            .expect("cite")
            .output
    });
    assert!(out.contains("answer tuple(s)"), "{out}");
    wall
}

/// Streams the largest dump file through a bare [`CsvReader`] at
/// `batch` to read the buffered-memory high-water mark.
fn peak_buffered(dump: &Path, batch: usize) -> usize {
    let mut largest: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dump).expect("read dump dir") {
        let entry = entry.expect("entry");
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "csv") {
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if largest.as_ref().is_none_or(|(l, _)| len > *l) {
                largest = Some((len, path));
            }
        }
    }
    let (_, path) = largest.expect("dump has csv files");
    let cfg = IngestConfig { batch_size: batch };
    let mut r = CsvReader::open_path(&path, "Peak", None, &cfg).expect("open");
    while r.next_batch().expect("batch").is_some() {}
    r.peak_buffered_bytes()
}

/// Builds the E22 table.
pub fn table(quick: bool) -> Table {
    let (scale, batches) = config(quick);
    let (dump, records) = emit_dump(scale);
    let mut rows = Vec::new();
    for batch in batches {
        let (mut interp, wall) = ingest_once(&dump, batch);
        let cite = first_cite(&mut interp);
        let peak = peak_buffered(&dump, batch);
        let throughput = records as f64 / wall.as_secs_f64();
        rows.push(vec![
            batch.to_string(),
            records.to_string(),
            ms(wall),
            format!("{:.0}", throughput),
            format!("{:.1}", peak as f64 / 1024.0),
            us(cite),
        ]);
    }
    let _ = std::fs::remove_dir_all(&dump);
    Table {
        id: "E22",
        title: "streaming bulk ingestion: batch size vs throughput, memory, first cite",
        expectation: "throughput rises with batch size as per-commit overhead amortizes, \
                      then flattens; the reader's peak buffered memory grows linearly \
                      with batch size and stays far below the dump size; first-cite \
                      latency is batch-independent (the plan search dominates)",
        headers: vec![
            "batch (tuples/commit)".into(),
            "records".into(),
            "ingest ms".into(),
            "records/s".into(),
            "peak buffered KB".into(),
            "first cite µs".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_sweep_produces_rows_and_bounded_buffers() {
        // Scale 4 makes the largest dump file (Interaction) several
        // hundred records, enough for batch size to dominate the
        // reader's fixed line/record scratch in the high-water mark.
        let (dump, records) = emit_dump(4);
        assert!(records > 0);
        let (mut interp, _) = ingest_once(&dump, 50);
        let cite = first_cite(&mut interp);
        assert!(!cite.is_zero());
        // A 20-tuple batch buffers far less than the whole largest file.
        let small = peak_buffered(&dump, 20);
        let large = peak_buffered(&dump, 100_000);
        assert!(small < large, "peak {small} !< {large}");
        let _ = std::fs::remove_dir_all(&dump);
    }
}

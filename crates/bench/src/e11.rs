//! E11 — ablation: per-rewriting minimization on/off.
//!
//! DESIGN.md calls out minimization ("the paper asks for *minimal*
//! rewritings") as a design choice worth ablating: redundant view atoms in
//! a rewriting inject spurious citation atoms and slow evaluation, but
//! minimization costs extra equivalence checks. The instance makes the
//! difference visible: the query `Q(X) :- R(X,Y1), …, R(X,Yk)` is
//! semantically a single atom, and the identity view rewriting carries
//! `k` copies until minimization collapses them.

use citesys_cq::{parse_query, ConjunctiveQuery};
use citesys_rewrite::{rewrite, RewriteOptions, ViewSet};

use crate::table::{ms, timed, Table};

/// Builds `Q(X) :- R(X, Y1), …, R(X, Yk)` — k−1 redundant atoms.
pub fn redundant_query(k: usize) -> ConjunctiveQuery {
    let body: Vec<String> = (0..k).map(|i| format!("R(X, Y{i})")).collect();
    parse_query(&format!("Q(X) :- {}", body.join(", "))).expect("well-formed")
}

/// One `(minimize?)` measurement.
pub struct Cell {
    /// Rewritings found.
    pub rewritings: usize,
    /// Largest rewriting body (view atoms) — the citation pollution proxy.
    pub max_body: usize,
    /// Equivalence checks spent.
    pub eq_checks: usize,
    /// Wall time.
    pub time: std::time::Duration,
}

/// Runs with minimization toggled.
pub fn run(k: usize, minimize: bool) -> Cell {
    let q = redundant_query(k);
    let views =
        ViewSet::new(vec![parse_query("V(A, B) :- R(A, B)").expect("ok")]).expect("distinct names");
    let opts = RewriteOptions {
        minimize,
        ..Default::default()
    };
    let (out, time) = timed(|| rewrite(&q, &views, &opts).expect("within budget"));
    Cell {
        rewritings: out.rewritings.len(),
        max_body: out
            .rewritings
            .iter()
            .map(|r| r.query.body.len())
            .max()
            .unwrap_or(0),
        eq_checks: out.stats.equivalence_checks,
        time,
    }
}

/// Builds the E11 table.
pub fn table(quick: bool) -> Table {
    let ks: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4, 5] };
    let mut rows = Vec::new();
    for &k in ks {
        let on = run(k, true);
        let off = run(k, false);
        rows.push(vec![
            k.to_string(),
            on.rewritings.to_string(),
            off.rewritings.to_string(),
            on.max_body.to_string(),
            off.max_body.to_string(),
            on.eq_checks.to_string(),
            off.eq_checks.to_string(),
            ms(on.time),
            ms(off.time),
        ]);
    }
    Table {
        id: "E11",
        title: "Ablation: rewriting minimization on/off (Q with k redundant R-atoms, identity view)",
        expectation: "without minimization the rewriting keeps k view atoms (spurious citations); with it, one atom at the cost of extra equivalence checks",
        headers: vec![
            "redundant k".into(),
            "rewritings (min on)".into(),
            "rewritings (min off)".into(),
            "max body (on)".into(),
            "max body (off)".into(),
            "eq-checks (on)".into(),
            "eq-checks (off)".into(),
            "ms (on)".into(),
            "ms (off)".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimization_collapses_redundant_atoms() {
        let on = run(3, true);
        let off = run(3, false);
        assert_eq!(on.max_body, 1, "minimized to a single view atom");
        assert!(off.max_body >= 2, "unminimized keeps redundant atoms");
        assert!(on.eq_checks > off.eq_checks, "minimization costs checks");
    }
}

//! E15 — transactional batch updates and lock-free snapshot reads.
//!
//! The paper frames citation over a *live* database, so update throughput
//! matters as much as cite latency. This experiment measures the two
//! scaling mechanisms this repo adds for it:
//!
//! * **batch delta maintenance** — a GtoPdb-style release load (K family
//!   intros revised: delete old text, insert new) applied three ways:
//!   as ONE changeset through [`IncrementalEngine::apply`] (one snapshot
//!   swap, one delta application per affected view), as 2K single-tuple
//!   swaps, and as a full view recompute (`with_database`, which drops
//!   the materializations for lazy rebuild). At K ≪ |view| the batch
//!   should beat both.
//! * **lock-free snapshot reads** — reader threads citing one warm
//!   service. The published-snapshot view cache makes a cite's read path
//!   one atomic pointer load; the baseline arm forces every cite through
//!   an exclusive lock (what a mutex-guarded cache would cost), so the
//!   gap at high thread counts is the price of locking the read path.

use std::sync::Mutex;
use std::time::Duration;

use citesys_core::{
    Changeset, CitationMode, CitationService, EngineOptions, IncrementalEngine, ViewCacheStats,
};
use citesys_cq::ConjunctiveQuery;
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};
use citesys_storage::{tuple, Database};

use crate::e13::parameterized_workload;
use crate::e14::concurrent_cites;
use crate::table::{timed, Table};

/// The bench configuration: `scale` sizes the database (|FamilyIntro| =
/// 8·scale), `revised` is K — how many family intros one release load
/// rewrites.
pub fn config(quick: bool) -> (GtopdbConfig, usize) {
    let cfg = GtopdbConfig {
        scale: if quick { 2 } else { 8 },
        ..Default::default()
    };
    let revised = if quick { 4 } else { 16 };
    (cfg, revised)
}

/// A GtoPdb release load as one changeset: families `0..revised` get
/// their intro text replaced (delete the generated row, insert the
/// revision) — 2·`revised` mixed ops netting to `revised` deletes +
/// `revised` inserts, all on `FamilyIntro` (the body of view V3).
pub fn release_changeset(revised: usize) -> Changeset {
    let mut changes = Changeset::new();
    for fid in 0..revised as i64 {
        changes
            .delete(
                "FamilyIntro",
                tuple![fid, format!("Introductory text for family {fid}")],
            )
            .insert(
                "FamilyIntro",
                tuple![fid, format!("Revised introductory text for family {fid}")],
            );
    }
    changes
}

/// A warm incremental engine over a fresh generated database: the whole
/// workload has been cited once, so plans and materializations are hot.
/// Formal mode evaluates every rewriting, guaranteeing V1/V2/V3 are all
/// materialized (the update arms must pay real delta work).
pub fn warm_engine(cfg: &GtopdbConfig, workload: &[ConjunctiveQuery]) -> IncrementalEngine {
    let mut engine = IncrementalEngine::new(
        generate(cfg),
        full_registry(),
        EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        },
    );
    for q in workload {
        engine.cite(q).expect("coverable");
    }
    engine
}

/// Cites the whole workload once through the engine (the post-update
/// validation pass each arm ends with, so all arms finish equally warm).
fn workload_pass(engine: &mut IncrementalEngine, workload: &[ConjunctiveQuery]) -> usize {
    let mut n = 0;
    for q in workload {
        engine.cite(q).expect("coverable");
        n += 1;
    }
    n
}

/// Readers where every cite must take an exclusive lock first — the
/// "without the lock-free handle" baseline. Same workload and clone
/// pattern as [`concurrent_cites`], plus one mutex acquisition per cite.
pub fn locked_cites(
    service: &CitationService,
    workload: &[ConjunctiveQuery],
    threads: usize,
    rounds: usize,
) -> usize {
    let gate = Mutex::new(());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let svc = service.clone();
                let gate = &gate;
                scope.spawn(move || {
                    let mut done = 0usize;
                    for _ in 0..rounds {
                        for q in workload {
                            let _g = gate.lock().expect("not poisoned");
                            svc.cite(q).expect("coverable");
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .sum()
    })
}

fn rate(cites: usize, wall: Duration) -> f64 {
    cites as f64 / wall.as_secs_f64().max(1e-9)
}

fn delta_note(before: ViewCacheStats, after: ViewCacheStats) -> String {
    format!(
        "deltas +{}, mats +{}, drops +{}",
        after.deltas_applied - before.deltas_applied,
        after.materializations - before.materializations,
        after.drops - before.drops,
    )
}

/// Builds the E15 table.
pub fn table(quick: bool) -> Table {
    let (cfg, revised) = config(quick);
    let workload = parameterized_workload(&cfg, if quick { 6 } else { 12 });
    let changes = release_changeset(revised);
    let ops = changes.len();
    let view_rows = cfg.families();
    let mut rows = Vec::new();

    // Arm 1: the whole release as ONE transaction — one snapshot swap.
    let mut batch = warm_engine(&cfg, &workload);
    let before = batch.view_cache_stats();
    let (_, wall_batch) = timed(|| {
        batch.apply(&changes).expect("release applies");
        workload_pass(&mut batch, &workload)
    });
    rows.push(vec![
        format!("batch of {ops} ops (one swap)"),
        crate::table::ms(wall_batch),
        "1 swap".into(),
        delta_note(before, batch.view_cache_stats()),
    ]);

    // Arm 2: the same ops as 2K sequential single-tuple swaps.
    let mut singles = warm_engine(&cfg, &workload);
    let before = singles.view_cache_stats();
    let (_, wall_singles) = timed(|| {
        for op in changes.ops() {
            match op {
                citesys_storage::Op::Insert(rel, t) => {
                    singles.insert(rel.as_str(), t.clone()).expect("insertable");
                }
                citesys_storage::Op::Delete(rel, t) => {
                    singles.delete(rel.as_str(), t).expect("deletable");
                }
            }
        }
        workload_pass(&mut singles, &workload)
    });
    rows.push(vec![
        format!("{ops} single-tuple swaps"),
        crate::table::ms(wall_singles),
        format!("{ops} swaps"),
        delta_note(before, singles.view_cache_stats()),
    ]);

    // Arm 3: full recompute — an arbitrary snapshot swap drops every
    // materialization, and the next workload pass rebuilds them from the
    // base data.
    let recompute = warm_engine(&cfg, &workload);
    let mut db_after = Database::clone(recompute.db());
    changes.apply(&mut db_after).expect("release applies");
    let service = recompute.snapshot_service();
    let before = service.view_cache_stats();
    let (_, wall_recompute) = timed(|| {
        let cold = service.with_database(db_after);
        let mut n = 0;
        for q in &workload {
            cold.cite(q).expect("coverable");
            n += 1;
        }
        n
    });
    rows.push(vec![
        format!("full recompute ({revised} of {view_rows} intros changed)"),
        crate::table::ms(wall_recompute),
        "1 swap".into(),
        delta_note(before, service.view_cache_stats()),
    ]);

    // Reader scaling over the lock-free published-snapshot handle, vs a
    // baseline that takes an exclusive lock per cite.
    let reader_engine = warm_engine(&cfg, &workload);
    let service = reader_engine.snapshot_service();
    let rounds = if quick { 8 } else { 24 };
    let mut base_rate = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let (cites, wall) = timed(|| concurrent_cites(&service, &workload, threads, rounds));
        let r = rate(cites, wall);
        if threads == 1 {
            base_rate = r;
        }
        rows.push(vec![
            format!("lock-free readers × {threads}"),
            crate::table::ms(wall),
            format!("{:.0} cites/s", r),
            format!("{:.2}× vs 1 thread", r / base_rate.max(1e-9)),
        ]);
    }
    let (cites, wall) = timed(|| locked_cites(&service, &workload, 4, rounds));
    let r = rate(cites, wall);
    rows.push(vec![
        "exclusive-lock readers × 4 (baseline)".into(),
        crate::table::ms(wall),
        format!("{:.0} cites/s", r),
        format!("{:.2}× vs 1 lock-free thread", r / base_rate.max(1e-9)),
    ]);

    Table {
        id: "E15",
        title: "transactional batch updates: one swap beats K swaps and recompute; readers scale lock-free",
        expectation: "the K-op batch completes in one snapshot swap, faster than K single-tuple \
                      swaps and than a full view recompute at K ≪ |view| (clearest at full size; \
                      sub-ms quick-mode walls are noisy); reader throughput scales across \
                      threads on the lock-free published-snapshot path and the exclusive-lock \
                      baseline trails it (both flat on a single-core host)",
        headers: vec![
            "configuration".into(),
            "wall".into(),
            "swaps / rate".into(),
            "note".into(),
        ],
        rows,
    }
}

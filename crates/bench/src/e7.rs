//! E7 — citation evolution: incremental recomputation vs recompute-all
//! (§3: "how to compute citations in an incremental manner").
//!
//! A workload of queries is cited and cached; then `k` *localized* updates
//! hit only the `Ligand` relation. The incremental engine invalidates only
//! the citations that depend on ligands; the baseline recomputes every
//! query. Expected: incremental time ≪ full recompute time, growing with
//! the fraction of affected queries.

use citesys_core::{CitationService, EngineOptions, IncrementalEngine};
use citesys_cq::{parse_query, ConjunctiveQuery, Value};
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};
use citesys_storage::Tuple;

use crate::table::{ms, timed, Table};

/// The cached workload: two ligand-dependent queries, four independent.
pub fn workload() -> Vec<ConjunctiveQuery> {
    vec![
        parse_query("Q1(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").expect("ok"),
        parse_query("Q2(FID, FName, Desc) :- Family(FID, FName, Desc)").expect("ok"),
        parse_query("Q3(PName) :- Committee(FID, PName)").expect("ok"),
        parse_query("Q4(TName, FID) :- Target(TID, TName, FID)").expect("ok"),
        parse_query("Q5(LID, LName, LType) :- Ligand(LID, LName, LType)").expect("ok"),
        parse_query("Q6(TName, LID) :- Target(TID, TName, F), Interaction(TID, LID, A)")
            .expect("ok"),
    ]
}

/// One row: `k` ligand inserts, incremental vs full recompute.
pub fn run(k: usize) -> Vec<String> {
    let cfg = GtopdbConfig {
        scale: 2,
        ..Default::default()
    };
    let registry = full_registry();
    let queries = workload();

    // Incremental engine: warm cache, apply updates, re-cite everything.
    let mut inc =
        IncrementalEngine::new(generate(&cfg), registry.clone(), EngineOptions::default());
    for q in &queries {
        inc.cite(q).expect("coverable");
    }
    let updates: Vec<Tuple> = (0..k)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(2_000_000 + i as i64),
                Value::from(format!("delta-ligand-{i}")),
                Value::from("peptide"),
            ])
        })
        .collect();
    let (_, inc_time) = timed(|| {
        for t in &updates {
            inc.insert("Ligand", t.clone()).expect("valid");
        }
        for q in &queries {
            inc.cite(q).expect("coverable");
        }
    });
    let stats = inc.stats();

    // Baseline: fresh engine recomputes every query after the same updates.
    let mut db = generate(&cfg);
    let (_, full_time) = timed(|| {
        for t in &updates {
            db.insert("Ligand", t.clone()).expect("valid");
        }
        let engine = CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .options(EngineOptions::default())
            .build()
            .unwrap();
        for q in &queries {
            engine.cite(q).expect("coverable");
        }
    });

    vec![
        k.to_string(),
        stats.invalidations.to_string(),
        stats.hits.to_string(),
        ms(inc_time),
        ms(full_time),
        format!(
            "{:.1}×",
            full_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9)
        ),
    ]
}

/// Builds the E7 table.
pub fn table(quick: bool) -> Table {
    let ks: &[usize] = if quick { &[1, 8] } else { &[1, 8, 64, 256] };
    let rows = ks.iter().map(|&k| run(k)).collect();
    Table {
        id: "E7",
        title: "Citation evolution: incremental invalidation vs recompute-all (k ligand inserts)",
        expectation: "only ligand-dependent citations invalidate; incremental beats full recompute",
        headers: vec![
            "updates k".into(),
            "invalidations".into(),
            "cache hits on re-cite".into(),
            "incremental ms".into(),
            "recompute-all ms".into(),
            "speedup".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_ligand_queries_invalidate() {
        let registry = full_registry();
        let mut inc = IncrementalEngine::new(
            generate(&GtopdbConfig::default()),
            registry,
            EngineOptions::default(),
        );
        for q in workload() {
            inc.cite(&q).expect("coverable");
        }
        assert_eq!(inc.cached(), 6);
        inc.insert(
            "Ligand",
            Tuple::new(vec![
                Value::Int(3_000_000),
                Value::from("x"),
                Value::from("peptide"),
            ]),
        )
        .expect("valid");
        // Q5 (ligand scan) and Q6? Q6 joins Target–Interaction only, so it
        // survives; VL's citation query is constant. Exactly one entry
        // (Q5) depends on Ligand.
        assert_eq!(inc.cached(), 5);
    }

    #[test]
    fn run_produces_speedup_column() {
        let row = run(1);
        assert_eq!(row.len(), 6);
        assert!(row[5].ends_with('×'));
    }
}

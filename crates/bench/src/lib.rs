//! # citesys-bench — the experiment suite
//!
//! The paper is a vision paper with **no evaluation section**, so there are
//! no tables or figures to re-plot; instead, DESIGN.md §6 derives an
//! experiment per computational concern the paper raises, and this crate
//! regenerates each one:
//!
//! | id | concern (paper §) | module |
//! |----|-------------------|--------|
//! | E1 | §2 worked example correctness | [`e1`] |
//! | E2 | §3 rewriting enumeration cost | [`e2`] |
//! | E3 | Def. 2.2 citation cost vs data size | [`e3`] |
//! | E4 | §3 citation size vs policy | [`e4`] |
//! | E5 | §3 schema-level pruning | [`e5`] |
//! | E6 | §3 fixity / versioning cost | [`e6`] |
//! | E7 | §3 citation evolution (incremental) | [`e7`] |
//! | E8 | §3 view selection for a workload | [`e8`] |
//! | E9 | §2 algebra/normalization cost | [`e9`] |
//! | E10 | §3 other models (RDF triples) | [`e10`] |
//! | E11 | ablation: rewriting minimization | [`e11`] |
//! | E12 | Reactome pathway domain | [`e12`] |
//! | E13 | §3 amortized prepared citation | [`e13`] |
//! | E14 | §3 concurrent service throughput | [`e14`] |
//! | E16 | citation as an always-on network service | [`e16`] |
//! | E17 | durable, restartable citation store | [`e17`] |
//! | E18 | replication: read scale-out and bounded lag | [`e18`] |
//! | E19 | event-driven transport: scale, tails, pipelining | [`e19`] |
//! | E20 | time travel: @ version latency, compaction savings | [`e20`] |
//! | E21 | observability overhead on the cite hot path | [`e21`] |
//! | E22 | streaming bulk ingestion: batch size vs throughput/memory | [`e22`] |
//!
//! Run `cargo run -p citesys-bench --release --bin repro` to print every
//! table; Criterion benches under `benches/` time the same operations.

pub mod table;

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;
pub mod e2;
pub mod e20;
pub mod e21;
pub mod e22;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

pub use table::Table;

/// Runs every experiment in order, returning the rendered tables.
pub fn run_all(quick: bool) -> Vec<Table> {
    vec![
        e1::table(),
        e2::table(quick),
        e3::table(quick),
        e4::table(quick),
        e5::table(quick),
        e6::table(quick),
        e7::table(quick),
        e8::table(),
        e9::table(quick),
        e10::table(quick),
        e11::table(quick),
        e12::table(quick),
        e13::table(quick),
        e14::table(quick),
        e15::table(quick),
        e16::table(quick),
        e17::table(quick),
        e18::table(quick),
        e19::table(quick),
        e20::table(quick),
        e21::table(quick),
        e22::table(quick),
    ]
}

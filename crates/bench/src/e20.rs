//! E20 — time travel: `@ version` cite latency vs history depth (anchor
//! spacing sweep), and storage growth with vs without compaction under a
//! commit storm.
//!
//! The paper's citations are stamped with the version they cited; E20
//! prices actually *serving* those stamps later:
//!
//! * **`@ version` latency vs depth** — after a commit storm and a
//!   restart, a historical cite below the recovered checkpoint must be
//!   reconstructed from the nearest retained anchor plus a WAL-segment
//!   replay. The replay tail is bounded by the anchor spacing
//!   (`--checkpoint-every`), so the sweep shows latency tracking
//!   spacing, not total history depth.
//! * **storage growth under compaction** — the same storm against two
//!   stores, one left alone and one `compact`ed to a recent window. The
//!   gap is the price of keeping every version citable forever.

use std::path::{Path, PathBuf};
use std::time::Duration;

use citesys_net::script::{Interpreter, SharedStore};

use crate::table::{ms, timed, Table};

/// Bench sizing: (commits in the storm, anchor spacings swept).
pub fn config(quick: bool) -> (usize, Vec<u64>) {
    if quick {
        (24, vec![2, 8])
    } else {
        (96, vec![4, 16])
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("citesys-e20")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The setup script: the two-table schema, one seed family, the
/// paper-style views, one sealing commit (version 1).
fn setup_script() -> String {
    "schema Family(FID:int, FName:text, Desc:text) key(0)\n\
     schema FamilyIntro(FID:int, Text:text) key(0)\n\
     insert Family(0, 'F0', 'D0')\n\
     insert FamilyIntro(0, 'intro 0')\n\
     view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'\n\
     view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'\n\
     commit\n"
        .to_string()
}

const CITE: &str = "cite Q(FName) :- Family(0, FName, Desc), FamilyIntro(0, Text)";

/// Opens a durable interpreter over a fresh dir with `every`-record
/// auto-checkpointing and ample anchor retention, runs the setup plus a
/// `commits`-version storm, and drops the process. Returns the dir and
/// the latest version.
pub fn storm_dir(tag: &str, commits: usize, every: u64) -> (PathBuf, u64) {
    let dir = temp_dir(tag);
    let shared =
        SharedStore::open_durable_shared_with_retention(&dir, usize::MAX).expect("open data dir");
    shared.lock().set_checkpoint_every(Some(every));
    let mut interp = Interpreter::with_store(shared);
    interp.run(&setup_script()).expect("setup");
    for i in 0..commits {
        let fid = 1_000 + i as i64;
        interp
            .run_line(&format!("insert Family({fid}, 'N{fid}', 'D')"))
            .expect("insert");
        interp.run_line("commit").expect("commit");
    }
    let latest = interp.shared().lock().latest_version();
    (dir, latest)
}

/// Reopens a storm dir the way `serve --data-dir` would after a
/// restart: the op log starts at the recovered checkpoint, so versions
/// below it resolve through retained anchors.
pub fn reopen(dir: &Path) -> Interpreter {
    let shared = SharedStore::open_durable_shared_with_retention(dir, usize::MAX).expect("reopen");
    Interpreter::with_store(shared)
}

/// One `cite … @ version` round-trip; returns its wall time.
pub fn cite_at(interp: &mut Interpreter, version: u64) -> Duration {
    let (out, wall) = timed(|| {
        interp
            .run_line(&format!("{CITE} @ {version}"))
            .expect("cite")
    });
    assert!(
        out.contains(&format!("at version {version}")),
        "historical stamp missing: {out}"
    );
    wall
}

/// Total on-disk footprint of a data dir (checkpoint + WAL + anchors).
pub fn dir_size(dir: &Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += dir_size(&path);
            } else if let Ok(meta) = entry.metadata() {
                total += meta.len();
            }
        }
    }
    total
}

fn kib(bytes: u64) -> String {
    format!("{:.1} KiB", bytes as f64 / 1024.0)
}

/// Builds the E20 table.
pub fn table(quick: bool) -> Table {
    let (commits, spacings) = config(quick);
    let mut rows = Vec::new();

    // Arm 1: @ version latency vs depth, per anchor spacing.
    for every in &spacings {
        let (dir, latest) = storm_dir(&format!("sweep-{every}"), commits, *every);
        let mut interp = reopen(&dir);
        let retained = interp.shared().lock().checkpoints_retained();
        // Depth sweep: the present, the middle of history, the oldest
        // committed version. All but the first resolve via an anchor
        // whose replay tail is < `every` records.
        for (label, version) in [
            ("latest", latest),
            ("mid-history", latest / 2),
            ("oldest", 1),
        ] {
            let wall = cite_at(&mut interp, version);
            rows.push(vec![
                format!("@ {label} (v{version}), anchor every {every}"),
                ms(wall),
                format!("{retained} checkpoint(s) retained"),
                format!("replay tail < {every} record(s)"),
            ]);
        }
        drop(interp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Arm 2: storage growth with vs without compaction.
    let every = spacings[0];
    let window = every;
    let (keep_dir, _) = storm_dir("keep-all", commits, every);
    let keep_size = dir_size(&keep_dir);
    let (compact_dir, latest) = storm_dir("compacted", commits, every);
    let mut interp = reopen(&compact_dir);
    let out = interp
        .run_line(&format!("compact {window}"))
        .expect("compact");
    assert!(out.starts_with("compacted to version"), "{out}");
    let compact_size = dir_size(&compact_dir);
    let floor = interp.shared().lock().history_base_version();
    rows.push(vec![
        format!("{commits}-commit storm, full history kept"),
        "-".into(),
        kib(keep_size),
        format!("every version since 0 citable"),
    ]);
    rows.push(vec![
        format!("{commits}-commit storm, compacted to window {window}"),
        "-".into(),
        kib(compact_size),
        format!("citable from v{floor} of v{latest}"),
    ]);
    drop(interp);
    let _ = std::fs::remove_dir_all(&keep_dir);
    let _ = std::fs::remove_dir_all(&compact_dir);

    Table {
        id: "E20",
        title: "time travel: @ version latency vs history depth, compaction savings",
        expectation: "historical cite latency tracks the anchor spacing (replay tail), \
                      not total history depth; compaction reclaims most anchor storage \
                      while keeping the recent window citable",
        headers: vec![
            "arm".into(),
            "wall".into(),
            "size / note".into(),
            "detail".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_then_reopen_serves_history_at_every_depth() {
        let (dir, latest) = storm_dir("test-depths", 6, 2);
        let mut interp = reopen(&dir);
        for version in 1..=latest {
            cite_at(&mut interp, version);
        }
        drop(interp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_shrinks_the_dir_and_floors_history() {
        let (dir, latest) = storm_dir("test-compact", 8, 2);
        let before = dir_size(&dir);
        let mut interp = reopen(&dir);
        interp.run_line("compact 2").expect("compact");
        // The floor lands on the nearest retained anchor at or below the
        // requested window — never above it.
        let floor = interp.shared().lock().history_base_version();
        assert!(floor <= latest - 2, "floor {floor} vs latest {latest}");
        assert!(floor > 0, "something was compacted");
        assert!(dir_size(&dir) < before, "anchors were pruned");
        cite_at(&mut interp, latest - 2);
        cite_at(&mut interp, floor);
        drop(interp);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

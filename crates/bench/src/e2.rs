//! E2 — rewriting-enumeration cost vs number of views (§3 "it is
//! infeasible … to go through all rewritings").
//!
//! Chain query of length 6; `k` interchangeable 2-segment views. The bucket
//! algorithm's cross product explodes as `k²·(2k)⁴`; MiniCon's exact cover
//! over 2-interval MCDs stays at `k³` — the gap the MiniCon paper
//! documented, reproduced on citation-style views.

use citesys_gtopdb::synthetic::{chain_query, segment_view};
use citesys_rewrite::{rewrite, Algorithm, RewriteOptions, ViewSet};

use crate::table::{ms, timed, Table};

/// Candidate cap: beyond this the bucket algorithm reports "capped".
pub const CAP: usize = 200_000;

/// Measurement for one `(algorithm, k)` cell.
pub struct Cell {
    /// Candidates generated (saturates at [`CAP`]).
    pub candidates: usize,
    /// Final rewritings (None when capped).
    pub rewritings: Option<usize>,
    /// Wall time.
    pub time: std::time::Duration,
}

/// Runs one algorithm on the chain-6 / k-segment instance.
pub fn run(algorithm: Algorithm, k: usize) -> Cell {
    let q = chain_query(6);
    let views: Vec<_> = (0..k)
        .map(|i| segment_view(&format!("Seg{i}"), 2))
        .collect();
    let set = ViewSet::new(views).expect("distinct names");
    let opts = RewriteOptions {
        algorithm,
        max_candidates: CAP,
        ..Default::default()
    };
    let (res, time) = timed(|| rewrite(&q, &set, &opts));
    match res {
        Ok(out) => Cell {
            candidates: out.stats.candidates_generated,
            rewritings: Some(out.rewritings.len()),
            time,
        },
        Err(_) => Cell {
            candidates: CAP,
            rewritings: None,
            time,
        },
    }
}

/// Builds the E2 table.
pub fn table(quick: bool) -> Table {
    let ks: &[usize] = if quick { &[1, 2, 3] } else { &[1, 2, 3, 4, 6] };
    let mut rows = Vec::new();
    for &k in ks {
        let b = run(Algorithm::Bucket, k);
        let m = run(Algorithm::MiniCon, k);
        rows.push(vec![
            k.to_string(),
            b.candidates.to_string(),
            b.rewritings
                .map_or_else(|| "capped".into(), |r| r.to_string()),
            ms(b.time),
            m.candidates.to_string(),
            m.rewritings
                .map_or_else(|| "capped".into(), |r| r.to_string()),
            ms(m.time),
        ]);
    }
    Table {
        id: "E2",
        title: "Rewriting enumeration: bucket vs MiniCon on chain-6 with k 2-segment views",
        expectation:
            "bucket candidates grow ~k^6 (capped); MiniCon ~k^3; both find the same rewritings",
        headers: vec![
            "k views".into(),
            "bucket candidates".into(),
            "bucket rewritings".into(),
            "bucket ms".into(),
            "MiniCon candidates".into(),
            "MiniCon rewritings".into(),
            "MiniCon ms".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithms_agree_when_uncapped() {
        let b = run(Algorithm::Bucket, 2);
        let m = run(Algorithm::MiniCon, 2);
        assert_eq!(b.rewritings, m.rewritings);
        assert_eq!(
            m.rewritings,
            Some(8),
            "2-interval covers {{01,23,45}} × 2^3 views"
        );
    }

    #[test]
    fn bucket_generates_more_candidates() {
        let b = run(Algorithm::Bucket, 3);
        let m = run(Algorithm::MiniCon, 3);
        assert!(
            b.candidates > 10 * m.candidates,
            "bucket {} vs minicon {}",
            b.candidates,
            m.candidates
        );
    }
}

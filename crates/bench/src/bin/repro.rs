//! `repro` — regenerates every experiment table (E1–E22).
//!
//! Usage:
//! ```text
//! cargo run -p citesys-bench --release --bin repro            # all, full sizes
//! cargo run -p citesys-bench --release --bin repro -- --quick # smaller sweeps
//! cargo run -p citesys-bench --release --bin repro -- e4 e5   # selected ids
//! ```

use citesys_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();

    let run_one = |id: &str| -> Option<Table> {
        match id {
            "e1" => Some(citesys_bench::e1::table()),
            "e2" => Some(citesys_bench::e2::table(quick)),
            "e3" => Some(citesys_bench::e3::table(quick)),
            "e4" => Some(citesys_bench::e4::table(quick)),
            "e5" => Some(citesys_bench::e5::table(quick)),
            "e6" => Some(citesys_bench::e6::table(quick)),
            "e7" => Some(citesys_bench::e7::table(quick)),
            "e8" => Some(citesys_bench::e8::table()),
            "e9" => Some(citesys_bench::e9::table(quick)),
            "e10" => Some(citesys_bench::e10::table(quick)),
            "e11" => Some(citesys_bench::e11::table(quick)),
            "e12" => Some(citesys_bench::e12::table(quick)),
            "e13" => Some(citesys_bench::e13::table(quick)),
            "e14" => Some(citesys_bench::e14::table(quick)),
            "e15" => Some(citesys_bench::e15::table(quick)),
            "e16" => Some(citesys_bench::e16::table(quick)),
            "e17" => Some(citesys_bench::e17::table(quick)),
            "e18" => Some(citesys_bench::e18::table(quick)),
            "e19" => Some(citesys_bench::e19::table(quick)),
            "e20" => Some(citesys_bench::e20::table(quick)),
            "e21" => Some(citesys_bench::e21::table(quick)),
            "e22" => Some(citesys_bench::e22::table(quick)),
            other => {
                eprintln!("unknown experiment id: {other}");
                None
            }
        }
    };

    println!("# citesys experiment reproduction\n");
    println!(
        "mode: {} | ids: {}\n",
        if quick { "quick" } else { "full" },
        if selected.is_empty() {
            "all".to_string()
        } else {
            selected.join(", ")
        }
    );

    if selected.is_empty() {
        for t in citesys_bench::run_all(quick) {
            println!("{t}");
        }
    } else {
        for id in &selected {
            if let Some(t) = run_one(id) {
                println!("{t}");
            }
        }
    }
}

//! E17 — durability: WAL-on vs WAL-off commit throughput, and cold vs
//! warm restart time-to-first-cite.
//!
//! The paper's citations are only worth minting if the fixed, citable
//! versions survive a restart. E17 prices that guarantee:
//!
//! * **commit throughput** — the same single-insert commit stream
//!   against an in-memory store and against a durable one (`--data-dir`
//!   semantics: every commit appended to the write-ahead log and
//!   fsynced *before* the ack). The gap is the cost of the durability
//!   contract on the write path.
//! * **restart time-to-first-cite** — a cold process (run the setup
//!   script, materialize views, search for a plan, cite) versus a warm
//!   restart (recover the checkpoint: data, registry, views and plans
//!   come back together; the first cite is a plan hit over pre-seeded
//!   materializations).

use std::path::PathBuf;
use std::time::Duration;

use citesys_net::script::{Interpreter, SharedStore};

use crate::table::{ms, timed, Table};

/// Bench sizing: (families loaded, commits measured).
pub fn config(quick: bool) -> (usize, usize) {
    if quick {
        (16, 30)
    } else {
        (64, 200)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("citesys-e17")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The setup script: schemas, `families` rows, the paper-style views,
/// one sealing commit.
pub fn setup_script(families: usize) -> String {
    let mut s = String::from(
        "schema Family(FID:int, FName:text, Desc:text) key(0)\n\
         schema FamilyIntro(FID:int, Text:text) key(0)\n",
    );
    for fid in 0..families {
        s.push_str(&format!("insert Family({fid}, 'F{fid}', 'D{fid}')\n"));
        s.push_str(&format!("insert FamilyIntro({fid}, 'intro {fid}')\n"));
    }
    s.push_str(
        "view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'\n\
         view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'\n\
         commit\n",
    );
    s
}

const FIRST_CITE: &str = "cite Q(FName) :- Family(0, FName, Desc), FamilyIntro(0, Text)";

/// Runs `commits` single-insert commits on `interp`, returning the wall
/// time. Keys start at 1_000_000 (clear of the loaded rows) and are
/// offset by `round * commits`, so repeated measurement rounds over one
/// interpreter keep inserting **fresh** tuples — reused keys would be
/// set-semantics no-ops and every commit would seal an empty changeset,
/// measuring nothing.
pub fn commit_stream(interp: &mut Interpreter, commits: usize, round: usize) -> Duration {
    let (_, wall) = timed(|| {
        for i in 0..commits {
            let fid = 1_000_000 + (round * commits + i) as i64;
            interp
                .run_line(&format!("insert Family({fid}, 'N{fid}', 'D')"))
                .expect("insert");
            interp.run_line("commit").expect("commit");
        }
    });
    wall
}

/// Arm 1: a WAL-off (in-memory) interpreter.
pub fn mem_interp(families: usize) -> Interpreter {
    let mut interp = Interpreter::new();
    interp.run(&setup_script(families)).expect("setup");
    interp
}

/// Arm 2: a WAL-on (durable) interpreter over a fresh data dir.
/// Returns the interpreter and the dir (caller removes it).
pub fn durable_interp(families: usize, tag: &str) -> (Interpreter, PathBuf) {
    let dir = temp_dir(tag);
    let shared = SharedStore::open_durable_shared(&dir).expect("open data dir");
    let mut interp = Interpreter::with_store(shared);
    interp.run(&setup_script(families)).expect("setup");
    (interp, dir)
}

/// Cold start: fresh in-memory process runs the whole setup script and
/// the first cite. Returns time-to-first-cite.
pub fn cold_start(families: usize) -> Duration {
    let (_, wall) = timed(|| {
        let mut interp = Interpreter::new();
        interp.run(&setup_script(families)).expect("setup");
        interp.run_line(FIRST_CITE).expect("cite");
    });
    wall
}

/// Warm start: open a checkpointed data dir (data + registry + views +
/// plans recovered together) and run the first cite. Returns
/// time-to-first-cite; callers prepare the dir with
/// [`prepare_warm_dir`].
pub fn warm_start(dir: &PathBuf) -> Duration {
    let (_, wall) = timed(|| {
        let shared = SharedStore::open_durable_shared(dir).expect("reopen");
        let mut interp = Interpreter::with_store(shared);
        let out = interp.run_line(FIRST_CITE).expect("cite");
        assert!(out.contains("answer tuple"), "{out}");
        let stats = interp.view_cache_stats().expect("service built");
        assert_eq!(stats.materializations, 0, "warm start must not rebuild");
    });
    wall
}

/// Builds a checkpointed data dir whose checkpoint holds warm views and
/// plans (setup + cite + `checkpoint`), then drops the process.
pub fn prepare_warm_dir(families: usize, tag: &str) -> PathBuf {
    let (mut interp, dir) = durable_interp(families, tag);
    interp.run_line(FIRST_CITE).expect("warm cite");
    interp.run_line("checkpoint").expect("checkpoint");
    dir
}

/// Builds the E17 table.
pub fn table(quick: bool) -> Table {
    let (families, commits) = config(quick);
    let mut rows = Vec::new();

    // Arm 1: commit throughput, WAL off vs on.
    let mut mem = mem_interp(families);
    let wall = commit_stream(&mut mem, commits, 0);
    rows.push(vec![
        format!("{commits} commits, wal off (memory)"),
        ms(wall),
        format!(
            "{:.0} commits/s",
            commits as f64 / wall.as_secs_f64().max(1e-9)
        ),
        "-".into(),
    ]);
    let (mut durable, dir) = durable_interp(families, "throughput");
    let wall = commit_stream(&mut durable, commits, 0);
    let wal_records = durable.store_stats().commits; // one record per commit
    rows.push(vec![
        format!("{commits} commits, wal on (fsync before ack)"),
        ms(wall),
        format!(
            "{:.0} commits/s",
            commits as f64 / wall.as_secs_f64().max(1e-9)
        ),
        format!("{wal_records} acked"),
    ]);
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);

    // Arm 2: restart time-to-first-cite, cold vs warm.
    let wall = cold_start(families);
    rows.push(vec![
        "cold start → first cite (script replay)".into(),
        ms(wall),
        "full load + materialize + plan search".into(),
        "-".into(),
    ]);
    let dir = prepare_warm_dir(families, "warm");
    let wall = warm_start(&dir);
    rows.push(vec![
        "warm restart → first cite (checkpoint recovery)".into(),
        ms(wall),
        "views pre-seeded, plan served from checkpoint".into(),
        "0 materializations".into(),
    ]);
    let _ = std::fs::remove_dir_all(&dir);

    Table {
        id: "E17",
        title: "durability: WAL commit cost and cold vs warm restart",
        expectation: "wal-on commits pay an fsync per ack but stay the same order of \
                      magnitude; a warm restart reaches its first cite without \
                      re-materializing views or re-searching plans",
        headers: vec![
            "arm".into(),
            "wall".into(),
            "rate / note".into(),
            "detail".into(),
        ],
        rows,
    }
}

//! E4 — citation size vs policy (§3 *Size of citations*: "since views may
//! be parameterized, the size of a citation may be proportional to the size
//! of the query result").
//!
//! The paper's closing example, measured: with `+R = union` the citation
//! collects one `CV1(fid)` per family (size ∝ |Family|); `+R = min-size`
//! collapses to the two constant citations `CV2·CV3` regardless of scale.

use citesys_core::{CitationMode, CitationService, EngineOptions, PolicySet, RewritePolicy};
use citesys_gtopdb::workload::q_family_intro;
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};

use crate::table::Table;

/// Aggregate citation size (distinct atoms) for one scale and policy.
pub fn citation_size(scale: usize, policy: RewritePolicy) -> usize {
    let db = generate(&GtopdbConfig {
        scale,
        dup_name_rate: 0.2,
        ..Default::default()
    });
    let registry = full_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            policies: PolicySet {
                rewritings: policy,
                ..Default::default()
            },
            ..Default::default()
        })
        .build()
        .unwrap();
    engine
        .cite(&q_family_intro())
        .expect("coverable")
        .aggregate
        .expect("Agg = union")
        .atoms
        .len()
}

/// Builds the E4 table.
pub fn table(quick: bool) -> Table {
    let scales: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    let rows = scales
        .iter()
        .map(|&s| {
            let families = GtopdbConfig {
                scale: s,
                ..Default::default()
            }
            .families();
            vec![
                s.to_string(),
                families.to_string(),
                citation_size(s, RewritePolicy::Union).to_string(),
                citation_size(s, RewritePolicy::First).to_string(),
                citation_size(s, RewritePolicy::MinSize).to_string(),
            ]
        })
        .collect();
    Table {
        id: "E4",
        title: "Aggregate citation size vs +R policy (paper query, scale sweep)",
        expectation: "union grows ~|Family|; min-size stays constant at 2 (CV2·CV3)",
        headers: vec![
            "scale".into(),
            "families".into(),
            "+R union atoms".into(),
            "+R first atoms".into(),
            "+R min-size atoms".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_size_constant_union_grows() {
        let m1 = citation_size(1, RewritePolicy::MinSize);
        let m4 = citation_size(4, RewritePolicy::MinSize);
        assert_eq!(m1, 2);
        assert_eq!(m4, 2);
        let u1 = citation_size(1, RewritePolicy::Union);
        let u4 = citation_size(4, RewritePolicy::Union);
        assert!(u4 > u1, "union must scale: {u1} vs {u4}");
    }
}

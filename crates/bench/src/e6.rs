//! E6 — fixity cost (§3: a citation "should bring back the data as seen at
//! the time it was cited").
//!
//! A versioned GtoPdb accumulates `v` committed update batches. We measure:
//! cold snapshot materialization of version 1 (replay), warm re-access
//! (cache), and full `verify` of a version-1 citation token.

use citesys_core::{cite_at_version, verify, EngineOptions};
use citesys_cq::Value;
use citesys_gtopdb::workload::q_family_intro;
use citesys_gtopdb::{full_registry, generate_versioned, GtopdbConfig};
use citesys_storage::{Tuple, VersionedDatabase};

use crate::table::{ms, timed, Table};

/// Builds a store with `versions` additional committed batches of
/// `ops_per_version` inserts each.
pub fn build_store(versions: usize, ops_per_version: usize) -> VersionedDatabase {
    let mut vdb = generate_versioned(&GtopdbConfig {
        scale: 1,
        ..Default::default()
    });
    let mut next_id = 1_000_000i64;
    for _ in 0..versions {
        for _ in 0..ops_per_version {
            vdb.insert(
                "Ligand",
                Tuple::new(vec![
                    Value::Int(next_id),
                    Value::from(format!("synthetic-{next_id}")),
                    Value::from("peptide"),
                ]),
            )
            .expect("schema-valid");
            next_id += 1;
        }
        vdb.commit();
    }
    vdb
}

/// One row of the version sweep.
pub fn run(versions: usize) -> Vec<String> {
    let vdb = build_store(versions, 8);
    let registry = full_registry();
    let q = q_family_intro();

    // Token minted against version 1 (the initial load).
    let (_, token) =
        cite_at_version(&vdb, &registry, EngineOptions::default(), 1, &q).expect("coverable");

    // Fresh store for a cold replay of the *latest* version.
    let cold_store = build_store(versions, 8);
    let latest = cold_store.latest_version();
    let (_, cold) = timed(|| cold_store.snapshot(latest).expect("known version"));
    let (_, warm) = timed(|| cold_store.snapshot(latest).expect("known version"));

    let (res, verify_time) = timed(|| verify(&vdb, &token));
    res.expect("token verifies");

    vec![
        versions.to_string(),
        (versions * 8).to_string(),
        ms(cold),
        ms(warm),
        ms(verify_time),
    ]
}

/// Builds the E6 table.
pub fn table(quick: bool) -> Table {
    let sweeps: &[usize] = if quick {
        &[4, 16, 64]
    } else {
        &[4, 16, 64, 256]
    };
    let rows = sweeps.iter().map(|&v| run(v)).collect();
    Table {
        id: "E6",
        title: "Fixity: snapshot materialization and citation verification vs history length",
        expectation: "cold snapshot grows with replayed ops; warm access ~constant; verify succeeds at every depth",
        headers: vec![
            "extra versions".into(),
            "replayed ops".into(),
            "cold snapshot ms".into(),
            "warm snapshot ms".into(),
            "verify ms".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_builds_and_verifies() {
        let row = run(4);
        assert_eq!(row[0], "4");
        assert_eq!(row[1], "32");
    }

    #[test]
    fn deeper_history_means_more_cold_work() {
        let shallow = build_store(2, 8);
        let deep = build_store(32, 8);
        assert_eq!(shallow.latest_version(), 3);
        assert_eq!(deep.latest_version(), 33);
        // More committed ops in total.
        let count = |v: &VersionedDatabase| -> usize {
            (1..=v.latest_version()).map(|i| v.ops_in(i).unwrap()).sum()
        };
        assert!(count(&deep) > count(&shallow));
    }
}

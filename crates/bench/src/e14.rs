//! E14 — concurrent service throughput: N threads cloning one warm
//! service, plus a mixed cite/update workload.
//!
//! The ROADMAP's north star is serving citation traffic from many clients
//! at once, which stresses exactly the state PR 1 centralized: the shared
//! plan cache and the shared materialized-view cache. This experiment
//! clones one [`CitationService`] across `N` threads and measures
//!
//! * **cached cites** — every thread re-cites warm λ-parameterized query
//!   shapes; with the lock-striped plan cache and read-lock view access
//!   this should scale with cores (flat on a single-core host), and
//! * **mixed cite/update** — one writer applies single-tuple updates
//!   through an [`IncrementalEngine`] while reader threads cite against
//!   the published snapshot services; delta-maintained view caches keep
//!   both plans and materializations warm across every update.
//!
//! The table reports total throughput and the speedup over one thread.
//! The companion criterion bench (`benches/e14_concurrent_service.rs`)
//! times the same shapes.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use citesys_core::{
    CitationMode, CitationRegistry, CitationService, EngineOptions, IncrementalEngine,
};
use citesys_cq::ConjunctiveQuery;
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};
use citesys_storage::{tuple, SharedDatabase};

use crate::e13::parameterized_workload;
use crate::table::{timed, Table};

/// Spawns `threads` workers over clones of `service`, each citing the
/// whole workload `rounds` times. Returns total cites performed.
pub fn concurrent_cites(
    service: &CitationService,
    workload: &[ConjunctiveQuery],
    threads: usize,
    rounds: usize,
) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let svc = service.clone();
                scope.spawn(move || {
                    let mut done = 0usize;
                    for _ in 0..rounds {
                        for q in workload {
                            svc.cite(q).expect("coverable");
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .sum()
    })
}

/// One writer applying `updates` single-tuple inserts through an
/// [`IncrementalEngine`] (publishing a fresh snapshot service after each)
/// while `readers` threads cite the latest published service. Returns
/// `(cites, plan_cache_hits_at_end)`.
pub fn mixed_cite_update(
    db: &SharedDatabase,
    registry: &Arc<CitationRegistry>,
    workload: &[ConjunctiveQuery],
    readers: usize,
    updates: usize,
) -> (usize, u64) {
    let mut engine = IncrementalEngine::new(
        db.as_ref().clone(),
        registry.as_ref().clone(),
        EngineOptions {
            mode: CitationMode::CostPruned,
            ..Default::default()
        },
    );
    // Warm plans + views, then publish the snapshot service for readers.
    for q in workload {
        engine.cite(q).expect("coverable");
    }
    let published = Arc::new(Mutex::new(engine.snapshot_service()));
    let total = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let published = Arc::clone(&published);
                scope.spawn(move || {
                    let mut done = 0usize;
                    // Two passes over the workload per published snapshot
                    // keeps readers busy across the writer's updates.
                    for _ in 0..2 * updates.max(1) {
                        let svc = published.lock().expect("not poisoned").clone();
                        for q in workload {
                            svc.cite(q).expect("coverable");
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        // The writer: single-tuple inserts into a relation the citation
        // views join against, republished after every update.
        for i in 0..updates {
            engine
                .insert("Committee", tuple![1, format!("e14-member-{i}")])
                .expect("insertable");
            *published.lock().expect("not poisoned") = engine.snapshot_service();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .sum()
    });
    let hits = engine.snapshot_service().plan_cache_stats().hits;
    (total, hits)
}

/// Throughput of one configuration in cites/second.
fn rate(cites: usize, wall: Duration) -> f64 {
    cites as f64 / wall.as_secs_f64().max(1e-9)
}

/// Builds the E14 table.
pub fn table(quick: bool) -> Table {
    let cfg = GtopdbConfig {
        scale: 2,
        ..Default::default()
    };
    let db = generate(&cfg).into_shared();
    let registry = Arc::new(full_registry());
    let workload = parameterized_workload(&cfg, if quick { 8 } else { 16 });
    let rounds = if quick { 4 } else { 16 };

    let service = CitationService::builder()
        .database(Arc::clone(&db))
        .registry(Arc::clone(&registry))
        .options(EngineOptions {
            mode: CitationMode::CostPruned,
            ..Default::default()
        })
        .build()
        .expect("complete builder");
    for q in &workload {
        service.cite(q).expect("warmup");
    }

    let mut rows = Vec::new();
    let mut base_rate = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let (cites, wall) = timed(|| concurrent_cites(&service, &workload, threads, rounds));
        let r = rate(cites, wall);
        if threads == 1 {
            base_rate = r;
        }
        rows.push(vec![
            format!("cached cites × {threads} thread(s)"),
            cites.to_string(),
            format!("{:.0}", r),
            format!("{:.2}×", r / base_rate.max(1e-9)),
        ]);
    }

    let updates = if quick { 4 } else { 16 };
    let ((cites, hits), wall) = timed(|| mixed_cite_update(&db, &registry, &workload, 4, updates));
    rows.push(vec![
        format!("mixed: 4 readers + {updates} updates"),
        cites.to_string(),
        format!("{:.0}", rate(cites, wall)),
        format!("{hits} plan hits kept"),
    ]);

    Table {
        id: "E14",
        title: "concurrent service: cached cites scale across threads; updates keep caches warm",
        expectation: "throughput grows with threads on multi-core hosts (the shared caches are \
                      read-dominated); the mixed workload keeps serving plan-cache hits across \
                      every data update",
        headers: vec![
            "configuration".into(),
            "cites".into(),
            "cites/s".into(),
            "scaling / note".into(),
        ],
        rows,
    }
}

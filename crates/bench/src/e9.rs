//! E9 — cost of the citation algebra itself: building and normalizing
//! large symbolic expressions, and the provenance-polynomial operations
//! they piggyback on (§2's semiring modelling).

use citesys_core::{CiteAtom, CiteExpr};
use citesys_cq::Value;
use citesys_provenance::{Polynomial, ProvToken, Semiring};
use citesys_storage::Tuple;

use crate::table::{timed, us, Table};

/// Builds a sum of `n` two-factor products (the shape Definition 2.2
/// produces for a tuple with `n` bindings).
pub fn binding_sum(n: usize) -> CiteExpr {
    let summands: Vec<CiteExpr> = (0..n)
        .map(|i| {
            CiteExpr::Prod(vec![
                CiteExpr::Atom(CiteAtom::new("V1", vec![Value::Int(i as i64)])),
                CiteExpr::Atom(CiteAtom::new("V3", vec![])),
            ])
        })
        .collect();
    CiteExpr::Sum(summands)
}

/// A polynomial with `n` monomials over `n` variables.
pub fn poly(n: usize) -> Polynomial {
    Polynomial::sum(
        (0..n)
            .map(|i| Polynomial::var(ProvToken::new("R", Tuple::new(vec![Value::Int(i as i64)])))),
    )
}

/// Builds the E9 table.
pub fn table(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let raw = binding_sum(n);
        let (normalized, norm_t) = timed(|| raw.normalize());
        let (size, size_t) = timed(|| normalized.estimated_size());
        // Polynomial products are quadratic in the factor sizes; sweep a
        // tenth of n so the largest point stays in the hundreds of
        // milliseconds.
        let p = poly(n / 10 + 1);
        let q = poly(n / 20 + 1);
        let (prod, mul_t) = timed(|| p.mul(&q));
        let (_, eval_t) = timed(|| prod.eval_in::<u64>(&|_| 1));
        rows.push(vec![
            n.to_string(),
            us(norm_t),
            size.to_string(),
            us(size_t),
            prod.term_count().to_string(),
            us(mul_t),
            us(eval_t),
        ]);
    }
    Table {
        id: "E9",
        title: "Algebra micro-costs: normalization, size estimation, polynomial ops",
        expectation: "normalization ~n log n; estimated size = n+1 distinct atoms; poly ops superlinear but tractable",
        headers: vec![
            "n bindings".into(),
            "normalize µs".into(),
            "estimated size".into(),
            "size µs".into(),
            "poly product terms".into(),
            "poly mul µs".into(),
            "poly eval µs".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_sum_normalizes_to_expected_size() {
        let e = binding_sum(50).normalize();
        // 50 distinct CV1 params + shared CV3.
        assert_eq!(e.estimated_size(), 51);
    }

    #[test]
    fn poly_product_terms() {
        // (r0+r1+r2+r3)(r0+r1+r2) — commuting monomials merge:
        // 3 squares + 6 distinct unordered pairs = 9 terms.
        let p = poly(4);
        let q = poly(3);
        assert_eq!(p.mul(&q).term_count(), 9);
    }
}

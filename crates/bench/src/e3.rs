//! E3 — citation computation cost vs database size (Definitions 2.1/2.2:
//! the engine walks every binding of every output tuple).
//!
//! GtoPdb scale sweep on the paper's query, formal mode (all rewritings)
//! vs cost-pruned mode (one rewriting). Expected: time grows linearly in
//! the number of bindings; pruned mode is cheaper by roughly the number of
//! rewritings evaluated.

use citesys_core::{CitationMode, CitationService, EngineOptions};
use citesys_gtopdb::workload::q_family_intro;
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};

use crate::table::{ms, timed, Table};

/// One row of the scale sweep.
pub struct Row {
    /// Scale factor.
    pub scale: usize,
    /// Total base tuples.
    pub tuples: usize,
    /// Answer tuples.
    pub answers: usize,
    /// Total bindings (β_t summed).
    pub bindings: usize,
    /// Formal-mode wall time.
    pub formal: std::time::Duration,
    /// Cost-pruned wall time.
    pub pruned: std::time::Duration,
}

/// Measures one scale factor.
pub fn run(scale: usize) -> Row {
    let cfg = GtopdbConfig {
        scale,
        dup_name_rate: 0.25,
        ..Default::default()
    };
    let db = generate(&cfg);
    let registry = full_registry();
    let q = q_family_intro();
    let formal_engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    let (formal_out, formal) = timed(|| formal_engine.cite(&q).expect("coverable"));
    let pruned_engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::CostPruned,
            ..Default::default()
        })
        .build()
        .unwrap();
    let (_, pruned) = timed(|| pruned_engine.cite(&q).expect("coverable"));
    Row {
        scale,
        tuples: db.total_tuples(),
        answers: formal_out.answer.len(),
        bindings: formal_out.answer.total_bindings(),
        formal,
        pruned,
    }
}

/// Builds the E3 table.
pub fn table(quick: bool) -> Table {
    let scales: &[usize] = if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let rows = scales
        .iter()
        .map(|&s| {
            let r = run(s);
            vec![
                r.scale.to_string(),
                r.tuples.to_string(),
                r.answers.to_string(),
                r.bindings.to_string(),
                ms(r.formal),
                ms(r.pruned),
            ]
        })
        .collect();
    Table {
        id: "E3",
        title: "Citation cost vs database size (paper query, GtoPdb scale sweep)",
        expectation: "time grows ~linearly with bindings; cost-pruned ≤ formal",
        headers: vec![
            "scale".into(),
            "base tuples".into(),
            "answers".into(),
            "bindings".into(),
            "formal ms".into(),
            "pruned ms".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_scale_with_data() {
        let small = run(1);
        let big = run(4);
        assert!(big.tuples > small.tuples);
        assert!(big.bindings >= small.bindings);
        assert!(big.answers >= small.answers);
    }
}

//! E1 — the paper's §2 worked example, checked end to end.
//!
//! The only "result" the paper itself states: for the Calcitonin tuple the
//! citation is `(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)`, and with union
//! policies + min-size `+R` the final citation is the one using Q2:
//! `CV2·CV3`.

use citesys_core::paper;
use citesys_core::{CitationMode, CitationService, EngineOptions};

use crate::table::Table;

/// One verification row: what the paper says vs what the engine computes.
pub fn checks() -> Vec<(String, String, String)> {
    let db = paper::paper_database();
    let registry = paper::paper_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    let cited = engine.cite(&paper::paper_query()).expect("coverable");
    let pruned = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::CostPruned,
            ..Default::default()
        })
        .build()
        .unwrap()
        .cite(&paper::paper_query())
        .expect("coverable");

    let t = &cited.tuples[0];
    let atoms = t
        .atoms
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("·");
    let pruned_atoms = pruned.tuples[0]
        .atoms
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("·");

    vec![
        (
            "answer tuple".to_string(),
            "(Calcitonin)".to_string(),
            format!("{}", t.tuple),
        ),
        (
            "bindings for the tuple (β_t)".to_string(),
            "2 (FID=11, FID=12)".to_string(),
            cited.answer.rows[0].bindings.len().to_string(),
        ),
        (
            "rewritings found".to_string(),
            "2 (Q1 via V1,V3; Q2 via V2,V3)".to_string(),
            cited.rewritings.len().to_string(),
        ),
        (
            "symbolic citation".to_string(),
            "(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)".to_string(),
            t.expr().to_string(),
        ),
        (
            "final citation (min-size +R)".to_string(),
            "CV2·CV3".to_string(),
            atoms,
        ),
        (
            "cost-pruned mode agrees".to_string(),
            "CV2·CV3".to_string(),
            pruned_atoms,
        ),
    ]
}

/// Builds the E1 table.
pub fn table() -> Table {
    let rows = checks()
        .into_iter()
        .map(|(check, expected, got)| {
            let ok = if expected == got || got.contains(&expected) || expected.contains(&got) {
                "✓"
            } else {
                "✗"
            };
            vec![check, expected, got, ok.to_string()]
        })
        .collect();
    Table {
        id: "E1",
        title: "Worked example (§2): citation of Q over the Calcitonin instance",
        expectation: "every engine output matches the paper's hand computation",
        headers: vec![
            "check".into(),
            "paper".into(),
            "measured".into(),
            "ok".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_checks_pass() {
        for (check, expected, got) in checks() {
            assert!(
                expected == got || got.contains(&expected) || expected.contains(&got),
                "{check}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn table_renders() {
        let t = table();
        assert_eq!(t.rows.len(), 6);
        assert!(t.rows.iter().all(|r| r[3] == "✓"));
    }
}

//! E21 — observability overhead: what the metrics registry and tracing
//! spans cost on the cite hot path.
//!
//! The observability layer is built to be safe to leave on: counters
//! and gauges are lock-free atomics that always run, while latency
//! *timings* (histograms plus the `Instant::now` reads that feed them)
//! are gated behind a flag that `serve --metrics` flips on. E21 prices
//! that gate: the same warm plan-cache cite workload with timings off,
//! timings on, and timings on with the slow-cite log armed (at a
//! threshold that never fires, so only the comparison is paid). The
//! acceptance criterion is a p99 overhead of **≤ 5%** for the
//! timings-on arm.

use std::time::Duration;

use citesys_net::script::Interpreter;

use crate::table::{timed, us, Table};

/// Bench sizing: cite iterations per arm (after warmup).
pub fn config(quick: bool) -> usize {
    if quick {
        400
    } else {
        4000
    }
}

/// The paper's two-table worked example with citation views — the same
/// setup E13/E16 use, so overhead numbers compare across experiments.
fn setup_script() -> String {
    "schema Family(FID:int, FName:text, Desc:text) key(0)\n\
     schema FamilyIntro(FID:int, Text:text) key(0)\n\
     insert Family(0, 'Calcitonin', 'D0')\n\
     insert FamilyIntro(0, 'intro 0')\n\
     view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'\n\
     view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'\n\
     commit\n"
        .to_string()
}

const CITE: &str = "cite Q(FName) :- Family(0, FName, Desc), FamilyIntro(0, Text)";

/// A slow-cite threshold (in ms) that a microsecond-scale cite can
/// never reach: the per-cite comparison runs, the log never fires.
pub const NEVER_FIRES_MS: u64 = 3_600_000;

/// An interpreter warmed through setup, with the observability arms
/// configured: `timings` flips latency histograms on, `slow_cite` arms
/// the slow-cite log at [`NEVER_FIRES_MS`].
pub fn setup_interp(timings: bool, slow_cite: bool) -> Interpreter {
    let interp = Interpreter::new();
    {
        let sh = interp.shared().lock();
        sh.obs().set_timings_enabled(timings);
    }
    let mut interp = interp;
    interp.run(&setup_script()).expect("setup");
    if slow_cite {
        interp
            .shared()
            .lock()
            .set_slow_cite_ms(Some(NEVER_FIRES_MS));
    }
    // Warm the plan cache so measured cites take the hit path.
    interp.run_line(CITE).expect("warmup cite");
    interp
}

/// One cite round-trip; returns its wall time.
pub fn cite_once(interp: &mut Interpreter) -> Duration {
    let (out, wall) = timed(|| interp.run_line(CITE).expect("cite"));
    assert!(out.contains("answer tuple(s)"), "{out}");
    wall
}

/// The `q`-quantile (0..=1) of a sample set, nearest-rank.
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one arm: `iters` cites, returning (p50, p95, p99).
fn run_arm(interp: &mut Interpreter, iters: usize) -> (Duration, Duration, Duration) {
    let mut samples: Vec<Duration> = (0..iters).map(|_| cite_once(interp)).collect();
    samples.sort();
    (
        quantile(&samples, 0.50),
        quantile(&samples, 0.95),
        quantile(&samples, 0.99),
    )
}

fn pct_over(base: Duration, arm: Duration) -> String {
    if base.is_zero() {
        return "-".into();
    }
    let delta = arm.as_secs_f64() / base.as_secs_f64() - 1.0;
    format!("{:+.1}%", delta * 100.0)
}

/// Builds the E21 table.
pub fn table(quick: bool) -> Table {
    let iters = config(quick);
    let arms: [(&str, bool, bool); 3] = [
        ("timings off (counters only)", false, false),
        ("timings on (histograms + spans)", true, false),
        ("timings on + slow-cite armed", true, true),
    ];
    let mut rows = Vec::new();
    let mut base_p99 = Duration::ZERO;
    for (label, timings, slow) in arms {
        let mut interp = setup_interp(timings, slow);
        let (p50, p95, p99) = run_arm(&mut interp, iters);
        if timings {
            // Sanity: the enabled arm really recorded its spans.
            let text = interp.shared().lock().render_metrics();
            assert!(
                text.contains("citesys_cite_seconds_count"),
                "metrics text lost the cite histogram"
            );
        }
        let overhead = if base_p99.is_zero() {
            base_p99 = p99;
            "baseline".to_string()
        } else {
            pct_over(base_p99, p99)
        };
        rows.push(vec![label.to_string(), us(p50), us(p95), us(p99), overhead]);
    }
    Table {
        id: "E21",
        title: "observability overhead on the cite hot path",
        expectation: "enabling latency timings (histograms + per-stage spans) costs \
                      ≤5% at p99 over the counters-only baseline; arming the \
                      slow-cite log adds only a threshold comparison on top",
        headers: vec![
            "arm".into(),
            "p50 µs".into(),
            "p95 µs".into(),
            "p99 µs".into(),
            "p99 overhead".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_arms_cite_and_the_enabled_arm_records_spans() {
        for (timings, slow) in [(false, false), (true, false), (true, true)] {
            let mut interp = setup_interp(timings, slow);
            cite_once(&mut interp);
            let text = interp.shared().lock().render_metrics();
            // Counters are always on; only histograms are gated.
            let count_line = text
                .lines()
                .find(|l| l.starts_with("citesys_cite_seconds_count"))
                .expect("cite histogram present in exposition");
            let expected = if timings { "2" } else { "0" };
            assert!(
                count_line.ends_with(expected),
                "timings={timings}: {count_line}"
            );
        }
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(quantile(&samples, 0.50), Duration::from_micros(50));
        assert_eq!(quantile(&samples, 0.99), Duration::from_micros(99));
        assert_eq!(quantile(&samples, 1.0), Duration::from_micros(100));
    }
}

//! E13 — prepared vs ad-hoc citation on repeated λ-parameterized queries.
//!
//! §3 asks for citations fast enough to compute "whenever a query is
//! posed"; real workloads repeat the same parameterized query shape at
//! different constants. The [`CitationService`] plan cache answers the
//! first instance with a full rewriting search and every later instance
//! with zero search work. This experiment measures the amortized win:
//!
//! * **ad-hoc** — a fresh service (cold plan cache) per call: every cite
//!   pays for the bucket/MiniCon search;
//! * **prepared** — one shared service: the first cite populates the plan
//!   cache, the rest skip straight to evaluate + annotate.

use std::time::Duration;

use std::sync::Arc;

use citesys_core::{CitationMode, CitationRegistry, CitationService, EngineOptions};
use citesys_cq::{parse_query, ConjunctiveQuery};
use citesys_gtopdb::{full_registry, generate, GtopdbConfig};
use citesys_storage::SharedDatabase;

use crate::table::{timed, us, Table};

/// The repeated λ-parameterized workload: the paper's query shape pinned
/// at `count` different family constants (cycling over the generated
/// families).
pub fn parameterized_workload(cfg: &GtopdbConfig, count: usize) -> Vec<ConjunctiveQuery> {
    (0..count)
        .map(|i| {
            let fid = i % cfg.families();
            parse_query(&format!(
                "Q(FName) :- Family({fid}, FName, Desc), FamilyIntro({fid}, Text)"
            ))
            .expect("well-formed")
        })
        .collect()
}

/// Builds a cold-cache service from pre-shared handles. `Arc` clones
/// only — no database deep copy or registry construction — so the timed
/// ad-hoc arm pays for the rewriting search, not for setup the borrowing
/// engine never paid either.
fn fresh_service(db: &SharedDatabase, registry: &Arc<CitationRegistry>) -> CitationService {
    CitationService::builder()
        .database(Arc::clone(db))
        .registry(Arc::clone(registry))
        .options(EngineOptions {
            mode: CitationMode::CostPruned,
            ..Default::default()
        })
        .build()
        .expect("complete builder")
}

/// One measured comparison.
pub struct Row {
    /// Number of repeated parameterized cites.
    pub count: usize,
    /// Total ad-hoc time (fresh search per call).
    pub adhoc: Duration,
    /// Total prepared time (one search, cached plan after).
    pub prepared: Duration,
    /// adhoc / prepared.
    pub speedup: f64,
}

/// Runs the comparison for `count` repeated queries at `scale`.
pub fn run(scale: usize, count: usize) -> Row {
    let cfg = GtopdbConfig {
        scale,
        ..Default::default()
    };
    let db = generate(&cfg).into_shared();
    let registry = Arc::new(full_registry());
    let workload = parameterized_workload(&cfg, count);

    // Ad-hoc: a cold service per call — every cite re-runs the search.
    let (_, adhoc) = timed(|| {
        for q in &workload {
            fresh_service(&db, &registry).cite(q).expect("coverable");
        }
    });

    // Prepared: one service; cite_batch shares plans and views.
    let service = fresh_service(&db, &registry);
    let (results, prepared) = timed(|| service.cite_batch(&workload));
    for (i, r) in results.iter().enumerate() {
        let cited = r.as_ref().expect("coverable");
        let expected_hits = usize::from(i > 0);
        assert_eq!(
            cited.rewrite_stats.plan_cache_hits, expected_hits,
            "query {i}: only the first instance may search"
        );
    }

    let speedup = adhoc.as_secs_f64() / prepared.as_secs_f64().max(1e-9);
    Row {
        count,
        adhoc,
        prepared,
        speedup,
    }
}

/// Builds the E13 table.
pub fn table(quick: bool) -> Table {
    let counts: &[usize] = if quick { &[8, 32] } else { &[8, 32, 128] };
    let rows = counts
        .iter()
        .map(|&n| {
            let r = run(2, n);
            vec![
                r.count.to_string(),
                us(r.adhoc),
                us(r.prepared),
                format!("{:.1}×", r.speedup),
            ]
        })
        .collect();
    Table {
        id: "E13",
        title: "Prepared (plan-cached) vs ad-hoc citation, repeated λ-parameterized queries",
        expectation: "prepared ≥ 2× faster; gap widens with repetition count",
        headers: vec![
            "repeats".into(),
            "ad-hoc total".into(),
            "prepared total".into(),
            "speedup".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_at_least_2x_faster_than_adhoc() {
        // The acceptance bar is 2×; in practice skipping the rewriting
        // search entirely gives far more. Use enough repeats that the
        // one-off search cost is fully amortized and noise-proof.
        let r = run(1, 64);
        assert!(
            r.speedup >= 2.0,
            "prepared should be ≥ 2× faster, got {:.2}× (adhoc {:?}, prepared {:?})",
            r.speedup,
            r.adhoc,
            r.prepared
        );
    }

    #[test]
    fn workload_queries_are_distinct_constants_same_shape() {
        let cfg = GtopdbConfig::default();
        let ws = parameterized_workload(&cfg, 4);
        assert_eq!(ws.len(), 4);
        // Distinct constants...
        let texts: std::collections::BTreeSet<String> =
            ws.iter().map(ToString::to_string).collect();
        assert_eq!(texts.len(), 4);
        // ...but one plan signature: the shared service searches once.
        let db = generate(&cfg).into_shared();
        let svc = fresh_service(&db, &Arc::new(full_registry()));
        for r in svc.cite_batch(&ws) {
            r.expect("coverable");
        }
        let stats = svc.plan_cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }
}

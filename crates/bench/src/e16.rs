//! E16 — the network front end: N-client cite throughput and
//! cross-connection group commit.
//!
//! The paper frames citation as an always-on service over a live
//! repository; E16 measures the serving layer end to end, over real TCP
//! sockets on the loopback interface:
//!
//! * **cite throughput** — N client connections each streaming
//!   λ-parameterized `cite` commands at one server. Cites run on
//!   lock-free service clones outside the store lock, so throughput
//!   should grow with clients until the protocol round-trip dominates.
//! * **group commit** — N clients each running `begin…commit`
//!   transactions that race into the committer's coalescing window,
//!   against the same workload with the window disabled (every
//!   transaction pays its own version seal and snapshot swap). The
//!   observable is the server's swap counter: **fewer snapshot swaps
//!   than commits** under the grouped arm, equal under the baseline.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use citesys_net::client::Connection;
use citesys_net::protocol::Response;
use citesys_net::script::StoreStats;
use citesys_net::server::{Server, ServerConfig};

use crate::table::{ms, timed, Table};

/// Bench sizing: client-count sweep, cite rounds per client, commit
/// rounds per client.
pub fn config(quick: bool) -> (Vec<usize>, usize, usize) {
    if quick {
        (vec![1, 2, 4], 15, 8)
    } else {
        (vec![1, 2, 4, 8], 80, 30)
    }
}

fn send_ok(conn: &mut Connection, line: &str) -> Vec<String> {
    match conn.send(line).expect("protocol round-trip") {
        Response::Ok(lines) => lines,
        Response::Err { message, .. } => panic!("server error on '{line}': {message}"),
    }
}

/// Spawns a server and loads a GtoPdb-style Family/FamilyIntro dataset
/// of `families` rows through one admin connection, with the paper's V2
/// and V3 views registered and the service warmed by one cite.
pub fn spawn_loaded(commit_window: Duration, families: usize) -> (Server, String) {
    spawn_loaded_with(
        ServerConfig {
            commit_window,
            ..Default::default()
        },
        families,
    )
}

/// [`spawn_loaded`] with full control over the server configuration
/// (E18 sizes the worker pool per experiment point).
pub fn spawn_loaded_with(config: ServerConfig, families: usize) -> (Server, String) {
    let server = Server::spawn(config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut admin = Connection::connect(&addr).expect("connect");
    send_ok(
        &mut admin,
        "schema Family(FID:int, FName:text, Desc:text) key(0)",
    );
    send_ok(&mut admin, "schema FamilyIntro(FID:int, Text:text) key(0)");
    for fid in 0..families as i64 {
        send_ok(
            &mut admin,
            &format!("insert Family({fid}, 'F{fid}', 'D{fid}')"),
        );
        send_ok(
            &mut admin,
            &format!("insert FamilyIntro({fid}, 'intro {fid}')"),
        );
    }
    send_ok(
        &mut admin,
        "view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'",
    );
    send_ok(
        &mut admin,
        "view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'",
    );
    send_ok(&mut admin, "commit");
    // Warm: plan cached, views materialized, service snapshot published.
    send_ok(
        &mut admin,
        "cite Q(FName) :- Family(0, FName, Desc), FamilyIntro(0, Text)",
    );
    (server, addr)
}

/// N client threads, each on its own connection, each sending `rounds`
/// λ-parameterized cite commands. Returns the total cites served.
pub fn concurrent_net_cites(addr: &str, clients: usize, rounds: usize, families: usize) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut conn = Connection::connect(addr).expect("connect");
                    let mut done = 0usize;
                    for r in 0..rounds {
                        let fid = ((c + 1) * r) % families;
                        send_ok(
                            &mut conn,
                            &format!(
                                "cite Q(FName) :- Family({fid}, FName, Desc), FamilyIntro({fid}, Text)"
                            ),
                        );
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .sum()
    })
}

/// N client threads each running `rounds` begin…commit transactions on
/// disjoint keys, with a barrier before every `commit` so the
/// transactions race into the same commit window. Returns the server
/// counters moved by the storm.
pub fn commit_storm(
    server: &Server,
    addr: &str,
    clients: usize,
    rounds: usize,
) -> (StoreStats, Duration) {
    let base = server.stats();
    let barrier = Arc::new(Barrier::new(clients));
    let (_, wall) = timed(|| {
        std::thread::scope(|scope| {
            for c in 0..clients {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut conn = Connection::connect(addr).expect("connect");
                    for r in 0..rounds {
                        let fid = 1_000_000 + (c * rounds + r) as i64;
                        send_ok(&mut conn, "begin");
                        send_ok(&mut conn, &format!("insert Family({fid}, 'N{fid}', 'D')"));
                        send_ok(
                            &mut conn,
                            &format!("insert FamilyIntro({fid}, 'intro {fid}')"),
                        );
                        barrier.wait();
                        send_ok(&mut conn, "commit");
                    }
                });
            }
        })
    });
    let after = server.stats();
    (
        StoreStats {
            commits: after.commits - base.commits,
            snapshot_swaps: after.snapshot_swaps - base.snapshot_swaps,
            group_windows: after.group_windows - base.group_windows,
            largest_group: after.largest_group,
            service_builds: after.service_builds - base.service_builds,
            ..StoreStats::default()
        },
        wall,
    )
}

/// Builds the E16 table.
pub fn table(quick: bool) -> Table {
    let (sweep, cite_rounds, commit_rounds) = config(quick);
    let families = if quick { 16 } else { 64 };
    let mut rows = Vec::new();

    // Arm 1: cite throughput vs client count (one warm server).
    let (server, addr) = spawn_loaded(Duration::from_millis(2), families);
    for &clients in &sweep {
        let (total, wall) = timed(|| concurrent_net_cites(&addr, clients, cite_rounds, families));
        rows.push(vec![
            format!("cite × {clients} client(s)"),
            ms(wall),
            format!("{:.0} cites/s", total as f64 / wall.as_secs_f64().max(1e-9)),
            "-".into(),
        ]);
    }
    server.stop();

    // Arm 2: group commit vs per-transaction commit. Same storm, two
    // servers: one with a coalescing window, one with it disabled.
    let clients = *sweep.last().expect("non-empty sweep");
    for (label, window) in [
        ("group commit (5ms window)", Duration::from_millis(5)),
        ("per-txn commit (no window)", Duration::ZERO),
    ] {
        let (server, addr) = spawn_loaded(window, families);
        let (moved, wall) = commit_storm(&server, &addr, clients, commit_rounds);
        rows.push(vec![
            format!("{label}, {clients} clients × {commit_rounds} txns"),
            ms(wall),
            format!(
                "{} commits / {} swaps / {} windows",
                moved.commits, moved.snapshot_swaps, moved.group_windows
            ),
            format!("largest group {}", moved.largest_group),
        ]);
        server.stop();
    }

    Table {
        id: "E16",
        title: "network front end: concurrent cites and group commit",
        expectation: "cite throughput grows with clients (lock-free read path); \
                      the grouped arm seals fewer snapshot swaps than commits, \
                      the windowless arm roughly one swap per commit",
        headers: vec![
            "workload".into(),
            "wall (ms)".into(),
            "throughput / counters".into(),
            "notes".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_group_commit_coalesces() {
        let (server, addr) = spawn_loaded(Duration::from_millis(50), 8);
        let (moved, _) = commit_storm(&server, &addr, 3, 4);
        assert_eq!(moved.commits, 12);
        assert!(
            moved.snapshot_swaps < moved.commits,
            "coalescing must save swaps: {moved:?}"
        );
        assert!(moved.largest_group >= 2, "{moved:?}");
        server.stop();
    }

    #[test]
    fn e16_cite_throughput_arm_runs() {
        let (server, addr) = spawn_loaded(Duration::from_millis(2), 8);
        assert_eq!(concurrent_net_cites(&addr, 2, 5, 8), 10);
        server.stop();
    }
}

//! E18 — replication: read scale-out across WAL-shipping replicas and
//! steady-state lag under a write storm.
//!
//! The paper's service framing makes citations a *read* workload over a
//! repository that keeps evolving; replication is the standard lever
//! for scaling such reads. E18 measures both halves of the bargain over
//! real loopback TCP:
//!
//! * **read scale-out** — aggregate cite throughput with the same
//!   client pool spread round-robin over the primary plus 0/1/2/4
//!   followers. Followers answer from their own snapshots, so
//!   throughput should grow with the serving set.
//! * **bounded lag** — one follower attached while the primary absorbs
//!   a commit storm; the observable is the follower's
//!   `replica_lag_versions` counter sampled through `stats`: it must
//!   stay bounded during the storm and drain to zero after it.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use citesys_net::client::Connection;
use citesys_net::protocol::Response;
use citesys_net::server::{Server, ServerConfig};

use crate::table::{ms, timed, Table};

/// Bench sizing: follower-count sweep, client count, cite rounds per
/// client, storm commits.
pub fn config(quick: bool) -> (Vec<usize>, usize, usize, usize) {
    if quick {
        (vec![0, 1, 2], 4, 10, 12)
    } else {
        (vec![0, 1, 2, 4], 8, 60, 60)
    }
}

fn send_ok(conn: &mut Connection, line: &str) -> Vec<String> {
    match conn.send(line).expect("protocol round-trip") {
        Response::Ok(lines) => lines,
        Response::Err { message, .. } => panic!("server error on '{line}': {message}"),
    }
}

/// Spawns the E18 primary: the standard loaded dataset, with a worker
/// pool sized for one admin session, one feed per prospective follower,
/// and the whole client pool (each feed permanently occupies a worker).
pub fn spawn_primary(families: usize, replicas: usize, clients: usize) -> (Server, String) {
    crate::e16::spawn_loaded_with(
        ServerConfig {
            workers: 1 + replicas + clients,
            ..Default::default()
        },
        families,
    )
}

/// Spawns `n` followers of the primary at `addr` and blocks until every
/// one of them serves the same answer as the primary for the warm cite.
pub fn spawn_replicas(addr: &str, n: usize, clients: usize) -> Vec<(Server, String)> {
    let mut primary = Connection::connect(addr).expect("connect primary");
    let probe = "cite Q(FName) :- Family(0, FName, Desc), FamilyIntro(0, Text)";
    let expected = send_ok(&mut primary, probe);
    let replicas: Vec<(Server, String)> = (0..n)
        .map(|_| {
            let server = Server::spawn(ServerConfig {
                follow: Some(addr.to_string()),
                workers: clients + 1,
                ..Default::default()
            })
            .expect("bind follower");
            let addr = server.local_addr().to_string();
            (server, addr)
        })
        .collect();
    for (_, faddr) in &replicas {
        let mut conn = Connection::connect(faddr).expect("connect follower");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Response::Ok(lines) = conn.send(probe).expect("round-trip") {
                if lines == expected {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "follower never caught up");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    replicas
}

/// Spreads `clients` cite streams round-robin over `addrs` (primary
/// first, then followers) and returns `(total cites served, streaming
/// wall time)`. Connections are established *before* the clock starts —
/// accepts on an idle worker pool cost up to one poll tick, and E18
/// measures read throughput, not connection setup.
pub fn aggregate_cites(
    addrs: &[String],
    clients: usize,
    rounds: usize,
    families: usize,
) -> (usize, Duration) {
    let barrier = Arc::new(Barrier::new(clients + 1));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = &addrs[c % addrs.len()];
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut conn = Connection::connect(addr).expect("connect");
                    barrier.wait();
                    let mut done = 0usize;
                    for r in 0..rounds {
                        let fid = ((c + 1) * r) % families;
                        send_ok(
                            &mut conn,
                            &format!(
                                "cite Q(FName) :- Family({fid}, FName, Desc), FamilyIntro({fid}, Text)"
                            ),
                        );
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let total = handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .sum();
        (total, start.elapsed())
    })
}

/// Reads the follower's `replica_lag_versions` counter over the wire.
pub fn lag_versions(conn: &mut Connection) -> u64 {
    send_ok(conn, "stats")
        .iter()
        .find_map(|l| l.strip_prefix("replica_lag_versions "))
        .and_then(|v| v.parse().ok())
        .expect("replica_lag_versions in stats")
}

/// Drives `commits` single-insert transactions into the primary while
/// sampling the follower's version lag; returns `(max lag observed
/// during the storm, time for the lag to drain to zero afterwards)`.
pub fn write_storm_lag(primary_addr: &str, follower_addr: &str, commits: usize) -> (u64, Duration) {
    let mut writer = Connection::connect(primary_addr).expect("connect primary");
    let mut probe = Connection::connect(follower_addr).expect("connect follower");
    let mut max_lag = 0u64;
    for i in 0..commits {
        let fid = 2_000_000 + i as i64;
        send_ok(&mut writer, &format!("insert Family({fid}, 'S{fid}', 'D')"));
        send_ok(&mut writer, "commit");
        max_lag = max_lag.max(lag_versions(&mut probe));
    }
    let (_, drain) = timed(|| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while lag_versions(&mut probe) > 0 {
            assert!(Instant::now() < deadline, "lag never drained");
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    (max_lag, drain)
}

/// Builds the E18 table.
pub fn table(quick: bool) -> Table {
    let (sweep, clients, rounds, storm_commits) = config(quick);
    let families = if quick { 16 } else { 64 };
    let mut rows = Vec::new();

    // Arm 1: aggregate cite throughput vs follower count. A fresh
    // primary per point keeps the dataset identical across points.
    for &replicas in &sweep {
        let (primary, paddr) = spawn_primary(families, replicas, clients);
        let followers = spawn_replicas(&paddr, replicas, clients);
        let mut addrs = vec![paddr];
        addrs.extend(followers.iter().map(|(_, a)| a.clone()));
        let (total, wall) = aggregate_cites(&addrs, clients, rounds, families);
        rows.push(vec![
            format!("cite × primary + {replicas} follower(s), {clients} clients"),
            ms(wall),
            format!("{:.0} cites/s", total as f64 / wall.as_secs_f64().max(1e-9)),
            "-".into(),
        ]);
        for (server, _) in followers {
            server.stop();
        }
        primary.stop();
    }

    // Arm 2: steady-state lag under a write storm, one follower.
    let (primary, paddr) = spawn_primary(families, 1, 2);
    let followers = spawn_replicas(&paddr, 1, 2);
    let faddr = followers[0].1.clone();
    let ((max_lag, drain), wall) = timed(|| write_storm_lag(&paddr, &faddr, storm_commits));
    rows.push(vec![
        format!("write storm, {storm_commits} commits, 1 follower"),
        ms(wall),
        format!("max lag {max_lag} version(s)"),
        format!("drained in {}", ms(drain)),
    ]);
    for (server, _) in followers {
        server.stop();
    }
    primary.stop();

    Table {
        id: "E18",
        title: "replication: read scale-out and bounded lag",
        expectation: "aggregate cite throughput grows with followers when cores \
                      allow (each follower answers from its own snapshot with its \
                      own worker pool; on a single-core host the serving set \
                      shares one CPU and the curve flattens); under a write storm \
                      the follower's version lag stays bounded and drains to zero",
        headers: vec![
            "workload".into(),
            "wall (ms)".into(),
            "throughput / lag".into(),
            "notes".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_replicas_serve_reads() {
        let (primary, paddr) = spawn_primary(8, 1, 2);
        let followers = spawn_replicas(&paddr, 1, 2);
        let mut addrs = vec![paddr];
        addrs.extend(followers.iter().map(|(_, a)| a.clone()));
        let (total, _) = aggregate_cites(&addrs, 2, 5, 8);
        assert_eq!(total, 10);
        for (server, _) in followers {
            server.stop();
        }
        primary.stop();
    }

    #[test]
    fn e18_storm_lag_drains() {
        let (primary, paddr) = spawn_primary(8, 1, 2);
        let followers = spawn_replicas(&paddr, 1, 2);
        let (_, drain) = write_storm_lag(&paddr, &followers[0].1, 5);
        assert!(drain < Duration::from_secs(10));
        for (server, _) in followers {
            server.stop();
        }
        primary.stop();
    }
}

//! E10 — citation views beyond vanilla relations (§3 *Other models*):
//! an eagle-i-style RDF triple encoding with per-class citation views.
//!
//! Conjunctive citation views work unchanged over the `Triple(S,P,O)`
//! encoding; the cost grows with class extent because every class view is
//! parameterized by the resource.

use citesys_core::{CitationMode, CitationService, EngineOptions};
use citesys_gtopdb::eaglei::{class_query, class_registry, generate, EagleIConfig};

use crate::table::{ms, timed, Table};

/// One row: class extent sweep.
pub fn run(resources_per_class: usize) -> Vec<String> {
    let db = generate(&EagleIConfig {
        resources_per_class,
        ..Default::default()
    });
    let registry = class_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    let q = class_query("CellLine");
    let (cited, time) = timed(|| engine.cite(&q).expect("coverable"));
    let atoms = cited.aggregate.as_ref().map_or(0, |a| a.atoms.len());
    vec![
        resources_per_class.to_string(),
        db.relation("Triple").expect("exists").len().to_string(),
        cited.answer.len().to_string(),
        atoms.to_string(),
        ms(time),
    ]
}

/// Builds the E10 table.
pub fn table(quick: bool) -> Table {
    let sizes: &[usize] = if quick { &[8, 32] } else { &[8, 32, 128, 512] };
    let rows = sizes.iter().map(|&s| run(s)).collect();
    Table {
        id: "E10",
        title: "RDF (eagle-i triples): class-based parameterized citations",
        expectation:
            "one citation atom per class member (parameterized view); time ~linear in extent",
        headers: vec![
            "resources/class".into(),
            "triples".into(),
            "answers".into(),
            "citation atoms".into(),
            "ms".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_track_class_extent() {
        let r = run(8);
        assert_eq!(r[2], "8");
        assert_eq!(r[3], "8", "one parameterized citation per resource");
    }
}

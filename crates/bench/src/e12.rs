//! E12 — the Reactome-style pathway domain: citation behaviour on a second
//! realistic schema (§1 names Reactome as a motivating system).
//!
//! Sweep the number of pathway roots; cite the participants query (per-
//! pathway parameterized citations with curators) and the pathway scan
//! (min-size collapses to the database-wide citation).

use citesys_core::{CitationMode, CitationService, EngineOptions, PolicySet, RewritePolicy};
use citesys_gtopdb::reactome::{generate, pathway_registry, q_participants, ReactomeConfig};

use crate::table::{ms, timed, Table};

/// One row of the roots sweep.
pub fn run(roots: usize) -> Vec<String> {
    let cfg = ReactomeConfig {
        roots,
        ..Default::default()
    };
    let db = generate(&cfg);
    let registry = pathway_registry();
    let engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        })
        .build()
        .unwrap();
    let (cited, time) = timed(|| engine.cite(&q_participants()).expect("coverable"));
    let min_atoms = cited.aggregate.as_ref().map_or(0, |a| a.atoms.len());

    let union_engine = CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions {
            mode: CitationMode::Formal,
            policies: PolicySet {
                rewritings: RewritePolicy::Union,
                ..Default::default()
            },
            ..Default::default()
        })
        .build()
        .unwrap();
    let union_atoms = union_engine
        .cite(&q_participants())
        .expect("coverable")
        .aggregate
        .map_or(0, |a| a.atoms.len());

    vec![
        roots.to_string(),
        cfg.pathways().to_string(),
        cited.answer.len().to_string(),
        min_atoms.to_string(),
        union_atoms.to_string(),
        ms(time),
    ]
}

/// Builds the E12 table.
pub fn table(quick: bool) -> Table {
    let sweeps: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16, 32] };
    let rows = sweeps.iter().map(|&r| run(r)).collect();
    Table {
        id: "E12",
        title: "Reactome pathways: per-pathway citations for the participants query",
        expectation: "citation atoms grow with pathway count (parameterized views are the only cover); min-size = union here",
        headers: vec![
            "roots".into(),
            "pathways".into(),
            "answers".into(),
            "atoms (min-size)".into(),
            "atoms (union)".into(),
            "ms".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_scale_with_pathways() {
        let small = run(2);
        let big = run(8);
        let atoms = |r: &[String]| r[3].parse::<usize>().unwrap();
        assert!(atoms(&big) > atoms(&small));
    }
}

//! E8 — view selection for a workload (§3 *Defining citations*: do the
//! views "cover" the expected queries?).
//!
//! Greedy (with pair lookahead) vs exhaustive minimal cover over the
//! standard GtoPdb workload and nine candidate views.

use citesys_core::{exhaustive_select, greedy_select};
use citesys_gtopdb::workload::{candidate_views, standard_workload};
use citesys_rewrite::RewriteOptions;

use crate::table::{ms, timed, Table};

/// Builds the E8 table.
pub fn table() -> Table {
    let workload = standard_workload();
    let candidates = candidate_views();
    let opts = RewriteOptions::default();

    let (greedy, greedy_time) = timed(|| greedy_select(&workload, &candidates, &opts));
    let (exhaustive, exhaustive_time) = timed(|| exhaustive_select(&workload, &candidates, &opts));

    let mut rows = vec![vec![
        "greedy".to_string(),
        greedy.chosen.len().to_string(),
        greedy.covers_all().to_string(),
        greedy.cover_checks.to_string(),
        ms(greedy_time),
    ]];
    if let Some(e) = &exhaustive {
        rows.push(vec![
            "exhaustive".to_string(),
            e.chosen.len().to_string(),
            e.covers_all().to_string(),
            e.cover_checks.to_string(),
            ms(exhaustive_time),
        ]);
    }
    Table {
        id: "E8",
        title: "View selection: greedy vs exhaustive cover (6-query workload, 9 candidates)",
        expectation:
            "both cover the workload; greedy uses far fewer cover checks, near-optimal size",
        headers: vec![
            "algorithm".into(),
            "views chosen".into(),
            "covers all".into(),
            "cover checks".into(),
            "ms".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_algorithms_cover() {
        let workload = standard_workload();
        let candidates = candidate_views();
        let opts = RewriteOptions::default();
        let g = greedy_select(&workload, &candidates, &opts);
        assert!(g.covers_all());
        let e = exhaustive_select(&workload, &candidates, &opts).expect("coverable");
        assert!(e.covers_all());
        // Greedy within 2× of optimal on this instance.
        assert!(g.chosen.len() <= 2 * e.chosen.len());
    }
}

//! E5 — schema-level pruning of the rewriting search (§3: "It may also be
//! possible to do some of the reasoning at the schema level").
//!
//! The paper's query plus `m` *trap* views: each trap matches the `Family`
//! subgoal syntactically but joins in `Committee`, so it can never appear
//! in an equivalent rewriting. Without pruning, every trap burns candidate
//! generation, expansion and an equivalence check; with pruning each is
//! rejected by a constant-time schema test.

use citesys_cq::parse_query;
use citesys_gtopdb::synthetic::trap_views;
use citesys_rewrite::{rewrite, RewriteOptions, RewriteStats, ViewSet};

use crate::table::{ms, timed, Table};

/// Measurement for one `(m, prune)` cell.
pub struct Cell {
    /// Search statistics.
    pub stats: RewriteStats,
    /// Wall time.
    pub time: std::time::Duration,
    /// Rewritings found.
    pub rewritings: usize,
}

/// Runs the paper query against the paper views + `m` traps.
pub fn run(m: usize, prune: bool) -> Cell {
    let q = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        .expect("well-formed");
    let mut views = vec![
        parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").expect("ok"),
        parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)").expect("ok"),
        parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)").expect("ok"),
    ];
    views.extend(trap_views(m));
    let set = ViewSet::new(views).expect("distinct names");
    let opts = RewriteOptions {
        prune,
        ..Default::default()
    };
    let (out, time) = timed(|| rewrite(&q, &set, &opts).expect("within budget"));
    Cell {
        stats: out.stats,
        time,
        rewritings: out.rewritings.len(),
    }
}

/// Builds the E5 table.
pub fn table(quick: bool) -> Table {
    let ms_counts: &[usize] = if quick {
        &[0, 8, 32]
    } else {
        &[0, 8, 32, 128, 512]
    };
    let mut rows = Vec::new();
    for &m in ms_counts {
        let with = run(m, true);
        let without = run(m, false);
        rows.push(vec![
            m.to_string(),
            with.stats.views_pruned.to_string(),
            with.stats.equivalence_checks.to_string(),
            ms(with.time),
            without.stats.equivalence_checks.to_string(),
            ms(without.time),
            with.rewritings.to_string(),
        ]);
        assert_eq!(
            with.rewritings, without.rewritings,
            "pruning must not change results"
        );
    }
    Table {
        id: "E5",
        title: "Schema-level view pruning vs full enumeration (paper query + m trap views)",
        expectation: "pruned work constant in m; unpruned equivalence checks grow ~linearly; identical rewritings",
        headers: vec![
            "trap views m".into(),
            "views pruned".into(),
            "eq-checks (pruned)".into(),
            "ms (pruned)".into(),
            "eq-checks (no prune)".into(),
            "ms (no prune)".into(),
            "rewritings".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_is_effective_and_safe() {
        let with = run(32, true);
        let without = run(32, false);
        assert_eq!(with.rewritings, 2);
        assert_eq!(without.rewritings, 2);
        assert_eq!(with.stats.views_pruned, 32);
        assert!(
            without.stats.equivalence_checks > with.stats.equivalence_checks,
            "{} vs {}",
            without.stats.equivalence_checks,
            with.stats.equivalence_checks
        );
    }
}

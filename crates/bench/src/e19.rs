//! E19 — the event-driven transport: connection scale, tail latency
//! under an idle-socket storm, and pipelining throughput.
//!
//! The blocking transport (E16/E18) parks one worker thread per live
//! session, so its concurrency ceiling *is* the worker count. The
//! event transport multiplexes every socket over a fixed worker set;
//! E19 measures what that buys, over real loopback TCP:
//!
//! * **connections held** — how many concurrent clients get a banner
//!   (i.e. a live, registered session) from a two-worker event server
//!   versus a blocking pool of the same size. The event arm should
//!   hold thousands; the blocking arm exactly `workers`.
//! * **tail latency under storm** — p50/p99 cite latency for a pool of
//!   active clients while thousands of idle sockets sit registered on
//!   the same pollers. Idle interest must cost (almost) nothing.
//! * **pipelined vs sync** — insert throughput at pipeline depth 64
//!   against one-round-trip-per-command on the same transport. The
//!   acceptance bar is ≥2× on a 64-deep pipeline.

use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use citesys_net::client::Connection;
use citesys_net::protocol::Response;
use citesys_net::server::ServerConfig;

use crate::e16::spawn_loaded_with;
use crate::table::{ms, timed, Table};

/// Bench sizing: idle sockets held, active citer clients, cite rounds
/// per active client, pipelined rounds.
pub fn config(quick: bool) -> (usize, usize, usize, usize) {
    if quick {
        (300, 8, 5, 3)
    } else {
        (5000, 200, 5, 10)
    }
}

/// Pipeline depth for the throughput arm (the acceptance criterion's
/// "64-deep pipeline").
pub const PIPELINE_DEPTH: usize = 64;

fn send_ok(conn: &mut Connection, line: &str) -> Vec<String> {
    match conn.send(line).expect("protocol round-trip") {
        Response::Ok(lines) => lines,
        Response::Err { message, .. } => panic!("server error on '{line}': {message}"),
    }
}

/// Spawns the E19 event-transport server with the standard loaded
/// dataset: two workers, room for `capacity` connections.
pub fn spawn_event_server(families: usize, capacity: usize) -> (citesys_net::Server, String) {
    spawn_loaded_with(
        ServerConfig {
            event_loop: true,
            workers: 2,
            max_connections: capacity,
            idle_timeout: Duration::from_secs(300),
            commit_window: Duration::from_millis(2),
            ..Default::default()
        },
        families,
    )
}

/// Opens up to `target` connections, counting how many produce a
/// banner within `timeout` — i.e. how many the server actually holds
/// as live sessions. Stops at the first connection that gets nothing
/// (on the blocking transport that is the first one past the worker
/// pool). The sockets stay open until the count is complete.
pub fn connections_held(addr: &str, target: usize, timeout: Duration) -> usize {
    let mut held = Vec::with_capacity(target);
    for _ in 0..target {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            break;
        };
        stream.set_read_timeout(Some(timeout)).expect("socket opt");
        let mut buf = [0u8; 64];
        let mut seen = Vec::new();
        let got_banner = loop {
            match stream.read(&mut buf) {
                Ok(0) => break false,
                Ok(n) => {
                    seen.extend_from_slice(&buf[..n]);
                    if seen.contains(&b'\n') {
                        break true;
                    }
                }
                Err(_) => break false,
            }
        };
        if !got_banner {
            break;
        }
        held.push(stream);
    }
    held.len()
}

/// Holds `n` idle sockets against the server (banner consumed, then
/// silence). The returned streams keep the sessions registered.
pub fn hold_idle(addr: &str, n: usize) -> Vec<TcpStream> {
    let mut idle = Vec::with_capacity(n);
    for _ in 0..n {
        let mut stream = TcpStream::connect(addr).expect("connect idle");
        let mut buf = [0u8; 64];
        let mut seen = Vec::new();
        while !seen.contains(&b'\n') {
            let got = stream.read(&mut buf).expect("banner read");
            assert!(got > 0, "EOF before banner");
            seen.extend_from_slice(&buf[..got]);
        }
        idle.push(stream);
    }
    idle
}

/// `clients` threads each running `rounds` cites; returns every
/// per-cite latency, sorted ascending (index for percentiles).
pub fn cite_latencies(addr: &str, clients: usize, rounds: usize, families: usize) -> Vec<Duration> {
    let mut all = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut conn = Connection::connect(addr).expect("connect");
                    let mut samples = Vec::with_capacity(rounds);
                    for r in 0..rounds {
                        let fid = ((c + 1) * (r + 1)) % families;
                        let start = Instant::now();
                        send_ok(
                            &mut conn,
                            &format!(
                                "cite Q(FName) :- Family({fid}, FName, Desc), FamilyIntro({fid}, Text)"
                            ),
                        );
                        samples.push(start.elapsed());
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panics"))
            .collect::<Vec<_>>()
    });
    all.sort();
    all
}

/// The given percentile (0–100) of an ascending latency sample.
pub fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    assert!(!sorted.is_empty());
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

/// One round of `depth` inserts on fresh keys, either pipelined (one
/// batch on the wire, responses read in a single pass) or synchronous
/// (a round trip per insert). Returns ops/second over `rounds` rounds.
pub fn insert_throughput(
    addr: &str,
    depth: usize,
    rounds: usize,
    pipelined: bool,
    key_base: i64,
) -> f64 {
    let mut conn = Connection::connect(addr).expect("connect");
    let mut key = key_base;
    let (_, wall) = timed(|| {
        for _ in 0..rounds {
            let lines: Vec<String> = (0..depth)
                .map(|_| {
                    key += 1;
                    format!("insert Family({key}, 'P{key}', 'D')")
                })
                .collect();
            if pipelined {
                let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
                for resp in conn.pipeline(&refs).expect("pipeline") {
                    if let Response::Err { message, .. } = resp {
                        panic!("pipelined insert failed: {message}");
                    }
                }
            } else {
                for line in &lines {
                    send_ok(&mut conn, line);
                }
            }
            send_ok(&mut conn, "rollback");
        }
    });
    (depth * rounds) as f64 / wall.as_secs_f64().max(1e-9)
}

#[cfg(target_os = "linux")]
fn process_threads() -> String {
    match std::fs::read_dir("/proc/self/task") {
        Ok(dir) => format!("{} process threads", dir.count()),
        Err(_) => "-".to_string(),
    }
}

#[cfg(not(target_os = "linux"))]
fn process_threads() -> String {
    "-".to_string()
}

/// Builds the E19 table.
pub fn table(quick: bool) -> Table {
    let (idle_held, active, cite_rounds, pipe_rounds) = config(quick);
    let families = if quick { 16 } else { 64 };
    let mut rows = Vec::new();

    // Arm 1: connections held, event vs blocking, same worker count.
    let (event, addr) = spawn_event_server(families, idle_held + active + 64);
    let (got, wall) = timed(|| connections_held(&addr, idle_held, Duration::from_millis(500)));
    rows.push(vec![
        format!("connections held, event loop ({idle_held} offered, 2 workers)"),
        ms(wall),
        format!("{got} held"),
        process_threads(),
    ]);
    let (blocking, baddr) = spawn_loaded_with(
        ServerConfig {
            workers: 2,
            ..Default::default()
        },
        families,
    );
    let offered = 2 + 8;
    let (got, wall) = timed(|| connections_held(&baddr, offered, Duration::from_millis(200)));
    rows.push(vec![
        format!("connections held, blocking pool ({offered} offered, 2 workers)"),
        ms(wall),
        format!("{got} held"),
        "ceiling = workers".to_string(),
    ]);
    blocking.stop();

    // Arm 2: cite tail latency while `idle_held` idle sockets sit on
    // the same two pollers. Arm 1's sockets just dropped; wait for the
    // pollers to reap them so the capacity math stays exact.
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while event.open_connections() > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let idle = hold_idle(&addr, idle_held.saturating_sub(active));
    let (latencies, wall) = timed(|| cite_latencies(&addr, active, cite_rounds, families));
    rows.push(vec![
        format!(
            "cite storm: {active} active over {} idle sockets",
            idle.len()
        ),
        ms(wall),
        format!(
            "p50 {} / p99 {}",
            ms(percentile(&latencies, 50)),
            ms(percentile(&latencies, 99))
        ),
        format!("{} cites", latencies.len()),
    ]);
    drop(idle);

    // Arm 3: pipelined vs sync insert throughput at depth 64.
    let sync_ops = insert_throughput(&addr, PIPELINE_DEPTH, pipe_rounds, false, 2_000_000);
    let pipe_ops = insert_throughput(&addr, PIPELINE_DEPTH, pipe_rounds, true, 3_000_000);
    rows.push(vec![
        format!("insert throughput, depth-{PIPELINE_DEPTH} pipeline vs sync"),
        "-".to_string(),
        format!("{pipe_ops:.0} vs {sync_ops:.0} ops/s"),
        format!("pipelining ×{:.1}", pipe_ops / sync_ops.max(1e-9)),
    ]);
    event.stop();

    Table {
        id: "E19",
        title: "event-driven transport: connection scale, tails, pipelining",
        expectation: "the event arm holds every offered connection on two workers \
                      while the blocking arm stops at the pool size; p99 cite \
                      latency stays in single-digit ms over thousands of idle \
                      sockets; depth-64 pipelining beats sync by well over 2x",
        headers: vec![
            "workload".into(),
            "wall (ms)".into(),
            "result".into(),
            "notes".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_event_transport_outholds_the_blocking_pool() {
        let (event, addr) = spawn_event_server(8, 128);
        let event_held = connections_held(&addr, 48, Duration::from_millis(500));
        event.stop();
        let (blocking, addr) = spawn_loaded_with(
            ServerConfig {
                workers: 2,
                ..Default::default()
            },
            8,
        );
        let blocking_held = connections_held(&addr, 8, Duration::from_millis(150));
        blocking.stop();
        assert_eq!(event_held, 48, "event loop holds every offered socket");
        assert!(
            blocking_held <= 4,
            "blocking pool capped near its worker count, held {blocking_held}"
        );
    }

    #[test]
    fn e19_pipelining_beats_sync_inserts() {
        let (server, addr) = spawn_event_server(8, 64);
        let sync_ops = insert_throughput(&addr, PIPELINE_DEPTH, 2, false, 2_000_000);
        let pipe_ops = insert_throughput(&addr, PIPELINE_DEPTH, 2, true, 3_000_000);
        server.stop();
        // Acceptance bar is 2x; assert a safety margin below it so a
        // noisy CI core cannot flake the suite.
        assert!(
            pipe_ops >= 1.5 * sync_ops,
            "pipelining too slow: {pipe_ops:.0} vs {sync_ops:.0} ops/s"
        );
    }

    #[test]
    fn e19_percentiles_index_sanely() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&sorted, 50), Duration::from_millis(51));
        assert_eq!(percentile(&sorted, 99), Duration::from_millis(100));
        assert_eq!(percentile(&sorted, 100), Duration::from_millis(100));
    }
}

//! The stateful interpreter behind every citesys front end.
//!
//! ```text
//! # comments start with '#'
//! schema Family(FID:int, FName:text, Desc:text) key(0)
//! insert Family(11, 'Calcitonin', 'C1')
//! view λ FID. V1(FID, N, D) :- Family(FID, N, D) | cite λ FID. CV1(FID, P) :- Committee(FID, P) | static database=GtoPdb
//! commit
//! cite Q(N) :- Family(F, N, D) | format bibtex | mode formal | policy union
//! begin                          # buffer a transaction…
//! insert Family(14, 'Ghrelin', 'G1')
//! delete Family(11, 'Calcitonin', 'C1')
//! commit                         # …applied atomically as one changeset
//! tables
//! dump Family
//! ```
//!
//! Commands are parsed by the shared [`protocol`]
//! module — the same grammar the TCP wire protocol speaks — and executed
//! here. The state splits in two:
//!
//! * [`SharedStore`] — the versioned database, registry, plan caches and
//!   the cached [`CitationService`], behind an `Arc<Mutex<…>>` so many
//!   sessions (the TCP server's connections) can share one store. A
//!   solo [`Interpreter`] simply owns a private one.
//! * [`Interpreter`] — per-session state: the open transaction buffer,
//!   the last fixity token, the trace flag and accumulated output.
//!
//! `begin` opens a transaction: subsequent `insert`/`delete` lines are
//! buffered and `commit` applies them **atomically** as one
//! [`Changeset`] (all-or-nothing; `rollback` discards the buffer). With
//! or without `begin`, each `commit` carries the committed ops into the
//! cached service's materialized views by batch delta maintenance — one
//! snapshot swap per commit, however many tuples changed.
//!
//! **Session isolation** ([`Interpreter::session`], used by the TCP
//! server): every mutation buffers in the session until its `commit`,
//! which submits the buffer to the server's
//! [group committer](crate::group::GroupCommitter). Racing commits from
//! different connections coalesce into one merged changeset and one
//! snapshot swap per commit window; a connection that dies mid-
//! transaction takes its buffer with it — nothing leaks into the shared
//! store.
//!
//! Every `cite` runs against the latest committed version and embeds a
//! fixity token; `verify` re-checks the last citation. The interpreter
//! keeps one [`CitationService`] snapshot per committed version and
//! shares its rewrite-plan caches across `cite` commands, so a script
//! (or a long-running `citesys serve` session) that re-cites the same
//! query shape — even at different λ-parameter constants — pays for the
//! rewriting search only once. Registering a view invalidates the shared
//! plan caches (the rewriting space changed).

use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use citesys_core::durable::{SECTION_DATABASE, SECTION_PLANS, SECTION_REGISTRY, SECTION_VIEWS};
use citesys_core::{
    cite_with_service, cite_with_service_spanned, format_citation, verify, CitationRegistry,
    CitationService, CitationView, Coverage, DurableHandle, EngineOptions, FixityToken, PlanCache,
};
use citesys_ingest::{
    append_audit, verify_sources, AuditRecord, CsvReader, DatasetEntry, DatasetManifest,
    HashCountRead, IngestConfig, JsonlReader, SourceFile, VerifyIssue, AUDIT_FILE, MANIFEST_FILE,
};
use citesys_obs::{SpanSet, SpanTimer};
use citesys_storage::durability::{database_to_text, versioned_to_text};
use citesys_storage::{
    digest_database, to_csv, Changeset, CheckpointData, Database, Digest, RelationSchema,
    StorageError, Tuple, VersionedDatabase,
};
use parking_lot::Mutex;

use crate::group::{CommitAck, GroupCommitHandle};
use crate::obs::{slow_cite_line, StoreObs};
use crate::protocol::{self, CiteSpec, Command, ViewSpec};

/// What went wrong, at the granularity the CLI's exit codes report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScriptErrorKind {
    /// The script itself is malformed (unknown command, bad syntax).
    Parse,
    /// The script is well-formed but a data/citation operation failed.
    Citation,
    /// The command mutates state but this store is a read-only replica
    /// (`serve --follow`); the message names the primary to write to.
    Readonly,
}

/// A script-level error, tagged with its 1-based line number and kind.
#[derive(Debug)]
pub struct ScriptError {
    /// Line the error occurred on.
    pub line: usize,
    /// Parse vs citation/runtime failure (drives the CLI exit code).
    pub kind: ScriptErrorKind,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

/// Internal command-level error: a kind plus a message.
pub(crate) type CmdError = (ScriptErrorKind, String);

pub(crate) fn parse_err(message: impl Into<String>) -> CmdError {
    (ScriptErrorKind::Parse, message.into())
}

pub(crate) fn cite_err(message: impl Into<String>) -> CmdError {
    (ScriptErrorKind::Citation, message.into())
}

pub(crate) fn readonly_err(message: impl Into<String>) -> CmdError {
    (ScriptErrorKind::Readonly, message.into())
}

// ---------------------------------------------------------------------------
// Shared store
// ---------------------------------------------------------------------------

/// Change-detection fingerprint of a store's persistable plan state:
/// `(cache generation, cached plans, fresh searches, evictions, staged
/// import?)` — see [`SharedStore::plan_fingerprint`].
pub type PlanFingerprint = (u64, usize, u64, u64, bool);

/// Write-path and cache counters of a [`SharedStore`] — the numbers the
/// `stats` command prints and the E16 group-commit experiment reads.
///
/// Since the observability migration this is a **snapshot assembled
/// from the registry-backed [`StoreObs`] instruments** (see
/// [`SharedStore::stats`]): the counters live in the metrics registry
/// and this struct only reads them out, so `stats` and `metrics`
/// cannot disagree.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StoreStats {
    /// Commit requests acknowledged (one per `commit` command).
    pub commits: u64,
    /// Delta-maintained service snapshot publications. Under group
    /// commit many commits share one swap, so this stays **below**
    /// `commits` when concurrent transactions coalesce.
    pub snapshot_swaps: u64,
    /// Group-commit windows processed by the committer thread.
    pub group_windows: u64,
    /// Largest number of transactions merged into one window.
    pub largest_group: u64,
    /// Cold service (re)builds — cites that could not reuse the cached
    /// snapshot service.
    pub service_builds: u64,
    /// Replication feeds currently attached (primary side).
    pub replicas_connected: u64,
    /// WAL-equivalent records shipped to followers, summed over every
    /// feed this store ever served (primary side).
    pub replica_records_shipped: u64,
    /// Versions the primary is known to be ahead of this follower
    /// (follower side; 0 when caught up or not following).
    pub replica_lag_versions: u64,
    /// Shipped records received but not yet applied locally (follower
    /// side; nonzero only transiently while a record is mid-apply).
    pub replica_lag_records: u64,
    /// Times the follower lost its primary and entered backoff
    /// (follower side).
    pub replica_reconnects: u64,
}

/// The shareable half of an interpreter: schema, versioned store,
/// citation registry, plan caches, the cached per-version service and
/// the write-path counters.
///
/// A solo [`Interpreter`] owns a private one; the TCP server puts one
/// behind an `Arc<Mutex<…>>` and hands clones of the `Arc` to every
/// connection session and to the group committer.
pub struct SharedStore {
    store: Option<VersionedDatabase>,
    schemas: Vec<RelationSchema>,
    registry: CitationRegistry,
    /// Shared rewrite-plan caches: one for strict cites, one for cites
    /// with the `partial` fallback (the two can cache different plans for
    /// the same query). Cleared when a view is registered.
    plans_strict: Arc<PlanCache>,
    plans_partial: Arc<PlanCache>,
    /// Plan-cache text staged by `serve --plan-cache`, loaded at the
    /// first `cite` (after the session's `view` commands have settled the
    /// registry — loading earlier would be dropped by the cache swap each
    /// registration performs).
    pending_plan_import: Option<String>,
    /// Service over the latest committed snapshot, rebuilt on demand and
    /// carried across commits by batch delta maintenance.
    service: Option<(u64, bool, CitationService)>,
    /// Bumped whenever a view registration replaces the plan caches —
    /// part of [`plan_fingerprint`](Self::plan_fingerprint), so the
    /// persister notices the rewriting space changed even when the new
    /// cache's counters coincide with the old one's.
    plan_generation: u64,
    /// Durability backend (`serve --data-dir`): every sealed commit is
    /// WAL-logged **before** it is acknowledged, and schema/view
    /// registrations (plus the `checkpoint` command) write a full
    /// checkpoint — database, registry, materialized views and plan
    /// cache under one manifest.
    durability: Option<DurableHandle>,
    /// Auto-checkpoint threshold (`serve --checkpoint-every <n>`): after
    /// a commit or replica apply pushes the WAL to `n` records or more,
    /// a checkpoint is written — which, under a retention policy,
    /// archives the superseded checkpoint as a time-travel anchor.
    checkpoint_every: Option<u64>,
    /// Registry-backed instruments: the `stats` counters' single source
    /// of truth plus the latency histograms and the scrape registry.
    obs: StoreObs,
    /// Slow-cite threshold (`serve --slow-cite-ms <n>`): cites at or
    /// over `n` milliseconds end-to-end log one `slow-cite` line to
    /// stderr with their per-stage span breakdown. `None` disables.
    slow_cite_ms: Option<u64>,
    /// Follower role (`serve --follow`): the primary's address plus
    /// stream progress. `None` on a primary / standalone store.
    follow: Option<FollowState>,
    /// Per-feed shipped counters (primary side), keyed by peer address.
    replicas: Vec<ReplicaPeer>,
}

/// Follower-side replication progress.
#[derive(Clone, Debug)]
struct FollowState {
    /// Address of the primary this store replicates.
    primary: String,
    /// Highest version the primary has reported (via `wal` or `ping`).
    primary_version: u64,
    /// Whether the feed connection is currently up.
    connected: bool,
}

/// Primary-side per-feed telemetry.
#[derive(Clone, Debug)]
struct ReplicaPeer {
    /// The follower's peer address.
    peer: String,
    /// Records shipped on this feed.
    shipped: u64,
}

impl Default for SharedStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedStore {
    /// An empty store with no schema.
    pub fn new() -> Self {
        SharedStore {
            store: None,
            schemas: Vec::new(),
            registry: CitationRegistry::new(),
            plans_strict: Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY)),
            plans_partial: Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY)),
            pending_plan_import: None,
            service: None,
            plan_generation: 0,
            durability: None,
            checkpoint_every: None,
            obs: StoreObs::new(),
            slow_cite_ms: None,
            follow: None,
            replicas: Vec::new(),
        }
    }

    /// Wraps a fresh store for sharing across sessions.
    pub fn new_shared() -> Arc<Mutex<SharedStore>> {
        Arc::new(Mutex::new(SharedStore::new()))
    }

    /// Opens a **durable** store over a data directory: recovers the
    /// newest checkpoint (schemas, data, registry, materialized views,
    /// plan cache), replays the write-ahead log to the last acknowledged
    /// commit through the normal delta-maintenance path, and keeps the
    /// handle so every future commit is logged before it is acked. A
    /// fresh directory starts an empty durable store.
    pub fn open_durable(dir: impl AsRef<Path>) -> Result<SharedStore, String> {
        Self::open_durable_with_retention(dir, 0)
    }

    /// [`open_durable`](Self::open_durable) with a checkpoint retention
    /// policy: each checkpoint archives the superseded one (plus its WAL
    /// segment) as a time-travel anchor, keeping the newest `retain`
    /// anchors so `cite … @ <version>` can reach back past restarts.
    pub fn open_durable_with_retention(
        dir: impl AsRef<Path>,
        retain: usize,
    ) -> Result<SharedStore, String> {
        let handle = DurableHandle::file_with_retention(dir, retain).map_err(|e| e.to_string())?;
        let (handle, recovered) = CitationService::open_with(handle).map_err(|e| e.to_string())?;
        let mut sh = SharedStore::new();
        sh.durability = Some(handle);
        if let Some(rec) = recovered {
            let version = rec.store.latest_version();
            sh.schemas = rec.store.schemas().to_vec();
            sh.registry = rec.service.registry().as_ref().clone();
            // The recovered service owns the recovered plan cache; the
            // store's strict cache must be the same object so exports
            // and fingerprints see it.
            sh.plans_strict = Arc::clone(rec.service.plan_cache());
            sh.store = Some(rec.store);
            sh.service = Some((version, false, rec.service));
        }
        Ok(sh)
    }

    /// [`open_durable`](Self::open_durable), wrapped for sharing across
    /// sessions (the TCP server's shape).
    pub fn open_durable_shared(dir: impl AsRef<Path>) -> Result<Arc<Mutex<SharedStore>>, String> {
        Ok(Arc::new(Mutex::new(SharedStore::open_durable(dir)?)))
    }

    /// [`open_durable_with_retention`](Self::open_durable_with_retention),
    /// wrapped for sharing across sessions (the TCP server's shape).
    pub fn open_durable_shared_with_retention(
        dir: impl AsRef<Path>,
        retain: usize,
    ) -> Result<Arc<Mutex<SharedStore>>, String> {
        Ok(Arc::new(Mutex::new(
            SharedStore::open_durable_with_retention(dir, retain)?,
        )))
    }

    /// True when this store logs commits to a durable data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Arms record-based auto-checkpointing: after any commit (local or
    /// replicated) leaves `n` or more WAL records, a checkpoint is
    /// written automatically. `None` disables (the default).
    pub fn set_checkpoint_every(&mut self, n: Option<u64>) {
        self.checkpoint_every = n;
    }

    /// The oldest version `cite … @ <version>` can currently serve:
    /// the in-memory op-log base, lowered to the durable backend's
    /// retained-history floor when anchors reach further back.
    pub fn history_base_version(&self) -> u64 {
        let mem = self.base_version();
        match self
            .durability
            .as_ref()
            .and_then(DurableHandle::history_floor)
        {
            Some(floor) => floor.min(mem),
            None => mem,
        }
    }

    /// Checkpoints the durable backend holds: the live one plus every
    /// retained time-travel anchor (0 without `--data-dir`).
    pub fn checkpoints_retained(&self) -> usize {
        self.durability
            .as_ref()
            .map_or(0, DurableHandle::checkpoints_retained)
    }

    /// Write-ahead-log records accumulated since the last checkpoint
    /// (0 without `--data-dir`).
    pub fn wal_records(&self) -> usize {
        self.durability
            .as_ref()
            .map_or(0, DurableHandle::wal_records)
    }

    /// Checkpoints the durable store: the committed database, the
    /// registry, the cached service's materialized views and the plan
    /// cache, atomically under one manifest; then resets the WAL.
    /// Errors without a durable backend. Pending (uncommitted) ops are
    /// excluded — they remain in memory and the next commit WAL-logs
    /// them as usual.
    pub(crate) fn write_checkpoint(&mut self) -> Result<u64, CmdError> {
        if self.durability.is_none() {
            return Err(cite_err(
                "no durable data directory (start with serve --data-dir <path>)",
            ));
        }
        let ckpt = SpanTimer::start(self.obs.timings_enabled());
        let data = self.assemble_checkpoint_data()?;
        let version = data.version;
        self.durability
            .as_mut()
            .expect("checked above")
            .write_checkpoint(&data)
            .map_err(|e| cite_err(e.to_string()))?;
        self.obs
            .checkpoint_seconds
            .observe_micros(ckpt.elapsed_micros());
        Ok(version)
    }

    /// Writes a checkpoint when auto-checkpointing is armed and the WAL
    /// has reached the configured record threshold. Runs after the
    /// commit is acknowledged-equivalent (WAL fsynced, version cut), so
    /// a failure here cannot lose the commit — it surfaces as the
    /// command's error while the data stays replayable from the WAL.
    fn maybe_auto_checkpoint(&mut self) -> Result<(), CmdError> {
        let Some(every) = self.checkpoint_every else {
            return Ok(());
        };
        if self.durability.is_some() && self.wal_records() as u64 >= every {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Trims queryable history to the newest `window` versions: write a
    /// checkpoint (folding the WAL, archiving the superseded checkpoint
    /// as an anchor under the retention policy), drop durable anchors
    /// below the replay base for the new floor, and compact the
    /// in-memory op log. Returns `(floor, anchors pruned)`.
    pub(crate) fn compact_history(&mut self, window: u64) -> Result<(u64, usize), CmdError> {
        let latest = self.latest_version();
        let floor = latest.saturating_sub(window);
        let mut pruned = 0usize;
        if self.durability.is_some() {
            // Checkpoint first so coverage stays contiguous: the WAL is
            // folded into the live checkpoint and the superseded one
            // becomes an anchor before anything is dropped.
            self.write_checkpoint()?;
            pruned = self
                .durability
                .as_mut()
                .expect("checked above")
                .prune_history(floor)
                .map_err(|e| cite_err(e.to_string()))?;
        }
        if let Some(store) = &mut self.store {
            store
                .compact_to(floor)
                .map_err(|e| cite_err(e.to_string()))?;
        }
        Ok((floor, pruned))
    }

    /// Assembles the four checkpoint sections — committed database,
    /// registry, materialized views, plan cache — from the in-memory
    /// state, without touching any backend. This is the payload both of
    /// [`write_checkpoint`](Self::write_checkpoint) and of the `ckpt`
    /// frame a replication feed sends to bootstrap a follower (so a
    /// primary replicates even without `--data-dir`).
    pub(crate) fn assemble_checkpoint_data(&self) -> Result<CheckpointData, CmdError> {
        let (version, database_text) = match &self.store {
            Some(store) => (
                store.latest_version(),
                versioned_to_text(store).map_err(cite_err)?,
            ),
            None => {
                // No data yet: checkpoint the declared schemas at v0 so
                // a restart can still replay later WAL records.
                let empty = VersionedDatabase::new(self.schemas.clone())
                    .map_err(|e| cite_err(e.to_string()))?;
                (0, versioned_to_text(&empty).map_err(cite_err)?)
            }
        };
        let views = self
            .service
            .as_ref()
            .filter(|(v, partial, _)| *v == version && !*partial)
            .map(|(_, _, svc)| svc.materialized_views())
            .unwrap_or_default();
        Ok(CheckpointData {
            version,
            sections: vec![
                (SECTION_DATABASE.to_string(), database_text),
                (SECTION_REGISTRY.to_string(), self.registry.to_text()),
                (SECTION_VIEWS.to_string(), database_to_text(&views)),
                (SECTION_PLANS.to_string(), self.export_plans()),
            ],
        })
    }

    /// DDL durability: schema declarations and view registrations are
    /// not changesets, so they cannot ride the WAL — checkpoint instead
    /// (rare, and the natural point to re-snapshot anyway since a view
    /// registration invalidates the plan cache).
    fn checkpoint_after_ddl(&mut self) -> Result<(), CmdError> {
        if self.durability.is_some() {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// The durable backend's on-disk data directory (`None` without
    /// `--data-dir` or for in-memory backends) — where the dataset
    /// manifest and audit log live by default.
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.durability
            .as_ref()
            .and_then(|h| h.data_dir().map(Path::to_path_buf))
    }

    /// Admits a header-declared relation for a bulk load: matches it
    /// against the declared (or live) schema, declaring it — with the
    /// DDL checkpoint — when the store has not been initialized yet,
    /// the same window `schema` itself has. A live store cannot grow
    /// relations: older snapshots replay from the schema set, so a late
    /// declaration would drift their fixity digests.
    pub(crate) fn ensure_relation(&mut self, schema: &RelationSchema) -> Result<(), CmdError> {
        let name = schema.name.as_str();
        let live = self.store.is_some();
        let existing = match &self.store {
            Some(store) => store.schemas().iter().find(|s| s.name == schema.name),
            None => self.schemas.iter().find(|s| s.name == schema.name),
        };
        match existing {
            Some(ex) => {
                if ex.attributes != schema.attributes {
                    return Err(cite_err(format!(
                        "relation {name}: header columns do not match the declared schema"
                    )));
                }
                Ok(())
            }
            None if live => Err(cite_err(format!(
                "relation {name} is not declared and the store already holds data: \
                 declare schemas before any data command"
            ))),
            None => {
                self.schemas.push(schema.clone());
                self.checkpoint_after_ddl()?;
                Ok(())
            }
        }
    }

    // -----------------------------------------------------------------
    // Replication
    // -----------------------------------------------------------------

    /// Marks this store as a read-only replica of `primary`. Sessions
    /// reject every mutating command with a `readonly` error from here
    /// on; only the replication runtime applies changes.
    pub fn set_follow(&mut self, primary: String) {
        self.follow = Some(FollowState {
            primary,
            primary_version: 0,
            connected: false,
        });
    }

    /// The primary's address when this store is a follower.
    pub fn primary_addr(&self) -> Option<&str> {
        self.follow.as_ref().map(|f| f.primary.as_str())
    }

    /// Latest committed version (0 before any commit).
    pub fn latest_version(&self) -> u64 {
        self.store
            .as_ref()
            .map_or(0, VersionedDatabase::latest_version)
    }

    /// Oldest version boundary of the in-memory op log — versions at or
    /// below it were compacted by a warm restart and cannot be tailed.
    pub(crate) fn base_version(&self) -> u64 {
        self.store
            .as_ref()
            .map_or(0, VersionedDatabase::base_version)
    }

    /// Fingerprint of the replication *setup*: schemas + registry. A
    /// follower sends this in its hello; the primary answers a mismatch
    /// with a full `ckpt` bootstrap instead of incremental `wal` frames
    /// (changesets only make sense against identical schemas/views).
    pub(crate) fn setup_digest(&self) -> String {
        let mut text = format!("{:?}", self.schemas);
        text.push('\x1f');
        text.push_str(&self.registry.to_text());
        citesys_storage::sha256(text.as_bytes()).to_hex()
    }

    /// Bumps whenever DDL changes the replication setup mid-stream
    /// (schema declared, view registered): feeds compare it between
    /// batches and re-bootstrap their follower on change.
    pub(crate) fn replication_generation(&self) -> (u64, usize) {
        (self.plan_generation, self.schemas.len())
    }

    /// Re-materializes the changeset committed as `version` from the
    /// in-memory op log (`None` for version 0, unknown versions, and
    /// versions compacted by a warm restart).
    pub(crate) fn changes_in(&self, version: u64) -> Option<Changeset> {
        let ops = self.store.as_ref()?.ops_of(version)?;
        Some(Changeset::from_ops(ops.to_vec()))
    }

    /// Installs a `ckpt` frame shipped by the primary: rebuilds the
    /// store, registry, plan cache and warm views from its sections,
    /// publishes the service, and persists the checkpoint to the local
    /// durable backend (if any) so a restart resumes from it. Refuses a
    /// checkpoint older than the local version — that means the
    /// histories diverged, which re-streaming cannot fix.
    pub(crate) fn install_replica_checkpoint(
        &mut self,
        data: &CheckpointData,
    ) -> Result<u64, CmdError> {
        let local = self.latest_version();
        if data.version < local {
            return Err(cite_err(format!(
                "primary checkpoint at version {} is behind local version {local}: \
                 histories diverged",
                data.version
            )));
        }
        let (store, service) = citesys_core::durable::rebuild_from_checkpoint(data)
            .map_err(|e| cite_err(e.to_string()))?;
        let version = store.latest_version();
        self.schemas = store.schemas().to_vec();
        self.registry = service.registry().as_ref().clone();
        self.plans_strict = Arc::clone(service.plan_cache());
        self.plans_partial = Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY));
        self.pending_plan_import = None;
        self.store = Some(store);
        self.service = Some((version, false, service));
        self.plan_generation += 1;
        self.obs.service_builds.inc();
        if let Some(handle) = &mut self.durability {
            handle
                .write_checkpoint(data)
                .map_err(|e| cite_err(e.to_string()))?;
        }
        self.note_primary_version(version);
        Ok(version)
    }

    /// Applies one `wal` frame shipped by the primary, through the same
    /// path a local commit takes: local WAL append first (so a crash
    /// mid-apply replays it), then apply + commit, then batch delta
    /// maintenance publishes the new snapshot with views and plans
    /// still warm. The stream must be gapless: `version` has to be
    /// exactly the local latest + 1.
    pub(crate) fn apply_replica_record(
        &mut self,
        version: u64,
        changes: &Changeset,
    ) -> Result<u64, CmdError> {
        let expected = self.latest_version() + 1;
        if version != expected {
            return Err(cite_err(format!(
                "replication stream out of order: got version {version}, expected {expected}"
            )));
        }
        if let Some(handle) = &mut self.durability {
            let fsync = SpanTimer::start(self.obs.timings_enabled());
            handle
                .log_commit(version, changes)
                .map_err(|e| cite_err(format!("write-ahead log: {e}")))?;
            self.obs
                .wal_fsync_seconds
                .observe_micros(fsync.elapsed_micros());
        }
        let store = self.store_mut()?;
        store
            .apply_changeset(changes)
            .map_err(|e| cite_err(e.to_string()))?;
        let v = store.commit();
        debug_assert_eq!(v, version);
        self.obs.commits.inc();
        self.obs.replica_lag_records.dec_sat();
        self.refresh_service_after_commit(v, changes);
        self.note_primary_version(v);
        self.maybe_auto_checkpoint()?;
        Ok(v)
    }

    /// Records the primary's latest version (from a `wal` or `ping`
    /// frame) and recomputes the follower's version lag.
    pub(crate) fn note_primary_version(&mut self, version: u64) {
        let latest = self.latest_version();
        if let Some(f) = &mut self.follow {
            f.primary_version = f.primary_version.max(version);
            self.obs
                .replica_lag_versions
                .set(f.primary_version.saturating_sub(latest));
        }
    }

    /// Flips the follower's connected flag; counts a reconnect on each
    /// up→down transition.
    pub(crate) fn set_follow_connected(&mut self, connected: bool) {
        if let Some(f) = &mut self.follow {
            if f.connected && !connected {
                self.obs.replica_reconnects.inc();
            }
            f.connected = connected;
        }
    }

    /// Registers a feed for `peer` (primary side).
    pub(crate) fn register_replica(&mut self, peer: &str) {
        self.replicas.push(ReplicaPeer {
            peer: peer.to_string(),
            shipped: 0,
        });
        self.obs.replicas_connected.set(self.replicas.len() as u64);
    }

    /// Drops `peer`'s feed registration (primary side).
    pub(crate) fn unregister_replica(&mut self, peer: &str) {
        if let Some(i) = self.replicas.iter().position(|r| r.peer == peer) {
            self.replicas.remove(i);
        }
        self.obs.replicas_connected.set(self.replicas.len() as u64);
    }

    /// Accounts `n` records shipped to `peer` (primary side).
    pub(crate) fn note_shipped(&mut self, peer: &str, n: u64) {
        if let Some(r) = self.replicas.iter_mut().find(|r| r.peer == peer) {
            r.shipped += n;
        }
        self.obs.replica_records_shipped.add(n);
    }

    /// `(peer address, records shipped)` for every attached feed.
    pub fn replica_peers(&self) -> Vec<(String, u64)> {
        self.replicas
            .iter()
            .map(|r| (r.peer.clone(), r.shipped))
            .collect()
    }

    /// Counter snapshot, assembled from the registry-backed
    /// instruments — the `stats` command and the `metrics` exposition
    /// read the same atomics, so they cannot disagree.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            commits: self.obs.commits.get(),
            snapshot_swaps: self.obs.snapshot_swaps.get(),
            group_windows: self.obs.group_windows.get(),
            largest_group: self.obs.largest_group.get(),
            service_builds: self.obs.service_builds.get(),
            replicas_connected: self.obs.replicas_connected.get(),
            replica_records_shipped: self.obs.replica_records_shipped.get(),
            replica_lag_versions: self.obs.replica_lag_versions.get(),
            replica_lag_records: self.obs.replica_lag_records.get(),
            replica_reconnects: self.obs.replica_reconnects.get(),
        }
    }

    /// The store's observability instruments. The group committer, the
    /// transports and the replication runtime record through clones of
    /// this bundle without holding the store lock; embedders use it to
    /// toggle latency timings ([`StoreObs::set_timings_enabled`]).
    pub fn obs(&self) -> &StoreObs {
        &self.obs
    }

    /// Arms the slow-cite log: cites taking `ms` milliseconds or more
    /// end-to-end log one `slow-cite` line to stderr with their
    /// per-stage span breakdown. `None` disables (the default).
    pub fn set_slow_cite_ms(&mut self, ms: Option<u64>) {
        self.slow_cite_ms = ms;
    }

    /// Renders the full metrics registry in Prometheus text exposition
    /// format, first refreshing the scrape-time mirrors whose source of
    /// truth lives outside the registry (plan cache, view cache, WAL
    /// and history gauges).
    pub fn render_metrics(&mut self) -> String {
        let plans = self.plans_strict.stats();
        self.obs.plan_cache_hits.set(plans.hits);
        self.obs.plan_cache_misses.set(plans.misses);
        self.obs.plan_cache_evictions.set(plans.evictions);
        let views = self.view_cache_stats().unwrap_or_default();
        self.obs.view_materializations.set(views.materializations);
        self.obs.view_deltas_applied.set(views.deltas_applied);
        self.obs.wal_records.set(self.wal_records() as u64);
        self.obs
            .history_base_version
            .set(self.history_base_version());
        self.obs
            .checkpoints_retained
            .set(self.checkpoints_retained() as u64);
        self.obs.latest_version.set(self.latest_version());
        self.obs.render()
    }

    /// Counters of the strict (non-partial) plan cache.
    pub fn plan_cache_stats(&self) -> citesys_core::PlanCacheStats {
        self.plans_strict.stats()
    }

    /// Materialized-view cache counters of the cached service, if one
    /// has been built (i.e. after the first `cite`).
    pub fn view_cache_stats(&self) -> Option<citesys_core::ViewCacheStats> {
        self.service
            .as_ref()
            .map(|(_, _, svc)| svc.view_cache_stats())
    }

    /// A clone of the citation-view registry (for inspection).
    pub fn registry(&self) -> CitationRegistry {
        self.registry.clone()
    }

    /// True while staged plan-cache text has not been consumed by a
    /// `cite` yet (see [`stage_plan_import`](Self::stage_plan_import)).
    pub fn has_pending_plan_import(&self) -> bool {
        self.pending_plan_import.is_some()
    }

    /// Stages plan-cache text to be imported at the next `cite` command —
    /// i.e. after the session's `view` registrations have settled the
    /// registry (each registration swaps in fresh caches, so an eager
    /// import would be dropped). Used by `citesys serve --plan-cache`.
    pub fn stage_plan_import(&mut self, text: String) {
        self.pending_plan_import = Some(text);
    }

    /// Serializes the strict plan cache to the `citesys-plan-cache v1`
    /// text form. A staged import no `cite` has consumed yet is returned
    /// verbatim instead: the live cache is necessarily empty in that
    /// state, and saving must not truncate the file it was loaded from.
    pub fn export_plans(&self) -> String {
        if let Some(staged) = &self.pending_plan_import {
            return staged.clone();
        }
        self.plans_strict.to_text()
    }

    /// Loads plans serialized by [`export_plans`](Self::export_plans)
    /// into the strict plan cache, returning how many were loaded.
    pub fn import_plans(&mut self, text: &str) -> Result<usize, String> {
        self.plans_strict.load_text(text).map_err(|e| e.to_string())
    }

    /// A cheap change-detection fingerprint of the persistable plan
    /// state: `(cache generation, cached plans, fresh searches,
    /// evictions, staged import?)`. The generation bumps every time a
    /// view registration swaps in fresh caches — without it, a
    /// post-registration cache that happens to reach the same counters
    /// would look unchanged and the on-disk file would keep plans
    /// computed under the old registry (unsound for the new one). The
    /// [`PlanSaver`](crate::persist::PlanSaver) rewrites the file only
    /// when this moves.
    pub fn plan_fingerprint(&self) -> PlanFingerprint {
        let s = self.plans_strict.stats();
        (
            self.plan_generation,
            self.plans_strict.len(),
            s.misses,
            s.evictions,
            self.pending_plan_import.is_some(),
        )
    }

    fn store_mut(&mut self) -> Result<&mut VersionedDatabase, CmdError> {
        if self.store.is_none() {
            if self.schemas.is_empty() {
                return Err(parse_err("no schema declared"));
            }
            let store = VersionedDatabase::new(self.schemas.clone())
                .map_err(|e| cite_err(e.to_string()))?;
            self.store = Some(store);
        }
        Ok(self.store.as_mut().expect("just initialized"))
    }

    /// Applies one transaction's changeset atomically to the working
    /// state (all-or-nothing; a failure rolls the whole batch back).
    pub(crate) fn apply_changes(&mut self, changes: &Changeset) -> Result<usize, CmdError> {
        self.store_mut()?
            .apply_changeset(changes)
            .map_err(|e| cite_err(format!("transaction rolled back: {e}")))
    }

    /// Seals everything pending as one new version and carries it into
    /// the cached service by batch delta maintenance — one snapshot swap
    /// per call, however many transactions were applied since the last
    /// one. Returns the new version number.
    ///
    /// With a durable backend, the sealed changeset is appended to the
    /// write-ahead log (and fsynced) **before** the version is cut —
    /// and therefore before any caller acknowledges the commit. A crash
    /// after the ack replays the record; a crash before the append
    /// loses only an unacknowledged commit.
    pub(crate) fn seal_version(&mut self) -> Result<u64, CmdError> {
        let commit_timer = SpanTimer::start(self.obs.timings_enabled());
        let (next, changes) = {
            let store = self.store_mut()?;
            // Delta-maintain with EVERYTHING this commit seals: the
            // pending log covers both non-transactional ops applied
            // before any `begin` and every transaction changeset applied
            // since the last seal.
            let changes = Changeset::from_ops(store.pending_ops().to_vec());
            (store.latest_version() + 1, changes)
        };
        if let Some(handle) = &mut self.durability {
            let fsync = SpanTimer::start(self.obs.timings_enabled());
            handle
                .log_commit(next, &changes)
                .map_err(|e| cite_err(format!("write-ahead log: {e}")))?;
            self.obs
                .wal_fsync_seconds
                .observe_micros(fsync.elapsed_micros());
        }
        let v = self
            .store
            .as_mut()
            .expect("store initialized above")
            .commit();
        debug_assert_eq!(v, next);
        self.refresh_service_after_commit(v, &changes);
        self.maybe_auto_checkpoint()?;
        self.obs
            .commit_seconds
            .observe_micros(commit_timer.elapsed_micros());
        Ok(v)
    }

    /// Carries the cached service across a commit by **batch delta
    /// maintenance**: the committed ops are staged as one changeset
    /// against the old snapshot and applied to the new one in a single
    /// snapshot swap, keeping both the plan cache and the materialized
    /// views warm instead of rebuilding the service cold.
    fn refresh_service_after_commit(&mut self, v_new: u64, changes: &Changeset) {
        let Some((v_old, partial, svc)) = self.service.take() else {
            return;
        };
        if v_old + 1 != v_new {
            return;
        }
        let store = self.store.as_ref().expect("commit initialized the store");
        let Ok(snapshot) = store.snapshot(v_new) else {
            return;
        };
        let swap = SpanTimer::start(self.obs.timings_enabled());
        let pending = svc.stage_batch(changes);
        let next = svc.with_database_delta(snapshot, pending);
        self.service = Some((v_new, partial, next));
        self.obs.snapshot_swaps.inc();
        self.obs
            .snapshot_swap_seconds
            .observe_micros(swap.elapsed_micros());
    }

    /// Returns (building if needed) a service over the snapshot of
    /// `version` with the given options, reusing the shared plan caches.
    /// Rebuilt only when the version or the partial flag changes — mode
    /// and policies do not affect plans, so they are set fresh on every
    /// call via the builder.
    fn service_at(
        &mut self,
        version: u64,
        options: EngineOptions,
    ) -> Result<CitationService, CmdError> {
        if let Some((v, partial, svc)) = &self.service {
            if *v == version && *partial == options.allow_partial {
                // Same snapshot and plan-compatible options: reuse the
                // service — including its materialized-view cache — with
                // this cite's mode/policies applied.
                return svc
                    .with_options(options)
                    .map_err(|e| cite_err(e.to_string()));
            }
        }
        let store = self.store.as_ref().expect("caller initialized the store");
        let snapshot = store
            .snapshot(version)
            .map_err(|e| cite_err(e.to_string()))?;
        let plans = if options.allow_partial {
            Arc::clone(&self.plans_partial)
        } else {
            Arc::clone(&self.plans_strict)
        };
        let svc = CitationService::builder()
            .database(snapshot)
            .registry(self.registry.clone())
            .options(options)
            .shared_plan_cache(plans)
            .build()
            .map_err(|e| cite_err(e.to_string()))?;
        self.service = Some((version, options.allow_partial, svc.clone()));
        self.obs.service_builds.inc();
        Ok(svc)
    }
}

// ---------------------------------------------------------------------------
// Session control
// ---------------------------------------------------------------------------

/// What an interactive front end should do after a line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionControl {
    /// Keep reading lines.
    Continue,
    /// Close this session (`quit`).
    Quit,
    /// Close this session and stop the server (`shutdown`).
    Shutdown,
}

/// One executed session line: its output plus the control outcome.
#[derive(Debug)]
pub struct SessionReply {
    /// Accumulated command output (possibly empty).
    pub output: String,
    /// Whether the front end should keep going.
    pub control: SessionControl,
}

/// The canonical `commit` acknowledgement line for an isolated session.
/// Both commit paths — the blocking transport's `cmd_commit` and the
/// event-driven transport's deferred ack — build their output here, so
/// the two transports stay byte-identical on the wire.
pub fn commit_ack_message(ack: &CommitAck) -> String {
    format!(
        "committed version {} ({} op(s), group of {})",
        ack.version, ack.applied, ack.group_size
    )
}

// ---------------------------------------------------------------------------
// The interpreter
// ---------------------------------------------------------------------------

/// The stateful interpreter: per-session state over a (possibly shared)
/// [`SharedStore`].
pub struct Interpreter {
    shared: Arc<Mutex<SharedStore>>,
    /// Clone of the store's instrument bundle, cached at construction
    /// so hot-path recording (the `parse` span) never takes the store
    /// lock.
    obs: StoreObs,
    /// Commit pipeline of the owning server (network sessions); `None`
    /// commits inline under the store lock.
    committer: Option<GroupCommitHandle>,
    /// Network sessions buffer **every** mutation until `commit`, so a
    /// dropped connection can never leak half a transaction into the
    /// shared store.
    isolated: bool,
    /// An open `begin … commit` transaction (or, for isolated sessions,
    /// the implicit buffer of all uncommitted mutations).
    txn: Option<Changeset>,
    /// Whether `txn` was opened by an explicit `begin`.
    explicit_txn: bool,
    last_token: Option<FixityToken>,
    trace_next: bool,
    out: String,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// A fresh solo interpreter with a private store and no schema.
    pub fn new() -> Self {
        Self::with_store(SharedStore::new_shared())
    }

    /// A solo (non-isolated) interpreter over an existing store —
    /// typically one opened with
    /// [`SharedStore::open_durable_shared`]. Mutations apply directly
    /// (buffering only inside `begin…commit`), exactly like
    /// [`new`](Self::new).
    pub fn with_store(shared: Arc<Mutex<SharedStore>>) -> Self {
        let obs = shared.lock().obs().clone();
        Interpreter {
            shared,
            obs,
            committer: None,
            isolated: false,
            txn: None,
            explicit_txn: false,
            last_token: None,
            trace_next: false,
            out: String::new(),
        }
    }

    /// An **isolated session** over a shared store: every mutation
    /// buffers in the session until `commit`, which goes through
    /// `committer` (or inline when `None`). This is what the TCP server
    /// creates per connection.
    pub fn session(shared: Arc<Mutex<SharedStore>>, committer: Option<GroupCommitHandle>) -> Self {
        let obs = shared.lock().obs().clone();
        Interpreter {
            shared,
            obs,
            committer,
            isolated: true,
            txn: None,
            explicit_txn: false,
            last_token: None,
            trace_next: false,
            out: String::new(),
        }
    }

    /// The store this interpreter executes against.
    pub fn shared(&self) -> &Arc<Mutex<SharedStore>> {
        &self.shared
    }

    /// Runs a whole script, returning the accumulated output.
    pub fn run(&mut self, script: &str) -> Result<String, ScriptError> {
        for (i, raw) in script.lines().enumerate() {
            self.run_numbered_line(i + 1, raw)?;
        }
        Ok(std::mem::take(&mut self.out))
    }

    /// Runs a single script line, returning the output it produced.
    /// State persists across calls. Session-control commands (`quit`,
    /// `shutdown`) are errors here — interactive front ends use
    /// [`run_session_line`](Self::run_session_line) instead.
    pub fn run_line(&mut self, raw: &str) -> Result<String, ScriptError> {
        self.run_numbered_line(1, raw)?;
        Ok(std::mem::take(&mut self.out))
    }

    /// Runs one line for an interactive front end: like
    /// [`run_line`](Self::run_line), but `quit`/`shutdown` come back as
    /// [`SessionControl`] outcomes instead of executing (or erroring).
    pub fn run_session_line(&mut self, raw: &str) -> Result<SessionReply, ScriptError> {
        let parse = SpanTimer::start(self.obs.timings_enabled());
        let cmd = protocol::parse_command(raw).map_err(|e| ScriptError {
            line: 1,
            kind: ScriptErrorKind::Parse,
            message: e.message,
        })?;
        self.obs.observe_stage("parse", parse.elapsed_micros());
        self.run_session_command(cmd.as_ref())
    }

    /// [`run_session_line`](Self::run_session_line) over an
    /// already-parsed command (`None` for a blank or comment-only
    /// line). Front ends that parse lines themselves — the event-driven
    /// transport splits request tags and inspects the command to
    /// schedule it — use this to avoid a second parse.
    pub fn run_session_command(
        &mut self,
        cmd: Option<&Command>,
    ) -> Result<SessionReply, ScriptError> {
        let control = match cmd {
            Some(Command::Quit) => SessionControl::Quit,
            Some(Command::Shutdown) => SessionControl::Shutdown,
            Some(cmd) => {
                self.exec(cmd).map_err(|(kind, message)| ScriptError {
                    line: 1,
                    kind,
                    message,
                })?;
                SessionControl::Continue
            }
            None => SessionControl::Continue,
        };
        Ok(SessionReply {
            output: std::mem::take(&mut self.out),
            control,
        })
    }

    /// Begins an **asynchronous** commit for an isolated session: runs
    /// the same admission checks as `commit` (read-only replicas are
    /// rejected) and hands back the buffered transaction for the caller
    /// to submit via [`GroupCommitHandle::submit`]. The event-driven
    /// transport uses this so a worker never blocks on a commit window;
    /// the acknowledgement text is rebuilt with [`commit_ack_message`].
    pub fn take_commit_changes(&mut self) -> Result<Changeset, ScriptError> {
        debug_assert!(self.isolated, "async commits are a session-only path");
        self.reject_if_follower("commit")
            .map_err(|(kind, message)| ScriptError {
                line: 1,
                kind,
                message,
            })?;
        self.explicit_txn = false;
        Ok(self.txn.take().unwrap_or_default())
    }

    fn run_numbered_line(&mut self, line_no: usize, raw: &str) -> Result<(), ScriptError> {
        let parse = SpanTimer::start(self.obs.timings_enabled());
        let cmd = protocol::parse_command(raw).map_err(|e| ScriptError {
            line: line_no,
            kind: ScriptErrorKind::Parse,
            message: e.message,
        })?;
        self.obs.observe_stage("parse", parse.elapsed_micros());
        let Some(cmd) = cmd else {
            return Ok(());
        };
        self.exec(&cmd).map_err(|(kind, message)| ScriptError {
            line: line_no,
            kind,
            message,
        })
    }

    fn say(&mut self, s: impl AsRef<str>) {
        self.out.push_str(s.as_ref());
        self.out.push('\n');
    }

    /// Rejects mutating commands on a read-only replica, naming the
    /// primary to write to. Reads (`cite`, `verify`, `tables`, `dump`,
    /// `stats`, `trace`) and local operations (`checkpoint`) pass.
    fn reject_if_follower(&self, what: &str) -> Result<(), CmdError> {
        if let Some(primary) = self.shared.lock().primary_addr() {
            return Err(readonly_err(format!(
                "read-only replica of {primary}: '{what}' must run on the primary"
            )));
        }
        Ok(())
    }

    fn exec(&mut self, cmd: &Command) -> Result<(), CmdError> {
        let mutating = match cmd {
            Command::Schema { .. } => Some("schema"),
            Command::Insert { .. } => Some("insert"),
            Command::Delete { .. } => Some("delete"),
            Command::View(_) => Some("view"),
            Command::Begin => Some("begin"),
            Command::Rollback => Some("rollback"),
            Command::Commit => Some("commit"),
            Command::Load { .. } => Some("load"),
            Command::Ingest { .. } => Some("ingest"),
            _ => None,
        };
        if let Some(what) = mutating {
            self.reject_if_follower(what)?;
        }
        match cmd {
            Command::Schema { name, attrs, key } => self.cmd_schema(name, attrs, key),
            Command::Insert { rel, tuple } => self.cmd_insert(rel, tuple.clone()),
            Command::Delete { rel, tuple } => self.cmd_delete(rel, tuple.clone()),
            Command::View(spec) => self.cmd_view(spec),
            Command::Begin => self.cmd_begin(),
            Command::Rollback => self.cmd_rollback(),
            Command::Commit => self.cmd_commit(),
            Command::Cite(spec) => self.cmd_cite(spec),
            Command::Verify => self.cmd_verify(),
            Command::Tables => self.cmd_tables(),
            Command::Dump { rel } => self.cmd_dump(rel),
            Command::Load { rel, path, key } => self.cmd_load(rel, path, key.as_deref()),
            Command::Ingest {
                dir,
                dataset,
                manifest,
                batch,
            } => self.cmd_ingest(dir, dataset.as_deref(), manifest.as_deref(), *batch),
            Command::Datasets => self.cmd_datasets(),
            Command::DatasetVerify { manifest } => self.cmd_dataset_verify(manifest.as_deref()),
            Command::Trace => {
                // `trace` arms a derivation trace for the next `cite`.
                self.trace_next = true;
                Ok(())
            }
            Command::Stats => self.cmd_stats(),
            Command::Metrics => self.cmd_metrics(),
            Command::Snapshot { version } => self.cmd_snapshot(*version),
            Command::Compact { window } => self.cmd_compact(*window),
            Command::Checkpoint => self.cmd_checkpoint(),
            Command::Quit | Command::Shutdown => Err(parse_err(
                "session command: only available in an interactive or network session",
            )),
        }
    }

    fn cmd_schema(
        &mut self,
        name: &str,
        attrs: &[(String, citesys_cq::ValueType)],
        key: &[usize],
    ) -> Result<(), CmdError> {
        {
            let mut sh = self.shared.lock();
            if sh.store.is_some() {
                return Err(parse_err("schema must be declared before any data command"));
            }
            let parts: Vec<(&str, citesys_cq::ValueType)> =
                attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = RelationSchema::from_parts(name, &parts, key);
            sh.schemas.push(schema);
            // DDL cannot ride the WAL: persist the declaration now so a
            // crash before the first commit still recovers the schema.
            sh.checkpoint_after_ddl()?;
        }
        self.say(format!("schema {name} ({} attributes)", attrs.len()));
        Ok(())
    }

    fn cmd_insert(&mut self, rel: &str, tuple: citesys_storage::Tuple) -> Result<(), CmdError> {
        if self.isolated || self.txn.is_some() {
            // Buffered: validated and applied atomically at `commit`.
            self.txn
                .get_or_insert_with(Changeset::new)
                .insert(rel, tuple);
            return Ok(());
        }
        let changed = self
            .shared
            .lock()
            .store_mut()?
            .insert(rel, tuple)
            .map_err(|e| cite_err(e.to_string()))?;
        if !changed {
            self.say("(duplicate ignored)");
        }
        Ok(())
    }

    fn cmd_delete(&mut self, rel: &str, tuple: citesys_storage::Tuple) -> Result<(), CmdError> {
        if self.isolated || self.txn.is_some() {
            self.txn
                .get_or_insert_with(Changeset::new)
                .delete(rel, tuple);
            return Ok(());
        }
        let changed = self
            .shared
            .lock()
            .store_mut()?
            .delete(rel, &tuple)
            .map_err(|e| cite_err(e.to_string()))?;
        if !changed {
            self.say("(no such tuple)");
        }
        Ok(())
    }

    /// Opens a transaction: subsequent insert/delete lines buffer into
    /// one changeset until `commit` (atomic) or `rollback` (discard).
    fn cmd_begin(&mut self) -> Result<(), CmdError> {
        if self.txn.is_some() {
            return Err(cite_err(
                "transaction already open: run 'commit' or 'rollback' first",
            ));
        }
        self.txn = Some(Changeset::new());
        self.explicit_txn = true;
        self.say("transaction open");
        Ok(())
    }

    /// Discards an open transaction's buffered ops.
    fn cmd_rollback(&mut self) -> Result<(), CmdError> {
        self.explicit_txn = false;
        match self.txn.take() {
            Some(changes) => {
                self.say(format!("rolled back {} buffered op(s)", changes.len()));
                Ok(())
            }
            None => Err(cite_err("no open transaction")),
        }
    }

    fn cmd_view(&mut self, spec: &ViewSpec) -> Result<(), CmdError> {
        let name = spec.view.name().to_string();
        let cv = CitationView::new(spec.view.clone(), spec.cites.clone(), spec.function.clone())
            .map_err(|e| cite_err(e.to_string()))?;
        {
            let mut sh = self.shared.lock();
            sh.registry.add(cv).map_err(|e| cite_err(e.to_string()))?;
            // The rewriting space changed: drop the service built over the
            // stale registry and swap in FRESH plan caches (replacing the
            // `Arc`s, so nothing holding the old caches can leak
            // old-registry plans back in).
            sh.plans_strict = Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY));
            sh.plans_partial = Arc::new(PlanCache::new(citesys_core::DEFAULT_PLAN_CACHE_CAPACITY));
            sh.service = None;
            sh.plan_generation += 1;
            // Registry changes cannot ride the WAL; checkpoint so the
            // view (and the invalidated plan cache) survive a crash.
            sh.checkpoint_after_ddl()?;
        }
        self.say(format!("view {name} registered"));
        Ok(())
    }

    fn cmd_commit(&mut self) -> Result<(), CmdError> {
        let txn = self.txn.take();
        self.explicit_txn = false;
        if self.isolated {
            let changes = txn.unwrap_or_default();
            let ack = match &self.committer {
                Some(handle) => handle.commit(changes).map_err(cite_err)?,
                None => {
                    // No committer wired (tests / single-session use):
                    // the same path, inline under the store lock.
                    let mut sh = self.shared.lock();
                    let applied = sh.apply_changes(&changes)?;
                    let version = sh.seal_version()?;
                    sh.obs.commits.inc();
                    CommitAck {
                        version,
                        applied,
                        group_size: 1,
                    }
                }
            };
            self.say(commit_ack_message(&ack));
            return Ok(());
        }
        // Solo path: apply the buffered transaction (if any) atomically,
        // then seal EVERYTHING pending — including non-transactional ops
        // applied before any `begin` — as one version.
        let txn_ops = txn.as_ref().map(Changeset::len);
        let v = {
            let mut sh = self.shared.lock();
            if let Some(changes) = txn {
                sh.apply_changes(&changes)?;
            }
            let v = sh.seal_version()?;
            sh.obs.commits.inc();
            v
        };
        match txn_ops {
            Some(n) => self.say(format!(
                "committed version {v} ({n} op(s) in one transaction)"
            )),
            None => self.say(format!("committed version {v}")),
        }
        Ok(())
    }

    fn cmd_cite(&mut self, spec: &CiteSpec) -> Result<(), CmdError> {
        if self.txn.is_some() {
            return Err(cite_err(if self.explicit_txn {
                "transaction open: run 'commit' (or 'rollback') before 'cite'"
            } else {
                "uncommitted changes: run 'commit' before 'cite'"
            }));
        }
        if let Some(version) = spec.as_of {
            return self.cmd_cite_at(version, spec);
        }
        let (service, version, loaded, slow_ms) = {
            let mut sh = self.shared.lock();
            let mut loaded = None;
            if let Some(text) = sh.pending_plan_import.take() {
                let n = sh
                    .plans_strict
                    .load_text(&text)
                    .map_err(|e| cite_err(format!("plan-cache file: {e}")))?;
                loaded = Some(n);
            }
            let store = sh.store_mut()?;
            if store.has_pending() {
                return Err(cite_err("uncommitted changes: run 'commit' before 'cite'"));
            }
            let version = store.latest_version();
            let service = sh.service_at(version, spec.options)?;
            (service, version, loaded, sh.slow_cite_ms)
        };
        if let Some(n) = loaded {
            self.say(format!("loaded {n} cached plan(s)"));
        }
        // Spans are collected when histogram timings are on OR the
        // slow-cite log is armed; with both off the tracing cost is a
        // branch per stage (no clock reads).
        let timed = self.obs.timings_enabled() || slow_ms.is_some();
        let mut spans = SpanSet::new(timed);
        let total = SpanTimer::start(timed);
        // The expensive part — rewriting search (on a plan-cache miss),
        // evaluation and annotation — runs on the service clone OUTSIDE
        // the store lock, so concurrent sessions cite in parallel.
        let (cited, token) = cite_with_service_spanned(&service, version, &spec.query, &mut spans)
            .map_err(|e| cite_err(e.to_string()))?;
        let render = SpanTimer::start(timed);
        self.report_citation(cited, token, spec.format);
        spans.record_micros("render", render.elapsed_micros());
        let total_us = total.elapsed_micros();
        self.obs.observe_cite(total_us, &spans);
        if let Some(ms) = slow_ms {
            if total_us >= ms.saturating_mul(1000) {
                self.obs.slow_cites.inc();
                eprintln!(
                    "{}",
                    slow_cite_line(total_us, &spans, version, &spec.query.to_string())
                );
            }
        }
        Ok(())
    }

    /// `cite … @ <version>`: the time-travel read path. Versions still
    /// in the in-memory op log evaluate on the live service's as-of
    /// cache (kept apart from the warm live caches); versions compacted
    /// from memory but covered by a retained durable anchor are rebuilt
    /// cold from the anchor checkpoint plus its WAL segment, under the
    /// registry that governed that version.
    fn cmd_cite_at(&mut self, version: u64, spec: &CiteSpec) -> Result<(), CmdError> {
        enum Source {
            /// Snapshot served from the in-memory log + the live
            /// service's as-of cache.
            Warm(CitationService, Arc<Database>),
            /// Snapshot reconstructed from a durable anchor, with the
            /// registry that governed it.
            Anchor(Arc<Database>, CitationRegistry),
        }
        let source = {
            let mut sh = self.shared.lock();
            let store = sh.store_mut()?;
            if store.has_pending() {
                return Err(cite_err("uncommitted changes: run 'commit' before 'cite'"));
            }
            let latest = store.latest_version();
            match store.snapshot(version) {
                Ok(snapshot) => {
                    let service = sh.service_at(latest, spec.options)?;
                    Source::Warm(service, snapshot)
                }
                Err(StorageError::CompactedVersion { .. }) => {
                    let fallback = sh
                        .durability
                        .as_ref()
                        .map(|d| d.database_at(version))
                        .transpose()
                        .map_err(|e| cite_err(e.to_string()))?
                        .flatten();
                    match fallback {
                        Some((snapshot, registry)) => Source::Anchor(snapshot, registry),
                        // Re-stamp the error with the TRUE floor: after a
                        // restart the in-memory log starts at the last
                        // checkpoint, but retained anchors reach further
                        // back — the client should be told the oldest
                        // version that actually serves.
                        None => {
                            let oldest = sh.history_base_version();
                            return Err(cite_err(
                                StorageError::CompactedVersion { version, oldest }.to_string(),
                            ));
                        }
                    }
                }
                Err(e) => return Err(cite_err(e.to_string())),
            }
        };
        // Evaluation runs OUTSIDE the store lock, like a live cite.
        let (cited, token) = match source {
            Source::Warm(service, snapshot) => service
                .cite_at_snapshot(version, &snapshot, spec.options, &spec.query)
                .map_err(|e| cite_err(e.to_string()))?,
            Source::Anchor(snapshot, registry) => {
                let service = CitationService::builder()
                    .database(snapshot)
                    .registry(registry)
                    .options(spec.options)
                    .build()
                    .map_err(|e| cite_err(e.to_string()))?;
                cite_with_service(&service, version, &spec.query)
                    .map_err(|e| cite_err(e.to_string()))?
            }
        };
        self.report_citation(cited, token, spec.format);
        Ok(())
    }

    /// Shared output tail of `cite` and `cite … @ <version>`: the answer
    /// count, coverage, the formatted citation with its fixity token,
    /// an armed trace, and the token for `verify`. Identical wording on
    /// both paths — a time-travel cite is byte-identical to what the
    /// live cite printed at that version.
    fn report_citation(
        &mut self,
        cited: citesys_core::CitedAnswer,
        token: FixityToken,
        format: citesys_core::CitationFormat,
    ) {
        self.say(format!(
            "{} answer tuple(s) at version {}",
            cited.answer.len(),
            token.version
        ));
        if let Coverage::Partial { uncited } = cited.coverage {
            self.say(format!("coverage: partial ({uncited} uncited)"));
        }
        if let Some(agg) = &cited.aggregate {
            self.say(format_citation(&agg.snippets, Some(&token), format).trim_end());
        }
        if self.trace_next {
            self.trace_next = false;
            self.say(citesys_core::trace_answer(&cited).trim_end());
        }
        self.last_token = Some(token);
    }

    fn cmd_verify(&mut self) -> Result<(), CmdError> {
        let token = self
            .last_token
            .clone()
            .ok_or_else(|| cite_err("no citation to verify"))?;
        {
            let sh = self.shared.lock();
            let store = sh.store.as_ref().ok_or_else(|| cite_err("no data"))?;
            verify(store, &token).map_err(|e| cite_err(e.to_string()))?;
        }
        self.say(format!(
            "fixity verified: v{} {}",
            token.version, token.digest
        ));
        Ok(())
    }

    fn cmd_tables(&mut self) -> Result<(), CmdError> {
        let lines: Vec<String> = {
            let mut sh = self.shared.lock();
            let store = sh.store_mut()?;
            store
                .current()
                .relations()
                .map(|(name, rel)| format!("{name}: {} tuples", rel.len()))
                .collect()
        };
        for l in lines {
            self.say(l);
        }
        Ok(())
    }

    fn cmd_dump(&mut self, rel: &str) -> Result<(), CmdError> {
        let csv = {
            let mut sh = self.shared.lock();
            let store = sh.store_mut()?;
            let rel = store
                .current()
                .relation(rel)
                .map_err(|e| cite_err(e.to_string()))?;
            to_csv(rel)
        };
        self.say(csv.trim_end());
        Ok(())
    }

    // load Family from 'path.csv' key(0) — bulk-loads CSV rows. The
    // header row's name:type columns must match the declared schema; when
    // the relation is not declared yet (and no data command initialized
    // the store), the header declares it — `key(i, …)` picks the key
    // attributes, defaulting to all columns in header order.
    fn cmd_load(&mut self, rel: &str, path: &str, key: Option<&[usize]>) -> Result<(), CmdError> {
        let content = std::fs::read_to_string(path)
            .map_err(|e| cite_err(format!("cannot read {path}: {e}")))?;
        let (header, tuples) =
            citesys_storage::from_csv(rel, &[], &content).map_err(|e| cite_err(e.to_string()))?;
        let arity = header.arity();
        let key: Vec<usize> = match key {
            Some(k) => {
                if let Some(&bad) = k.iter().find(|&&i| i >= arity) {
                    return Err(parse_err(format!(
                        "key position {bad} out of range (header has {arity} column(s))"
                    )));
                }
                k.to_vec()
            }
            // Header-order inference: every column, in order.
            None => (0..arity).collect(),
        };
        let schema = RelationSchema::new(rel, header.attributes, key);
        self.shared.lock().ensure_relation(&schema)?;
        if self.isolated {
            let txn = self.txn.get_or_insert_with(Changeset::new);
            let mut n = 0usize;
            for t in tuples {
                txn.insert(rel, t);
                n += 1;
            }
            self.say(format!(
                "buffered {n} tuple(s) into {rel} (commit to apply)"
            ));
            return Ok(());
        }
        let n = {
            let mut sh = self.shared.lock();
            let store = sh.store_mut()?;
            let mut n = 0usize;
            for t in tuples {
                if store.insert(rel, t).map_err(|e| cite_err(e.to_string()))? {
                    n += 1;
                }
            }
            n
        };
        self.say(format!("loaded {n} tuple(s) into {rel}"));
        Ok(())
    }

    /// Commits one ingest batch through the normal write path: the
    /// group committer when this session has one (network sessions),
    /// otherwise inline under the store lock — exactly like `commit`.
    fn commit_ingest_batch(&mut self, changes: Changeset) -> Result<u64, CmdError> {
        if let Some(handle) = &self.committer {
            return Ok(handle.commit(changes).map_err(cite_err)?.version);
        }
        let mut sh = self.shared.lock();
        sh.apply_changes(&changes)?;
        let v = sh.seal_version()?;
        sh.obs.commits.inc();
        Ok(v)
    }

    /// `ingest '<dir>'`: stream every `<Relation>.csv` / `<Relation>.jsonl`
    /// dump under `dir` into the store in changeset-sized batches. Each
    /// batch commits through the normal WAL + delta-maintenance path, so
    /// the load looks like ordinary commits to every layer above — views
    /// stay warm, replicas follow, recovery replays it. The load is then
    /// pinned in the dataset registry (`datasets.lock`) and recorded in
    /// the append-only audit log.
    fn cmd_ingest(
        &mut self,
        dir: &str,
        dataset: Option<&str>,
        manifest: Option<&str>,
        batch: Option<usize>,
    ) -> Result<(), CmdError> {
        if self.txn.is_some() {
            return Err(cite_err(
                "transaction open: run 'commit' (or 'rollback') before 'ingest'",
            ));
        }
        let dir_path = Path::new(dir);
        let files = list_dump_files(dir_path)?;
        if files.is_empty() {
            return Err(cite_err(format!("no .csv or .jsonl dumps in {dir}")));
        }
        let cfg = IngestConfig {
            batch_size: batch.unwrap_or_else(|| IngestConfig::default().batch_size),
        };
        let dataset_name = dataset.map(str::to_string).unwrap_or_else(|| {
            dir_path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "dataset".to_string())
        });
        // Pre-pass: admit every header before any data moves — a schema
        // mismatch on the sixth file must not leave the first five
        // committed. Declaring relations here also folds all DDL into
        // one checkpoint instead of one per file.
        for f in &files {
            let r = DumpReader::open(&dir_path.join(&f.file), &f.relation, f.jsonl, &cfg)?;
            self.shared.lock().ensure_relation(r.schema())?;
        }
        let mut first_version = 0u64;
        let mut last_version = 0u64;
        let mut sources = Vec::new();
        let mut total = 0u64;
        for f in &files {
            let mut reader = DumpReader::open(&dir_path.join(&f.file), &f.relation, f.jsonl, &cfg)?;
            loop {
                let timer = SpanTimer::start(self.obs.timings_enabled());
                let Some(batch) = reader.next_batch()? else {
                    break;
                };
                let n = batch.len() as u64;
                let mut changes = Changeset::new();
                for t in batch {
                    changes.insert(&f.relation, t);
                }
                let version = self.commit_ingest_batch(changes)?;
                if first_version == 0 {
                    first_version = version;
                }
                last_version = version;
                self.obs.ingest_records.add(n);
                self.obs.ingest_batches.inc();
                self.obs
                    .ingest_batch_seconds
                    .observe_micros(timer.elapsed_micros());
            }
            let (records, batches) = (reader.records(), reader.batches());
            let (sha256, bytes) = reader.finish()?;
            total += records;
            self.say(format!(
                "  {}: {} record(s) into {} ({} batch(es))",
                f.file, records, f.relation, batches
            ));
            sources.push(SourceFile {
                file: f.file.clone(),
                relation: f.relation.clone(),
                sha256,
                bytes,
                records,
            });
        }
        let fixity = {
            let mut sh = self.shared.lock();
            let store = sh.store_mut()?;
            if last_version == 0 {
                // All dump files were empty: pin against the store's
                // current version.
                last_version = store.latest_version();
                first_version = last_version;
            }
            store
                .digest_at(last_version)
                .map_err(|e| cite_err(e.to_string()))?
        };
        self.say(format!(
            "ingested {total} record(s) from {} file(s) as dataset {dataset_name} \
             (versions {first_version}..{last_version})",
            files.len()
        ));
        let manifest_file: Option<PathBuf> = match manifest {
            Some(p) => Some(PathBuf::from(p)),
            None => self.shared.lock().data_dir().map(|d| d.join(MANIFEST_FILE)),
        };
        let Some(path) = manifest_file else {
            self.say(
                "no manifest written (in-memory store: pass manifest '<path>' or serve --data-dir)",
            );
            return Ok(());
        };
        let mut m = DatasetManifest::load(&path)
            .map_err(|e| cite_err(e.to_string()))?
            .unwrap_or_default();
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let by = std::env::var("USER").unwrap_or_else(|_| "local".to_string());
        let recorded_dir = dir_path
            .canonicalize()
            .unwrap_or_else(|_| dir_path.to_path_buf());
        m.register(DatasetEntry {
            name: dataset_name.clone(),
            dir: recorded_dir.display().to_string(),
            loaded_by: by.clone(),
            loaded_at: now,
            first_version,
            last_version,
            fixity,
            sources,
        });
        m.write_atomic(&path).map_err(|e| cite_err(e.to_string()))?;
        let audit_path = path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(AUDIT_FILE);
        append_audit(
            &audit_path,
            &AuditRecord {
                at: now,
                by,
                dataset: dataset_name,
                files: files.len() as u64,
                records: total,
                first_version,
                last_version,
            },
        )
        .map_err(|e| cite_err(e.to_string()))?;
        self.say(format!(
            "manifest {} (fixity sha256:{})",
            path.display(),
            fixity.to_hex()
        ));
        Ok(())
    }

    /// `datasets`: list the loads registered in the store's manifest.
    fn cmd_datasets(&mut self) -> Result<(), CmdError> {
        let Some(dir) = self.shared.lock().data_dir() else {
            return Err(cite_err(
                "no durable data directory (datasets are registered in <data-dir>/datasets.lock)",
            ));
        };
        let m =
            DatasetManifest::load(&dir.join(MANIFEST_FILE)).map_err(|e| cite_err(e.to_string()))?;
        let Some(m) = m.filter(|m| !m.datasets.is_empty()) else {
            self.say("no datasets registered");
            return Ok(());
        };
        for d in &m.datasets {
            let records: u64 = d.sources.iter().map(|s| s.records).sum();
            self.say(format!(
                "dataset {}: {} file(s), {} record(s), versions {}..{}, fixity sha256:{}",
                d.name,
                d.sources.len(),
                records,
                d.first_version,
                d.last_version,
                d.fixity.to_hex(),
            ));
        }
        Ok(())
    }

    /// `dataset verify`: re-hash every pinned source file in a
    /// streaming pass (tamper check) and re-digest the store at each
    /// load's recorded last version (fixity-drift check; versions
    /// compacted from memory are reached through a retained durable
    /// anchor when one covers them). Any issue is a citation-kind error
    /// naming every failure.
    fn cmd_dataset_verify(&mut self, manifest: Option<&str>) -> Result<(), CmdError> {
        let path = match manifest {
            Some(p) => PathBuf::from(p),
            None => match self.shared.lock().data_dir() {
                Some(d) => d.join(MANIFEST_FILE),
                None => {
                    return Err(parse_err(
                        "no durable data directory: pass dataset verify '<manifest>'",
                    ))
                }
            },
        };
        let m = DatasetManifest::load(&path)
            .map_err(|e| cite_err(e.to_string()))?
            .ok_or_else(|| parse_err(format!("no manifest at {}", path.display())))?;
        let mut issues = verify_sources(&m, None).map_err(|e| cite_err(e.to_string()))?;
        let mut notes = Vec::new();
        {
            let mut sh = self.shared.lock();
            for d in &m.datasets {
                let got = match sh.store_mut()?.digest_at(d.last_version) {
                    Ok(g) => Some(g),
                    Err(StorageError::CompactedVersion { .. }) => {
                        let fallback = sh
                            .durability
                            .as_ref()
                            .map(|h| h.database_at(d.last_version))
                            .transpose()
                            .map_err(|e| cite_err(e.to_string()))?
                            .flatten();
                        match fallback {
                            Some((snapshot, _)) => Some(digest_database(&snapshot)),
                            None => {
                                notes.push(format!(
                                    "dataset {}: fixity unverifiable (version {} compacted)",
                                    d.name, d.last_version
                                ));
                                None
                            }
                        }
                    }
                    Err(e) => return Err(cite_err(e.to_string())),
                };
                if let Some(got) = got {
                    if got != d.fixity {
                        issues.push(VerifyIssue::FixityDrift {
                            dataset: d.name.clone(),
                            expected: d.fixity,
                            got,
                        });
                    }
                }
            }
        }
        for n in notes {
            self.say(n);
        }
        if issues.is_empty() {
            let sources: usize = m.datasets.iter().map(|d| d.sources.len()).sum();
            self.say(format!(
                "datasets verified: {} dataset(s), {} source file(s) ok",
                m.datasets.len(),
                sources
            ));
            return Ok(());
        }
        let msgs: Vec<String> = issues.iter().map(VerifyIssue::to_string).collect();
        Err(cite_err(format!(
            "dataset verification failed: {}",
            msgs.join("; ")
        )))
    }

    /// `snapshot [@] <version>`: prints the fixity digest of the
    /// database as of a committed version (latest when omitted), so a
    /// citation's `@ version` claim can be verified out of band.
    /// Versions compacted from memory are digested from their durable
    /// anchor when one covers them.
    fn cmd_snapshot(&mut self, version: Option<u64>) -> Result<(), CmdError> {
        let (version, digest) = {
            let mut sh = self.shared.lock();
            let store = sh.store_mut()?;
            let v = match version {
                Some(v) => v,
                None => store.latest_version(),
            };
            match store.digest_at(v) {
                Ok(d) => (v, d),
                Err(StorageError::CompactedVersion { .. }) => {
                    let fallback = sh
                        .durability
                        .as_ref()
                        .map(|d| d.database_at(v))
                        .transpose()
                        .map_err(|e| cite_err(e.to_string()))?
                        .flatten();
                    match fallback {
                        Some((snapshot, _)) => (v, digest_database(&snapshot)),
                        // As in `cite … @`: name the true retained floor,
                        // not just the in-memory log's base.
                        None => {
                            let oldest = sh.history_base_version();
                            return Err(cite_err(
                                StorageError::CompactedVersion { version: v, oldest }.to_string(),
                            ));
                        }
                    }
                }
                Err(e) => return Err(cite_err(e.to_string())),
            }
        };
        self.say(format!("snapshot v{version} sha256:{digest}"));
        Ok(())
    }

    /// `compact [<window>]`: checkpoint, then trim queryable history to
    /// the newest `window` versions (0 when omitted: only the latest
    /// stays queryable). In-window versions keep serving `@ version`
    /// reads; older ones return the compacted-history error.
    fn cmd_compact(&mut self, window: Option<u64>) -> Result<(), CmdError> {
        if self.txn.is_some() {
            return Err(cite_err(
                "transaction open: run 'commit' (or 'rollback') before 'compact'",
            ));
        }
        let window = window.unwrap_or(0);
        let (floor, pruned) = self.shared.lock().compact_history(window)?;
        self.say(format!(
            "compacted to version {floor} ({pruned} anchor(s) pruned)"
        ));
        Ok(())
    }

    /// `checkpoint`: snapshot the durable store and reset the WAL.
    /// Requires a durable backend (`serve --data-dir`) and no open
    /// transaction in this session.
    fn cmd_checkpoint(&mut self) -> Result<(), CmdError> {
        if self.txn.is_some() {
            return Err(cite_err(
                "transaction open: run 'commit' (or 'rollback') before 'checkpoint'",
            ));
        }
        let version = self.shared.lock().write_checkpoint()?;
        self.say(format!("checkpoint at version {version}"));
        Ok(())
    }

    /// `stats`: the shared store's write-path counters plus the strict
    /// plan cache's hit/miss counters and the cached service's view
    /// warmth, one `name value` pair per line, **sorted by name** so
    /// the output is deterministic (the per-replica `replica[<peer>]`
    /// lines sort with everything else).
    fn cmd_stats(&mut self) -> Result<(), CmdError> {
        let (st, disc_idle, disc_over, plans, views, wal, base, retained, primary, peers) = {
            let sh = self.shared.lock();
            (
                sh.stats(),
                sh.obs.disconnects_idle.get(),
                sh.obs.disconnects_oversized.get(),
                sh.plans_strict.stats(),
                sh.view_cache_stats().unwrap_or_default(),
                sh.wal_records(),
                sh.history_base_version(),
                sh.checkpoints_retained(),
                sh.primary_addr().map(str::to_string),
                sh.replica_peers(),
            )
        };
        let mut lines = vec![
            format!("commits {}", st.commits),
            format!("snapshot_swaps {}", st.snapshot_swaps),
            format!("group_windows {}", st.group_windows),
            format!("largest_group {}", st.largest_group),
            format!("service_builds {}", st.service_builds),
            format!("disconnects_idle {disc_idle}"),
            format!("disconnects_oversized {disc_over}"),
            format!("plan_cache_hits {}", plans.hits),
            format!("plan_cache_misses {}", plans.misses),
            format!("view_materializations {}", views.materializations),
            format!("view_deltas_applied {}", views.deltas_applied),
            format!("wal_records {wal}"),
            format!("history_base_version {base}"),
            format!("checkpoints_retained {retained}"),
            format!("replicas_connected {}", st.replicas_connected),
            format!("replica_records_shipped {}", st.replica_records_shipped),
            format!("replica_lag_versions {}", st.replica_lag_versions),
            format!("replica_lag_records {}", st.replica_lag_records),
            format!("replica_reconnects {}", st.replica_reconnects),
        ];
        if let Some(primary) = primary {
            lines.push(format!("following {primary}"));
        }
        for (peer, shipped) in peers {
            lines.push(format!("replica[{peer}] {shipped}"));
        }
        lines.sort();
        for l in lines {
            self.say(l);
        }
        Ok(())
    }

    /// `metrics`: the full registry in Prometheus text exposition
    /// format — the same payload `serve --metrics` serves over HTTP.
    fn cmd_metrics(&mut self) -> Result<(), CmdError> {
        let text = self.shared.lock().render_metrics();
        self.say(text.trim_end());
        Ok(())
    }

    /// Counters of the strict (non-partial) plan cache — how much
    /// rewriting-search work the session has amortized.
    pub fn plan_cache_stats(&self) -> citesys_core::PlanCacheStats {
        self.shared.lock().plan_cache_stats()
    }

    /// The shared store's write-path counters (commits, snapshot swaps,
    /// group-commit windows).
    pub fn store_stats(&self) -> StoreStats {
        self.shared.lock().stats()
    }

    /// Serializes the strict plan cache to the `citesys-plan-cache v1`
    /// text form (the `serve --plan-cache` / `plans export` persistence
    /// format). The partial-fallback cache is session-local and not
    /// persisted.
    ///
    /// A staged import that no `cite` has consumed yet is returned
    /// verbatim instead: the live cache is necessarily empty in that
    /// state, and a `serve --plan-cache` session that exits without
    /// citing must save the plans it was handed, not truncate the file
    /// with an empty cache.
    pub fn export_plans(&self) -> String {
        self.shared.lock().export_plans()
    }

    /// Loads plans serialized by [`export_plans`](Self::export_plans)
    /// into the strict plan cache, returning how many were loaded.
    ///
    /// Plans are only sound for the registry they were computed under;
    /// registering a view afterwards replaces the cache (dropping the
    /// imported plans), which keeps a stale import from outliving a
    /// changed rewriting space within a session. Across sessions the
    /// operator must pair a plan file with the script that registers the
    /// same views.
    pub fn import_plans(&mut self, text: &str) -> Result<usize, String> {
        self.shared.lock().import_plans(text)
    }

    /// Stages plan-cache text to be imported at the next `cite` command
    /// (see [`SharedStore::stage_plan_import`]).
    pub fn stage_plan_import(&mut self, text: String) {
        self.shared.lock().stage_plan_import(text);
    }

    /// True while staged plan-cache text has not been consumed by a
    /// `cite` yet. `serve --plan-cache` checks this before saving on
    /// exit: a session that never cited must not overwrite the persisted
    /// file with its (empty) in-memory cache.
    pub fn has_pending_plan_import(&self) -> bool {
        self.shared.lock().has_pending_plan_import()
    }

    /// Materialized-view cache counters of the session's cached service,
    /// if one has been built (i.e. after the first `cite`). After a
    /// `commit`, these show whether the commit was carried by batch delta
    /// maintenance (views `untouched`/`deltas_applied`) instead of
    /// re-materialization.
    pub fn view_cache_stats(&self) -> Option<citesys_core::ViewCacheStats> {
        self.shared.lock().view_cache_stats()
    }

    /// A clone of the interpreter's registry (for inspection in tests).
    pub fn registry(&self) -> CitationRegistry {
        self.shared.lock().registry()
    }
}

/// One ingestible dump file discovered under an `ingest` directory.
struct DumpFile {
    /// File name relative to the ingest directory.
    file: String,
    /// Target relation — the file stem.
    relation: String,
    /// `true` for `.jsonl`, `false` for `.csv`.
    jsonl: bool,
}

/// Lists the `.csv` / `.jsonl` dumps directly under `dir`, sorted by
/// file name so a load is deterministic regardless of directory order.
fn list_dump_files(dir: &Path) -> Result<Vec<DumpFile>, CmdError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| cite_err(format!("cannot read {}: {e}", dir.display())))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| cite_err(format!("cannot read {}: {e}", dir.display())))?;
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let (relation, jsonl) = if let Some(stem) = name.strip_suffix(".csv") {
            (stem.to_string(), false)
        } else if let Some(stem) = name.strip_suffix(".jsonl") {
            (stem.to_string(), true)
        } else {
            continue;
        };
        files.push(DumpFile {
            file: name,
            relation,
            jsonl,
        });
    }
    files.sort_by(|a, b| a.file.cmp(&b.file));
    Ok(files)
}

/// Format-dispatching wrapper over the two streaming dump readers, so
/// `cmd_ingest` drives CSV and JSONL dumps through one loop.
enum DumpReader {
    Csv(CsvReader<BufReader<HashCountRead<File>>>),
    Jsonl(JsonlReader<BufReader<HashCountRead<File>>>),
}

impl DumpReader {
    fn open(
        path: &Path,
        relation: &str,
        jsonl: bool,
        cfg: &IngestConfig,
    ) -> Result<Self, CmdError> {
        if jsonl {
            JsonlReader::open_path(path, relation, None, cfg)
                .map(DumpReader::Jsonl)
                .map_err(|e| cite_err(e.to_string()))
        } else {
            CsvReader::open_path(path, relation, None, cfg)
                .map(DumpReader::Csv)
                .map_err(|e| cite_err(e.to_string()))
        }
    }

    fn schema(&self) -> &RelationSchema {
        match self {
            DumpReader::Csv(r) => r.schema(),
            DumpReader::Jsonl(r) => r.schema(),
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>, CmdError> {
        match self {
            DumpReader::Csv(r) => r.next_batch(),
            DumpReader::Jsonl(r) => r.next_batch(),
        }
        .map_err(|e| cite_err(e.to_string()))
    }

    fn records(&self) -> u64 {
        match self {
            DumpReader::Csv(r) => r.records(),
            DumpReader::Jsonl(r) => r.records(),
        }
    }

    fn batches(&self) -> u64 {
        match self {
            DumpReader::Csv(r) => r.batches(),
            DumpReader::Jsonl(r) => r.batches(),
        }
    }

    fn finish(self) -> Result<(Digest, u64), CmdError> {
        match self {
            DumpReader::Csv(r) => r.finish(),
            DumpReader::Jsonl(r) => r.finish(),
        }
        .map_err(|e| cite_err(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_SCRIPT: &str = r#"
# the paper's worked example
schema Family(FID:int, FName:text, Desc:text) key(0)
schema Committee(FID:int, PName:text) key(0, 1)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert Family(12, 'Calcitonin', 'C2')
insert Family(13, 'Dopamine', 'D1')
insert FamilyIntro(11, '1st')
insert FamilyIntro(12, '2nd')
insert Committee(11, 'Alice')
insert Committee(11, 'Bob')
insert Committee(12, 'Carol')
view λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc) | cite λ FID. CV1(FID, PName) :- Committee(FID, PName) | static database=GtoPdb
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'IUPHAR/BPS Guide to PHARMACOLOGY...'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'IUPHAR/BPS Guide to PHARMACOLOGY...'
commit
cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)
verify
"#;

    #[test]
    fn paper_script_end_to_end() {
        let mut interp = Interpreter::new();
        let out = interp.run(PAPER_SCRIPT).unwrap();
        assert!(out.contains("schema Family"));
        assert!(out.contains("view V1 registered"));
        assert!(out.contains("committed version 1"));
        assert!(out.contains("1 answer tuple(s) at version 1"));
        assert!(out.contains("IUPHAR/BPS Guide to PHARMACOLOGY..."));
        assert!(out.contains("fixity verified: v1"));
        assert_eq!(interp.registry().len(), 3);
    }

    #[test]
    fn cite_options_parse() {
        let mut interp = Interpreter::new();
        let script = format!(
            "{PAPER_SCRIPT}\ncite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text) | format bibtex | mode pruned | policy union\n"
        );
        let out = interp.run(&script).unwrap();
        assert!(out.contains("@misc{"));
    }

    #[test]
    fn partial_clause() {
        let mut interp = Interpreter::new();
        let script = "\
schema Family(FID:int, FName:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(1, 'A')
insert Family(2, 'B')
insert FamilyIntro(1, 'i')
view V(FID, N) :- Family(FID, N), FamilyIntro(FID, T) | cite CV(D) :- D = 'db'
commit
cite Q(N) :- Family(F, N) | partial
";
        let out = interp.run(script).unwrap();
        assert!(out.contains("coverage: partial (1 uncited)"), "{out}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut interp = Interpreter::new();
        let e = interp.run("schema R(A:int)\nbogus command\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn uncommitted_cite_rejected() {
        let mut interp = Interpreter::new();
        let script = "\
schema R(A:int)
insert R(1)
view V(A) :- R(A) | cite CV(D) :- D = 'x'
cite Q(A) :- R(A)
";
        let e = interp.run(script).unwrap_err();
        assert!(e.message.contains("uncommitted"));
    }

    #[test]
    fn tables_and_dump() {
        let mut interp = Interpreter::new();
        let out = interp
            .run("schema R(A:int, B:text)\ninsert R(1, 'x, y')\ntables\ndump R\n")
            .unwrap();
        assert!(out.contains("R: 1 tuples"));
        assert!(out.contains("\"A:int\",\"B:text\""));
        assert!(out.contains("1,\"x, y\""));
    }

    #[test]
    fn schema_errors() {
        let mut interp = Interpreter::new();
        assert!(interp.run("schema R(A:float)\n").is_err());
        let mut interp = Interpreter::new();
        assert!(interp.run("schema R(A:int) key(3)\n").is_err());
        let mut interp = Interpreter::new();
        assert!(
            interp
                .run("schema R(A:int)\ninsert R(1)\nschema S(B:int)\n")
                .is_err(),
            "schema after data"
        );
    }

    #[test]
    fn load_from_csv_file() {
        let dir = std::env::temp_dir().join("citesys-script-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        std::fs::write(&path, "\"A:int\",\"B:text\"\n1,\"x\"\n2,\"y\"\n").unwrap();
        let mut interp = Interpreter::new();
        let script = format!(
            "schema R(A:int, B:text)\nload R from '{}'\ntables\n",
            path.display()
        );
        let out = interp.run(&script).unwrap();
        assert!(out.contains("loaded 2 tuple(s) into R"));
        assert!(out.contains("R: 2 tuples"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_command_explains_next_cite() {
        let mut interp = Interpreter::new();
        let script = format!(
            "{PAPER_SCRIPT}\ntrace\ncite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)\n"
        );
        let out = interp.run(&script).unwrap();
        assert!(out.contains("tuple (Calcitonin)"), "{out}");
        assert!(out.contains("← chosen by +R"));
        assert!(out.contains("binding 1: CV1(11)·CV3"));
    }

    #[test]
    fn csl_format_clause() {
        let mut interp = Interpreter::new();
        let script = format!(
            "{PAPER_SCRIPT}\ncite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text) | format csl\n"
        );
        let out = interp.run(&script).unwrap();
        assert!(out.contains("\"type\":\"dataset\""));
    }

    #[test]
    fn duplicate_insert_reported() {
        let mut interp = Interpreter::new();
        let out = interp
            .run("schema R(A:int)\ninsert R(1)\ninsert R(1)\n")
            .unwrap();
        assert!(out.contains("(duplicate ignored)"));
    }

    #[test]
    fn delete_works() {
        let mut interp = Interpreter::new();
        let out = interp
            .run("schema R(A:int)\ninsert R(1)\ndelete R(1)\ndelete R(9)\ntables\n")
            .unwrap();
        assert!(out.contains("(no such tuple)"));
        assert!(out.contains("R: 0 tuples"));
    }

    #[test]
    fn hash_inside_quoted_string_is_not_a_comment() {
        let mut interp = Interpreter::new();
        let out = interp
            .run("schema R(A:int, B:text)\ninsert R(1, 'bug #42') # trailing comment\ndump R\n")
            .unwrap();
        assert!(out.contains("bug #42"), "{out}");
    }

    #[test]
    fn error_kinds_distinguish_parse_from_citation() {
        // Unknown command: parse error.
        let e = Interpreter::new().run("bogus\n").unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Parse);
        // Malformed query: parse error.
        let e = Interpreter::new()
            .run("schema R(A:int)\ncite Q( :- R\n")
            .unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Parse);
        // Well-formed script, uncoverable query: citation error.
        let script = "\
schema R(A:int)
insert R(1)
view V(A) :- R(A) | cite CV(D) :- D = 'x'
commit
cite Q(B) :- S(B)
";
        let e = Interpreter::new().run(script).unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Citation);
        // Unknown relation on insert: citation (runtime) error.
        let e = Interpreter::new()
            .run("schema R(A:int)\ninsert S(1)\n")
            .unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Citation);
    }

    #[test]
    fn run_line_is_incremental() {
        let mut interp = Interpreter::new();
        assert_eq!(
            interp.run_line("schema R(A:int)").unwrap(),
            "schema R (1 attributes)\n"
        );
        interp.run_line("insert R(1)").unwrap();
        interp
            .run_line("view V(A) :- R(A) | cite CV(D) :- D = 'x'")
            .unwrap();
        interp.run_line("commit").unwrap();
        let out = interp.run_line("cite Q(A) :- R(A)").unwrap();
        assert!(out.contains("1 answer tuple(s) at version 1"), "{out}");
        // Errors do not poison the session.
        assert!(interp.run_line("bogus").is_err());
        let out = interp.run_line("tables").unwrap();
        assert!(out.contains("R: 1 tuples"));
    }

    #[test]
    fn transaction_commits_atomically() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        let out = interp
            .run(
                "begin\n\
                 insert Family(14, 'Ghrelin', 'G1')\n\
                 insert FamilyIntro(14, '4th')\n\
                 delete Family(13, 'Dopamine', 'D1')\n\
                 commit\n\
                 tables\n",
            )
            .unwrap();
        assert!(out.contains("transaction open"), "{out}");
        assert!(
            out.contains("committed version 2 (3 op(s) in one transaction)"),
            "{out}"
        );
        assert!(out.contains("Family: 3 tuples"), "{out}");
        assert!(out.contains("FamilyIntro: 3 tuples"), "{out}");
    }

    #[test]
    fn failed_transaction_rolls_back_everything() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        // The second op violates Family's key(0): the first op must be
        // rolled back too, and no version committed.
        let e = interp
            .run(
                "begin\n\
                 insert FamilyIntro(13, '3rd')\n\
                 insert Family(11, 'Clash', 'X')\n\
                 commit\n",
            )
            .unwrap_err();
        assert!(e.message.contains("transaction rolled back"), "{e}");
        let out = interp.run("tables\ncommit\n").unwrap();
        assert!(out.contains("FamilyIntro: 2 tuples"), "rolled back: {out}");
        assert!(out.contains("committed version 2"), "v2 still free: {out}");
    }

    #[test]
    fn commit_carries_pre_begin_ops_into_the_maintained_views() {
        // Regression: a commit sealing both non-transactional ops (applied
        // before `begin`) and a transaction buffer must delta-maintain the
        // cached service with ALL of them — staging only the buffer would
        // leave the pre-`begin` tuple out of the materialized views and
        // silently serve wrong answers.
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap(); // cite → service cached at v1
        let warm = interp.view_cache_stats().unwrap();
        let out = interp
            .run(
                "insert FamilyIntro(13, '3rd')\n\
                 begin\n\
                 insert Family(14, 'Ghrelin', 'G1')\n\
                 insert FamilyIntro(14, '4th')\n\
                 commit\n\
                 cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)\n",
            )
            .unwrap();
        // All three intros visible: the pre-begin Dopamine intro AND the
        // transactional Ghrelin family+intro.
        assert!(out.contains("3 answer tuple(s) at version 2"), "{out}");
        let s = interp.view_cache_stats().unwrap();
        assert_eq!(
            s.materializations, warm.materializations,
            "carried by delta, not re-materialized: {s:?}"
        );
        assert_eq!(s.drops, 0, "{s:?}");
    }

    #[test]
    fn cite_rejected_inside_open_transaction() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        interp.run_line("begin").unwrap();
        interp.run_line("insert FamilyIntro(13, '3rd')").unwrap();
        let e = interp
            .run_line("cite Q(FName) :- Family(FID, FName, Desc)")
            .unwrap_err();
        assert!(e.message.contains("transaction open"), "{e}");
        // Nested begin is rejected; rollback discards the buffer.
        assert!(interp.run_line("begin").is_err());
        let out = interp.run_line("rollback").unwrap();
        assert!(out.contains("rolled back 1 buffered op(s)"), "{out}");
        assert!(interp.run_line("rollback").is_err(), "nothing open");
        // The buffered insert never landed.
        let out = interp.run_line("tables").unwrap();
        assert!(out.contains("FamilyIntro: 2 tuples"), "{out}");
    }

    #[test]
    fn commit_delta_maintains_the_cached_service() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        let warm = interp.view_cache_stats().expect("service built by cite");
        assert!(warm.materializations > 0);
        assert_eq!(warm.drops, 0);
        // A transactional commit: the service is carried by one batch
        // delta (no view re-materialized, no whole-cache drop), and the
        // next cite reuses the cached plan.
        interp
            .run("begin\ninsert FamilyIntro(13, '3rd')\ncommit\n")
            .unwrap();
        let out = interp
            .run_line("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap();
        assert!(out.contains("2 answer tuple(s) at version 2"), "{out}");
        let s = interp.view_cache_stats().unwrap();
        assert_eq!(
            s.materializations, warm.materializations,
            "no re-materialization across the commit: {s:?}"
        );
        assert!(s.deltas_applied > 0, "{s:?}");
        assert_eq!(s.drops, 0, "{s:?}");
        let stats = interp.plan_cache_stats();
        assert!(stats.hits >= 1, "plan survived the commit: {stats:?}");
    }

    #[test]
    fn repeated_cites_reuse_the_plan_cache() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        // Same query shape at different λ-constants, repeatedly.
        for fid in [11, 12, 11, 13] {
            interp
                .run_line(&format!(
                    "cite Q(FName) :- Family({fid}, FName, Desc), FamilyIntro({fid}, Text)"
                ))
                .unwrap();
        }
        let stats = interp.plan_cache_stats();
        assert_eq!(stats.misses, 2, "paper query + the parameterized shape");
        assert!(stats.hits >= 3, "λ-variants must share one plan: {stats:?}");
    }

    #[test]
    fn export_import_plans_round_trip() {
        let mut warm = Interpreter::new();
        warm.run(PAPER_SCRIPT).unwrap();
        let exported = warm.export_plans();
        assert!(exported.starts_with("citesys-plan-cache v1"));

        // A second session with the same views: imported plans serve the
        // cite without a fresh search.
        let setup_only: String = PAPER_SCRIPT
            .lines()
            .filter(|l| !l.starts_with("cite ") && !l.starts_with("verify"))
            .collect::<Vec<_>>()
            .join("\n");
        let mut cold = Interpreter::new();
        cold.run(&setup_only).unwrap();
        let n = cold.import_plans(&exported).unwrap();
        assert_eq!(n, 1);
        cold.run_line("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap();
        let stats = cold.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "served from import");
    }

    #[test]
    fn staged_plan_import_survives_view_registration() {
        let mut warm = Interpreter::new();
        warm.run(PAPER_SCRIPT).unwrap();
        let exported = warm.export_plans();

        // Staging before the script runs (the serve --plan-cache shape):
        // the view commands swap caches, then the first cite imports.
        let mut interp = Interpreter::new();
        interp.stage_plan_import(exported);
        let out = interp.run(PAPER_SCRIPT).unwrap();
        assert!(out.contains("loaded 1 cached plan(s)"), "{out}");
        let stats = interp.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "{stats:?}");
    }

    #[test]
    fn export_preserves_staged_plans_when_no_cite_ran() {
        let mut warm = Interpreter::new();
        warm.run(PAPER_SCRIPT).unwrap();
        let exported = warm.export_plans();

        // A serve session that loads a plan file, does some non-cite work
        // and exits: save-on-exit must write the staged plans back, not
        // an empty live cache.
        let mut idle = Interpreter::new();
        idle.stage_plan_import(exported.clone());
        idle.run_line("schema R(A:int)").unwrap();
        idle.run_line("insert R(1)").unwrap();
        assert!(idle.has_pending_plan_import());
        assert_eq!(idle.export_plans(), exported, "staged plans preserved");

        // Once a cite consumes the import, export reflects the live cache.
        let mut cited = Interpreter::new();
        cited.stage_plan_import(exported.clone());
        cited.run(PAPER_SCRIPT).unwrap();
        assert!(!cited.has_pending_plan_import());
        assert!(cited.export_plans().starts_with("citesys-plan-cache v1"));
    }

    #[test]
    fn corrupt_plan_import_reports_citation_error() {
        let mut interp = Interpreter::new();
        assert!(interp.import_plans("garbage").is_err());
        interp.stage_plan_import("garbage".to_string());
        let e = interp.run(PAPER_SCRIPT).unwrap_err();
        assert_eq!(e.kind, ScriptErrorKind::Citation);
        assert!(e.message.contains("plan-cache file"), "{e}");
    }

    #[test]
    fn view_registration_invalidates_plans() {
        let mut interp = Interpreter::new();
        interp
            .run(
                "schema R(A:int)\nschema S(A:int)\ninsert R(1)\ninsert S(1)\n\
                 view VR(A) :- R(A) | cite CVR(D) :- D = 'r'\ncommit\n",
            )
            .unwrap();
        // S is uncoverable; the empty plan gets cached.
        assert!(interp.run_line("cite Q(A) :- S(A)").is_err());
        assert!(interp.run_line("cite Q(A) :- S(A)").is_err());
        // Registering a covering view must clear the cached empty plan.
        interp
            .run_line("view VS(A) :- S(A) | cite CVS(D) :- D = 's'")
            .unwrap();
        let out = interp.run_line("cite Q(A) :- S(A)").unwrap();
        assert!(out.contains("1 answer tuple(s)"), "{out}");
    }

    #[test]
    fn session_lines_expose_control_flow() {
        let mut interp = Interpreter::new();
        let reply = interp.run_session_line("schema R(A:int)").unwrap();
        assert_eq!(reply.control, SessionControl::Continue);
        assert!(reply.output.contains("schema R"));
        let reply = interp.run_session_line("quit").unwrap();
        assert_eq!(reply.control, SessionControl::Quit);
        let reply = interp.run_session_line("shutdown").unwrap();
        assert_eq!(reply.control, SessionControl::Shutdown);
        // In a script file, the session commands are errors.
        assert!(Interpreter::new().run("quit\n").is_err());
    }

    #[test]
    fn stats_command_reports_counters() {
        let mut interp = Interpreter::new();
        interp.run(PAPER_SCRIPT).unwrap();
        let out = interp.run_line("stats").unwrap();
        assert!(out.contains("commits 1"), "{out}");
        assert!(out.contains("plan_cache_misses 1"), "{out}");
        assert!(out.contains("service_builds 1"), "{out}");
    }

    #[test]
    fn isolated_sessions_share_one_store() {
        // Two sessions over one shared store, no committer: writes from
        // one are visible to the other only after its commit.
        let shared = SharedStore::new_shared();
        let mut a = Interpreter::session(Arc::clone(&shared), None);
        let mut b = Interpreter::session(Arc::clone(&shared), None);
        a.run_line("schema R(A:int)").unwrap();
        a.run_line("insert R(1)").unwrap();
        // Buffered in a's session: b sees nothing yet.
        let out = b.run_line("tables").unwrap();
        assert!(out.contains("R: 0 tuples"), "{out}");
        let out = a.run_line("commit").unwrap();
        assert!(
            out.contains("committed version 1 (1 op(s), group of 1)"),
            "{out}"
        );
        let out = b.run_line("tables").unwrap();
        assert!(out.contains("R: 1 tuples"), "{out}");
        // A dropped session takes its uncommitted buffer with it.
        b.run_line("insert R(2)").unwrap();
        drop(b);
        let out = a.run_line("tables").unwrap();
        assert!(out.contains("R: 1 tuples"), "{out}");
    }

    #[test]
    fn isolated_conflict_rolls_back_only_that_transaction() {
        let shared = SharedStore::new_shared();
        let mut a = Interpreter::session(Arc::clone(&shared), None);
        let mut b = Interpreter::session(Arc::clone(&shared), None);
        a.run_line("schema R(A:int, B:text) key(0)").unwrap();
        a.run_line("insert R(1, 'a')").unwrap();
        a.run_line("commit").unwrap();
        // b's transaction violates the key; a's next one is unaffected.
        b.run_line("begin").unwrap();
        b.run_line("insert R(1, 'clash')").unwrap();
        let e = b.run_line("commit").unwrap_err();
        assert!(e.message.contains("transaction rolled back"), "{e}");
        let out = a.run_line("tables").unwrap();
        assert!(out.contains("R: 1 tuples"), "{out}");
    }
}

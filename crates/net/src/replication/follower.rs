//! Follower side of replication: the runtime thread a `serve --follow`
//! server runs alongside its worker pool.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::protocol::{self, LineRead, LineReader, ReplicaFrame, MAX_LINE_BYTES};
use crate::script::SharedStore;

/// Socket read timeout — doubles as the shutdown-check tick.
const READ_TICK: Duration = Duration::from_millis(50);

/// How long a single frame may take to finish arriving once its header
/// line has been read.
const FRAME_DEADLINE: Duration = Duration::from_secs(30);

/// First reconnect delay after losing the primary; doubles per failed
/// attempt up to [`BACKOFF_MAX`].
const BACKOFF_START: Duration = Duration::from_millis(100);

/// Reconnect delay ceiling.
const BACKOFF_MAX: Duration = Duration::from_secs(5);

/// Spawns the follower runtime: connect to `primary`, stream, apply,
/// reconnect with exponential backoff — until shutdown or a fatal
/// divergence.
pub(crate) fn spawn_follower(
    shared: Arc<Mutex<SharedStore>>,
    shutdown: Arc<AtomicBool>,
    primary: String,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("citesys-replica".to_string())
        .spawn(move || run(&shared, &shutdown, &primary))
        .expect("spawn follower runtime")
}

/// Why one streaming attempt ended.
enum StreamEnd {
    /// Transient: reconnect after backoff. `connected` says whether the
    /// attempt got as far as an accepted hello (resets the backoff).
    Retry { connected: bool },
    /// Unrecoverable (histories diverged, feed rejected): stop
    /// replicating and leave the server serving its last state.
    Fatal(String),
}

fn run(shared: &Arc<Mutex<SharedStore>>, shutdown: &Arc<AtomicBool>, primary: &str) {
    let mut backoff = BACKOFF_START;
    while !shutdown.load(Ordering::SeqCst) {
        match stream_once(shared, shutdown, primary) {
            Ok(()) => return, // clean shutdown
            Err(StreamEnd::Fatal(message)) => {
                shared.lock().set_follow_connected(false);
                eprintln!("replica: replication stopped: {message}");
                return;
            }
            Err(StreamEnd::Retry { connected }) => {
                shared.lock().set_follow_connected(false);
                if connected {
                    backoff = BACKOFF_START;
                }
                sleep_checked(shutdown, backoff);
                backoff = (backoff * 2).min(BACKOFF_MAX);
            }
        }
    }
}

/// Sleeps `total` in [`READ_TICK`] slices so shutdown stays responsive.
fn sleep_checked(shutdown: &AtomicBool, total: Duration) {
    let until = Instant::now() + total;
    while Instant::now() < until && !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(READ_TICK.min(until - Instant::now()));
    }
}

/// One connect-hello-stream cycle. `Ok(())` means shutdown was
/// requested; every other exit is a [`StreamEnd`].
fn stream_once(
    shared: &Arc<Mutex<SharedStore>>,
    shutdown: &Arc<AtomicBool>,
    primary: &str,
) -> Result<(), StreamEnd> {
    let retry = |connected: bool| move |_e: std::io::Error| StreamEnd::Retry { connected };
    let stream = TcpStream::connect(primary).map_err(retry(false))?;
    stream
        .set_read_timeout(Some(READ_TICK))
        .map_err(retry(false))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().map_err(retry(false))?;
    let mut reader = LineReader::new(stream, MAX_LINE_BYTES);

    // Banner, then hello with our local version + setup digest. The
    // local version is whatever checkpoint + WAL the data directory
    // recovered, so a restarted replica resumes instead of
    // re-bootstrapping.
    let banner_deadline = Instant::now() + FRAME_DEADLINE;
    let banner = read_header(&mut reader, shutdown, Some(banner_deadline))?
        .ok_or(StreamEnd::Retry { connected: false })?;
    if !banner.starts_with("citesys-net") {
        return Err(StreamEnd::Fatal(format!(
            "{primary} is not a citesys-net server (banner: '{banner}')"
        )));
    }
    let (version, digest) = {
        let sh = shared.lock();
        (sh.latest_version(), sh.setup_digest())
    };
    writeln!(
        writer,
        "{}",
        protocol::format_replica_hello(version, &digest)
    )
    .and_then(|_| writer.flush())
    .map_err(retry(false))?;
    shared.lock().set_follow_connected(true);

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Some(header) = read_header(&mut reader, shutdown, None)? else {
            return Ok(()); // shutdown mid-read
        };
        if let Some(rest) = header.strip_prefix("err ") {
            // The feed answered with a protocol error instead of frames.
            return Err(StreamEnd::Fatal(format!(
                "primary rejected the feed: {rest}"
            )));
        }
        let deadline = Instant::now() + FRAME_DEADLINE;
        let frame =
            protocol::read_replica_frame(&header, &mut reader, deadline).map_err(retry(true))?;
        match frame {
            ReplicaFrame::Ping { version } => {
                shared.lock().note_primary_version(version);
            }
            ReplicaFrame::Wal { version, changes } => {
                let mut sh = shared.lock();
                sh.obs().replica_lag_records.inc();
                sh.note_primary_version(version);
                // Applies through the normal delta-maintenance path
                // (local WAL append first); decrements lag_records.
                if let Err((_, message)) = sh.apply_replica_record(version, &changes) {
                    return Err(StreamEnd::Fatal(message));
                }
            }
            ReplicaFrame::Ckpt(data) => {
                let mut sh = shared.lock();
                if let Err((_, message)) = sh.install_replica_checkpoint(&data) {
                    return Err(StreamEnd::Fatal(message));
                }
            }
        }
    }
}

/// Reads one header line, treating socket-timeout ticks as chances to
/// check the shutdown flag (and the optional deadline). Returns
/// `Ok(None)` when shutdown was requested mid-read.
fn read_header<R: std::io::Read>(
    reader: &mut LineReader<R>,
    shutdown: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<Option<String>, StreamEnd> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match reader.read_line_deadline(deadline) {
            Ok(LineRead::Line(l)) => return Ok(Some(l)),
            Ok(LineRead::Eof) => return Err(StreamEnd::Retry { connected: true }),
            Ok(LineRead::Oversized) => return Err(StreamEnd::Retry { connected: true }),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        return Err(StreamEnd::Retry { connected: false });
                    }
                }
            }
            Err(_) => return Err(StreamEnd::Retry { connected: true }),
        }
    }
}

//! WAL-shipping replication: read replicas over the wire protocol.
//!
//! Topology is one **primary**, many **followers** (`serve --follow`):
//!
//! ```text
//!            replica hello <version> <setup-digest>
//! follower ────────────────────────────────────────▶ primary
//!          ◀──────────────────────────────────────── feed (one worker
//!            ckpt <v> <n-sections>   bootstrap        slot per replica)
//!            wal <v> <n-lines>       tail, in commit order
//!            ping <v>                heartbeat / lag
//! ```
//!
//! The **source** side (`source`) runs on the primary: a follower's
//! `replica hello` line switches its connection into the replication
//! sub-protocol, and the worker that accepted it becomes that
//! follower's feed for the connection's lifetime. The feed tails the
//! in-memory op log ([`VersionedDatabase::ops_of`]) and re-ships each
//! committed version as the same changeset text that rides the
//! write-ahead log; when incremental shipping is impossible — setup
//! (schemas/registry) mismatch at hello, the follower's version
//! compacted away or unknown, or DDL mid-stream — it falls back to a
//! full `ckpt` frame assembled from memory.
//!
//! The **follower** side (`follower`) runs on a replica server: it
//! bootstraps from the shipped checkpoint, persists every shipped
//! record to its own WAL **before** applying (so a restart resumes from
//! the local version instead of re-bootstrapping), applies changesets
//! through the normal `stage_batch`/`with_database_delta` path (views
//! and plans stay warm), publishes each version via the usual snapshot
//! pointer, and reconnects with exponential backoff when the primary
//! goes away. Sessions on a follower serve `cite`/read commands from
//! the published snapshot and reject writes with `err readonly`.
//!
//! Lag is tracked follower-side: `replica_lag_versions` is the distance
//! between the primary's last reported version (`wal`/`ping`) and the
//! local latest; `replica_lag_records` counts shipped records received
//! but not yet applied. The primary tracks `replicas_connected` and
//! per-feed shipped counters. All surface through `stats`.
//!
//! [`VersionedDatabase::ops_of`]: citesys_storage::VersionedDatabase::ops_of

mod follower;
mod source;

pub(crate) use follower::spawn_follower;
pub(crate) use source::serve_feed;

//! Primary side of replication: one feed per attached follower.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::protocol::{self, ReplicaFrame, Response, WireErrorKind};
use crate::script::SharedStore;

/// How often an idle feed re-checks the store for new versions (and the
/// shutdown flag).
const FEED_TICK: Duration = Duration::from_millis(20);

/// Heartbeat cadence on an idle feed — keeps the follower's lag figure
/// current and turns a dead follower socket into a write error.
const PING_EVERY: Duration = Duration::from_millis(250);

/// Upper bound on `wal` frames materialized per lock acquisition, so a
/// far-behind follower cannot pin the store lock while it catches up.
const MAX_BATCH: u64 = 64;

/// Serves the replication feed on a connection whose `replica hello`
/// line the server just read; `hello` is the remainder of that line.
/// Runs until the follower disconnects, the server shuts down, or the
/// feed cannot continue. Consumes the calling worker thread.
pub(crate) fn serve_feed(
    shared: &Arc<Mutex<SharedStore>>,
    shutdown: &Arc<AtomicBool>,
    mut stream: TcpStream,
    hello: &str,
) -> io::Result<()> {
    let (version, digest) = match protocol::parse_replica_hello(hello) {
        Ok(h) => h,
        Err(message) => {
            let _ = protocol::write_response(
                &mut stream,
                &Response::Err {
                    kind: WireErrorKind::Proto,
                    message,
                },
            );
            return Ok(());
        }
    };
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    shared.lock().register_replica(&peer);
    let result = feed_loop(shared, shutdown, &peer, &mut stream, version, digest);
    shared.lock().unregister_replica(&peer);
    result
}

fn feed_loop(
    shared: &Arc<Mutex<SharedStore>>,
    shutdown: &Arc<AtomicBool>,
    peer: &str,
    stream: &mut TcpStream,
    mut sent: u64,
    hello_digest: String,
) -> io::Result<()> {
    // Until the first batch decision, incremental shipping requires the
    // follower's setup digest to match ours; from then on the DDL
    // generation check takes over (every frame we send reflects our own
    // setup, so the digests agree by construction).
    let mut check_digest = Some(hello_digest);
    let mut generation: Option<(u64, usize)> = None;
    let mut last_ping = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut to_send: Vec<ReplicaFrame> = Vec::new();
        let mut fatal: Option<String> = None;
        let latest;
        {
            let sh = shared.lock();
            latest = sh.latest_version();
            let gen_now = sh.replication_generation();
            let setup_ok = check_digest
                .as_ref()
                .is_none_or(|d| *d == sh.setup_digest())
                && generation.is_none_or(|g| g == gen_now);
            // Incremental shipping needs every version in (sent, latest]
            // to still be in the op log: a follower ahead of us (unknown
            // version) or behind the compaction floor must re-bootstrap.
            let tailable = sent <= latest && sent >= sh.base_version();
            if setup_ok && tailable {
                let hi = latest.min(sent.saturating_add(MAX_BATCH));
                for v in sent + 1..=hi {
                    match sh.changes_in(v) {
                        Some(changes) => to_send.push(ReplicaFrame::Wal {
                            version: v,
                            changes,
                        }),
                        None => break,
                    }
                }
            } else {
                // Bootstrap (or resync after DDL): one full checkpoint
                // assembled from memory — works without `--data-dir`.
                match sh.assemble_checkpoint_data() {
                    Ok(data) => to_send.push(ReplicaFrame::Ckpt(data)),
                    Err((_, message)) => fatal = Some(message),
                }
            }
            if fatal.is_none() {
                generation = Some(gen_now);
                check_digest = None;
            }
        }
        if let Some(message) = fatal {
            let _ = protocol::write_response(
                stream,
                &Response::Err {
                    kind: WireErrorKind::Proto,
                    message,
                },
            );
            return Ok(());
        }
        if to_send.is_empty() {
            if last_ping.elapsed() >= PING_EVERY {
                protocol::write_replica_frame(stream, &ReplicaFrame::Ping { version: latest })?;
                last_ping = Instant::now();
            }
            std::thread::sleep(FEED_TICK);
            continue;
        }
        // Frames are written OUTSIDE the store lock: a slow follower
        // stalls only its own feed, never the primary's write path.
        // Shipped counters are bumped only after the frame actually hit
        // the socket, so a feed dying mid-batch (follower gone) does not
        // count records the replica never received.
        for frame in &to_send {
            protocol::write_replica_frame(stream, frame)?;
            sent = match frame {
                ReplicaFrame::Wal { version, .. } => {
                    shared.lock().note_shipped(peer, 1);
                    *version
                }
                ReplicaFrame::Ckpt(data) => data.version,
                ReplicaFrame::Ping { .. } => sent,
            };
        }
        last_ping = Instant::now();
    }
}

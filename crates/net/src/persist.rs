//! Periodic plan-cache persistence.
//!
//! The pre-network `serve` loop saved the rewrite-plan cache only at
//! clean end-of-input, so a SIGINT, a crashed terminal or a killed
//! connection lost the whole warm cache. [`PlanSaver`] fixes that: front
//! ends call [`maybe_save`](PlanSaver::maybe_save) after every executed
//! command, and the saver rewrites the file **only when the persistable
//! plan state actually moved** (tracked by
//! [`SharedStore::plan_fingerprint`]), so the steady-state cost is one
//! fingerprint comparison, not a disk write per command.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;

use parking_lot::Mutex;

use crate::script::{PlanFingerprint, SharedStore};

/// Debounced, crash-resilient plan-cache writer shared by the stdin
/// REPL and every TCP connection of one server.
///
/// Under group commit the saver is invoked once per **commit window**
/// (by the committer thread, before the window's transactions are
/// acked), not once per session command — racing commits share one
/// fingerprint check and at most one file write per window.
#[derive(Debug)]
pub struct PlanSaver {
    path: PathBuf,
    /// Fingerprint at the last write (std `Mutex`: held only for the
    /// compare-and-write, and independent of the store lock).
    last: StdMutex<Option<PlanFingerprint>>,
    /// Actual file writes performed (observable in tests: asserts the
    /// per-window coalescing really reduces writes).
    saves: AtomicU64,
}

impl PlanSaver {
    /// A saver persisting to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        PlanSaver {
            path: path.into(),
            last: StdMutex::new(None),
            saves: AtomicU64::new(0),
        }
    }

    /// The file this saver writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of file writes this saver has performed.
    pub fn save_count(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Saves the plan cache if it changed since the last save. Returns
    /// whether a write happened.
    ///
    /// Two guards against clobbering good state: a staged-but-unconsumed
    /// import is never written (the on-disk file *is* that text already),
    /// and a completely pristine store (no plans, no searches, no view
    /// registration, no staged import — a session that never did
    /// anything plan-relevant) leaves the file untouched. A view
    /// registration *does* count as a change even with the caches still
    /// empty: it invalidated whatever the file holds, and writing the
    /// (empty) post-registration cache truncates those now-unsound
    /// plans.
    pub fn maybe_save(&self, shared: &Mutex<SharedStore>) -> io::Result<bool> {
        let text = {
            let sh = shared.lock();
            let fp = sh.plan_fingerprint();
            if fp == (0, 0, 0, 0, false) || fp.4 {
                return Ok(false);
            }
            let mut last = self.last.lock().expect("saver lock");
            if *last == Some(fp) {
                return Ok(false);
            }
            // Reserve the fingerprint before dropping the store lock so
            // concurrent sessions don't race duplicate writes; export
            // while still under the store lock for a consistent snapshot.
            *last = Some(fp);
            sh.export_plans()
        };
        std::fs::write(&self.path, text)?;
        self.saves.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Interpreter;

    const SCRIPT: &str = "\
schema R(A:int)
insert R(1)
view V(A) :- R(A) | cite CV(D) :- D = 'x'
commit
";

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("citesys-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn saves_once_per_change_and_skips_pristine() {
        let path = temp_path("periodic.plans");
        let _ = std::fs::remove_file(&path);
        let saver = PlanSaver::new(&path);
        let mut interp = Interpreter::new();
        interp.run_line("schema R(A:int)").unwrap();
        interp.run_line("insert R(1)").unwrap();
        // Schema and data alone touch nothing plan-relevant: untouched.
        assert!(!saver.maybe_save(interp.shared()).unwrap());
        assert!(!path.exists());
        // A view registration changes the rewriting space (generation
        // bump): persisted, even though the fresh cache is still empty.
        interp
            .run_line("view V(A) :- R(A) | cite CV(D) :- D = 'x'")
            .unwrap();
        interp.run_line("commit").unwrap();
        assert!(saver.maybe_save(interp.shared()).unwrap());
        // A cite populates the cache: the next check writes again…
        interp.run_line("cite Q(A) :- R(A)").unwrap();
        assert!(saver.maybe_save(interp.shared()).unwrap());
        let saved = std::fs::read_to_string(&path).unwrap();
        assert!(saved.starts_with("citesys-plan-cache v1"));
        assert!(saved.contains("entry"));
        // …and an unchanged cache does not rewrite.
        assert!(!saver.maybe_save(interp.shared()).unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_session_keeps_the_warm_cache() {
        // The durability regression: a session that cites and is then
        // killed (no clean end-of-input) must still find its plans on
        // disk, because maybe_save ran right after the cite.
        let path = temp_path("interrupted.plans");
        let _ = std::fs::remove_file(&path);
        let saver = PlanSaver::new(&path);
        let mut interp = Interpreter::new();
        for line in SCRIPT.lines().chain(["cite Q(A) :- R(A)"]) {
            interp.run_line(line).unwrap();
            let _ = saver.maybe_save(interp.shared());
        }
        // Simulate the kill: drop the interpreter without any exit path.
        drop(interp);
        let saved = std::fs::read_to_string(&path).unwrap();
        // A fresh session imports the survived plans and cites with zero
        // search work.
        let mut revived = Interpreter::new();
        revived.run(SCRIPT).unwrap();
        assert_eq!(revived.import_plans(&saved).unwrap(), 1);
        revived.run_line("cite Q(A) :- R(A)").unwrap();
        let stats = revived.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "{stats:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn view_registration_forces_a_resave() {
        // The staleness regression: after a save, registering a view
        // swaps in fresh caches; re-citing the same query then reaches
        // the SAME counters (1 plan, 1 miss) as before the swap. The
        // generation component must still force a rewrite — otherwise
        // the disk keeps plans computed under the smaller registry,
        // which are unsound for the next session's imports.
        let path = temp_path("generation.plans");
        let _ = std::fs::remove_file(&path);
        let saver = PlanSaver::new(&path);
        let mut interp = Interpreter::new();
        interp.run(SCRIPT).unwrap();
        interp.run_line("cite Q(A) :- R(A)").unwrap();
        assert!(saver.maybe_save(interp.shared()).unwrap());
        let stale = std::fs::read_to_string(&path).unwrap();
        // The rewriting space changes; the empty post-swap cache must
        // already overwrite the now-invalid plans…
        interp
            .run_line("view W(A) :- R(A) | cite CW(D) :- D = 'w'")
            .unwrap();
        assert!(saver.maybe_save(interp.shared()).unwrap(), "swap persisted");
        // …and the re-cite (same counters as before the swap) saves the
        // new-registry plan.
        interp.run_line("cite Q(A) :- R(A)").unwrap();
        assert!(
            saver.maybe_save(interp.shared()).unwrap(),
            "re-cite persisted"
        );
        let fresh = std::fs::read_to_string(&path).unwrap();
        assert_ne!(stale, fresh, "old-registry plan replaced on disk");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn staged_import_is_never_clobbered() {
        let path = temp_path("staged.plans");
        std::fs::write(&path, "citesys-plan-cache v1\n-- precious --\n").unwrap();
        let saver = PlanSaver::new(&path);
        let mut interp = Interpreter::new();
        interp.stage_plan_import(std::fs::read_to_string(&path).unwrap());
        interp.run_line("schema R(A:int)").unwrap();
        assert!(!saver.maybe_save(interp.shared()).unwrap());
        assert!(
            std::fs::read_to_string(&path).unwrap().contains("precious"),
            "file untouched while the import is unconsumed"
        );
        let _ = std::fs::remove_file(&path);
    }
}

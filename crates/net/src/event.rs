//! The **event-driven transport**: a readiness-based connection layer
//! that multiplexes thousands of sockets over a fixed worker set
//! (`ServerConfig { event_loop: true, .. }`).
//!
//! Where the blocking transport parks one worker thread per live
//! session, each event worker here owns a [`polling::Poller`] (the
//! hermetic epoll shim) and drives every connection assigned to it
//! through a small per-connection state machine:
//!
//! ```text
//!             readable                    runnable            resolved
//!   socket ──────────────▶ LineReader ──▶ pending ──▶ exec ──▶ slots ──▶ out ──▶ socket
//!             (nonblocking)  split_tag     (parsed     │        (ordered   (write
//!                            parse_command  commands)  │         acks)      buffer)
//!                                                      └─ commit ⇒ GroupCommitHandle::submit
//! ```
//!
//! **Pipelining.** Clients may send any number of commands without
//! waiting. Responses are queued as ordered *slots* and flush strictly
//! in request order per connection; an optional `@tag` request prefix
//! is echoed in the response frame so clients can correlate. A `commit`
//! never blocks the worker: it becomes a pending [`CommitTicket`] slot,
//! and because session-local commands (`insert`, `delete`, `begin`,
//! `rollback`, `load`, another `commit`) keep executing behind an
//! in-flight commit, a pipelined burst of commits lands on the
//! [`GroupCommitter`](crate::group::GroupCommitter) inside one
//! coalescing window. Commands that read the shared store wait for the
//! connection's commit slots to drain first, preserving the blocking
//! transport's per-session semantics.
//!
//! **Fairness & backpressure.** A worker executes at most
//! `MAX_CMDS_PER_PUMP` commands per connection per wakeup before
//! round-robining to the next ready connection. Reading from a socket
//! pauses while the connection has `MAX_PENDING_LINES` parsed-but-
//! unexecuted commands or `OUT_HIGH_WATER` unflushed response bytes —
//! the kernel socket buffer then throttles the client end to end.
//!
//! **Lifecycle.** Idle sessions are reaped on the same wall-clock
//! budget as the blocking transport (`err proto idle timeout`); an
//! oversized line fails *that request* with `err proto` and closes the
//! connection only after every earlier queued response has flushed; a
//! `replica hello` line hands the socket to a dedicated feed thread
//! (replication keeps its one-thread-per-follower model); shutdown
//! notifies every connection and drains write buffers before closing.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use polling::{Event, Poller};

use crate::group::{CommitTicket, GroupCommitHandle};
use crate::persist::PlanSaver;
use crate::protocol::{self, Command, LineRead, LineReader, Response, WireErrorKind};
use crate::script::{commit_ack_message, Interpreter, SessionControl, SharedStore};
use crate::server::wire_kind;

/// Poller key reserved for the shared listener; connection keys start
/// above it.
const LISTENER_KEY: usize = 0;

/// Poll timeout with nothing in flight — bounds how fast a worker
/// notices shutdown or an exhausted idle budget.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Poll timeout while any commit ticket is outstanding: acks arrive on
/// an mpsc channel, not the poller, so the worker re-checks quickly.
const COMMIT_TICK: Duration = Duration::from_millis(1);

/// Fairness cap: commands executed per connection per wakeup before
/// other ready connections get the worker.
const MAX_CMDS_PER_PUMP: usize = 64;

/// Read backpressure: stop pulling lines off a socket while this many
/// parsed commands are already queued for the connection.
const MAX_PENDING_LINES: usize = 256;

/// Write backpressure: stop reading (and thus executing) for a
/// connection holding this many unflushed response bytes.
const OUT_HIGH_WATER: usize = 256 * 1024;

/// How long shutdown waits for queued responses to flush before
/// closing connections regardless.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(1);

/// Everything the event workers share.
pub(crate) struct EventCtx {
    pub(crate) shared: Arc<Mutex<SharedStore>>,
    pub(crate) committer: GroupCommitHandle,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) saver: Option<Arc<PlanSaver>>,
    pub(crate) idle_timeout: Duration,
    pub(crate) max_line_bytes: usize,
    pub(crate) max_connections: usize,
    /// Connections currently held across all workers (the
    /// `Server::open_connections` figure; leak checks poll it to zero).
    pub(crate) open_conns: Arc<AtomicUsize>,
    /// Replication feed threads spawned off handed-over connections,
    /// joined at server teardown.
    pub(crate) feed_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Shared instrument bundle: parse spans and disconnect counters
    /// record here without touching the store lock.
    pub(crate) obs: crate::obs::StoreObs,
}

/// Spawns `workers` event workers over the shared listener. Fails fast
/// (before any thread starts) if the platform has no poller backend.
pub(crate) fn spawn_workers(
    listener: Arc<TcpListener>,
    workers: usize,
    ctx: EventCtx,
) -> io::Result<Vec<JoinHandle<()>>> {
    let pollers: Vec<Poller> = (0..workers.max(1))
        .map(|_| Poller::new())
        .collect::<io::Result<_>>()?;
    let ctx = Arc::new(ctx);
    pollers
        .into_iter()
        .enumerate()
        .map(|(i, poller)| {
            let listener = Arc::clone(&listener);
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("citesys-net-event-{i}"))
                .spawn(move || worker_loop(poller, listener, ctx))
        })
        .collect()
}

/// One parsed-but-unexecuted request line.
enum PendingItem {
    /// A syntactically processed line: its tag and command (`None` for
    /// a blank/comment line).
    Cmd {
        tag: Option<String>,
        cmd: Option<Command>,
    },
    /// A line the parser rejected (answered `err parse` in order).
    ParseErr {
        tag: Option<String>,
        message: String,
    },
    /// A line that blew the byte cap: answered `err proto` in order,
    /// then the connection closes (resyncing would mean buffering an
    /// unbounded line).
    Oversized,
}

/// One ordered response slot.
enum Slot {
    /// A fully rendered response frame, ready to flush.
    Ready(Vec<u8>),
    /// A commit awaiting its group-committer acknowledgement; rendered
    /// when the ticket resolves. Slots behind it wait so responses
    /// leave in request order.
    Commit {
        tag: Option<String>,
        ticket: CommitTicket,
    },
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    reader: LineReader<TcpStream>,
    interp: Interpreter,
    pending: VecDeque<PendingItem>,
    slots: VecDeque<Slot>,
    out: Vec<u8>,
    written: usize,
    last_line: Instant,
    want_write: bool,
    /// No further execution: farewell (or fatal) response queued.
    closing: bool,
    /// No further reads: EOF, oversized, farewell, or replica handoff.
    read_done: bool,
    /// Fatal socket error — close without draining.
    abort: bool,
    /// A `replica hello` arrived: hand the socket to a feed thread once
    /// everything queued before it has flushed.
    replica_hello: Option<String>,
}

impl Conn {
    fn new(ctx: &EventCtx, stream: TcpStream, reader_stream: TcpStream) -> Conn {
        Conn {
            stream,
            reader: LineReader::new(reader_stream, ctx.max_line_bytes),
            interp: Interpreter::session(Arc::clone(&ctx.shared), Some(ctx.committer.clone())),
            pending: VecDeque::new(),
            slots: VecDeque::new(),
            out: Vec::new(),
            written: 0,
            last_line: Instant::now(),
            want_write: false,
            closing: false,
            read_done: false,
            abort: false,
            replica_hello: None,
        }
    }

    fn out_drained(&self) -> bool {
        self.written == self.out.len()
    }

    /// Work the poller cannot signal: queued commands, unresolved
    /// commit slots, or a replica handoff waiting on its drain.
    fn has_work(&self) -> bool {
        !self.pending.is_empty() || !self.slots.is_empty() || self.replica_hello.is_some()
    }
}

/// What the worker should do with a connection after a pump pass.
enum Outcome {
    Keep,
    Close,
    Replica(String),
}

fn worker_loop(poller: Poller, listener: Arc<TcpListener>, ctx: Arc<EventCtx>) {
    if poller
        .add(&*listener, Event::readable(LISTENER_KEY))
        .is_err()
    {
        return;
    }
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key: usize = LISTENER_KEY + 1;
    let mut events: Vec<Event> = Vec::new();
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            drain_on_shutdown(&ctx, &poller, &mut conns);
            return;
        }
        let _ = poller.wait(&mut events, Some(poll_timeout(&conns)));
        let mut pump_set: BTreeSet<usize> = BTreeSet::new();
        let mut accept = false;
        for ev in &events {
            if ev.key == LISTENER_KEY {
                accept = true;
            } else {
                pump_set.insert(ev.key);
            }
        }
        if accept {
            accept_new(
                &ctx,
                &poller,
                &listener,
                &mut conns,
                &mut next_key,
                &mut pump_set,
            );
        }
        let now = Instant::now();
        for (key, conn) in conns.iter_mut() {
            if conn.has_work() {
                pump_set.insert(*key);
            } else if !conn.closing
                && conn.replica_hello.is_none()
                && now >= conn.last_line + ctx.idle_timeout
            {
                ctx.obs.disconnects_idle.inc();
                push_err(conn, None, WireErrorKind::Proto, "idle timeout");
                conn.closing = true;
                conn.read_done = true;
                pump_set.insert(*key);
            }
        }
        for key in pump_set {
            let Some(conn) = conns.get_mut(&key) else {
                continue;
            };
            match pump(&ctx, conn) {
                Outcome::Keep => update_interest(&poller, key, conn),
                Outcome::Close => {
                    let conn = conns.remove(&key).expect("pumped conn exists");
                    close_conn(&ctx, &poller, &conn);
                }
                Outcome::Replica(hello) => {
                    let conn = conns.remove(&key).expect("pumped conn exists");
                    hand_to_feed(&ctx, &poller, conn, hello);
                }
            }
        }
    }
}

/// Next poll timeout, from the most urgent latent work across the
/// worker's connections.
fn poll_timeout(conns: &HashMap<usize, Conn>) -> Duration {
    let mut timeout = POLL_TICK;
    for conn in conns.values() {
        if !conn.pending.is_empty() && conn.slots.is_empty() {
            // Runnable commands queued (fairness cap round-robin):
            // come straight back.
            return Duration::ZERO;
        }
        if !conn.slots.is_empty() {
            timeout = COMMIT_TICK;
        }
    }
    timeout
}

fn accept_new(
    ctx: &EventCtx,
    poller: &Poller,
    listener: &TcpListener,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
    pump_set: &mut BTreeSet<usize>,
) {
    loop {
        // Every worker polls the same listener; a race lost to another
        // worker is just WouldBlock here.
        match listener.accept() {
            Ok((stream, _peer)) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    continue;
                }
                let held = ctx.open_conns.fetch_add(1, Ordering::SeqCst);
                if held >= ctx.max_connections {
                    ctx.open_conns.fetch_sub(1, Ordering::SeqCst);
                    // Rejected connections still get the banner + a
                    // proto error, so clients see *why* (the accepted
                    // socket is still blocking; these writes are tiny).
                    let mut stream = stream;
                    let _ = writeln!(stream, "{}", protocol::BANNER);
                    let _ = protocol::write_response(
                        &mut stream,
                        &Response::Err {
                            kind: WireErrorKind::Proto,
                            message: format!(
                                "server full: {} connections held",
                                ctx.max_connections
                            ),
                        },
                    );
                    continue;
                }
                let registered = stream.set_nonblocking(true).is_ok();
                stream.set_nodelay(true).ok();
                let reader_stream = match (registered, stream.try_clone()) {
                    (true, Ok(s)) => s,
                    _ => {
                        ctx.open_conns.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                };
                let key = *next_key;
                *next_key += 1;
                if poller.add(&stream, Event::readable(key)).is_err() {
                    ctx.open_conns.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let mut conn = Conn::new(ctx, stream, reader_stream);
                conn.out
                    .extend_from_slice(format!("{}\n", protocol::BANNER).as_bytes());
                conns.insert(key, conn);
                pump_set.insert(key);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// One full turn of a connection's state machine: read → execute →
/// render → flush → decide.
fn pump(ctx: &EventCtx, conn: &mut Conn) -> Outcome {
    read_lines(ctx, conn);
    exec_pending(ctx, conn);
    fill_out(conn);
    if flush(conn).is_err() || conn.abort {
        return Outcome::Close;
    }
    if conn.slots.is_empty() && conn.out_drained() {
        if conn.closing {
            return Outcome::Close;
        }
        if conn.pending.is_empty() {
            if let Some(hello) = conn.replica_hello.take() {
                return Outcome::Replica(hello);
            }
            if conn.read_done {
                // EOF with everything executed and flushed.
                return Outcome::Close;
            }
        }
    }
    Outcome::Keep
}

/// Drains complete lines off the socket into the pending queue,
/// stopping at backpressure limits or the first would-block.
fn read_lines(ctx: &EventCtx, conn: &mut Conn) {
    while !conn.read_done
        && conn.pending.len() < MAX_PENDING_LINES
        && conn.out.len() - conn.written < OUT_HIGH_WATER
    {
        match conn.reader.read_line() {
            Ok(LineRead::Line(line)) => {
                conn.last_line = Instant::now();
                if let Some(hello) = line.strip_prefix(protocol::REPLICA_HELLO) {
                    conn.replica_hello = Some(hello.to_string());
                    conn.read_done = true;
                    break;
                }
                let (tag, body) = protocol::split_tag(&line);
                let tag = tag.map(str::to_string);
                let parse = citesys_obs::SpanTimer::start(ctx.obs.timings_enabled());
                let parsed = protocol::parse_command(body);
                ctx.obs.observe_stage("parse", parse.elapsed_micros());
                let item = match parsed {
                    Ok(cmd) => PendingItem::Cmd { tag, cmd },
                    Err(e) => PendingItem::ParseErr {
                        tag,
                        message: e.message,
                    },
                };
                conn.pending.push_back(item);
            }
            Ok(LineRead::Eof) => {
                conn.read_done = true;
                break;
            }
            Ok(LineRead::Oversized) => {
                conn.pending.push_back(PendingItem::Oversized);
                conn.read_done = true;
                break;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                break;
            }
            Err(_) => {
                conn.abort = true;
                break;
            }
        }
    }
}

/// Commands that keep executing while this connection has a commit in
/// flight: they touch only session-local state (or submit another
/// commit), so running them early is indistinguishable from the
/// blocking transport's strict sequencing — and it is exactly what
/// lets a pipelined commit burst coalesce into one window.
fn safe_during_commit(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Insert { .. }
            | Command::Delete { .. }
            | Command::Begin
            | Command::Rollback
            | Command::Load { .. }
            | Command::Commit
    )
}

/// Executes queued commands in order, up to the fairness cap, stalling
/// when the next command must observe an in-flight commit's outcome.
fn exec_pending(ctx: &EventCtx, conn: &mut Conn) {
    let mut budget = MAX_CMDS_PER_PUMP;
    while budget > 0 && !conn.closing {
        let commit_in_flight = conn.slots.iter().any(|s| matches!(s, Slot::Commit { .. }));
        match conn.pending.front() {
            None => break,
            Some(PendingItem::Cmd { cmd: Some(c), .. })
                if commit_in_flight && !safe_during_commit(c) =>
            {
                break;
            }
            Some(_) => {}
        }
        budget -= 1;
        match conn.pending.pop_front().expect("checked front") {
            PendingItem::ParseErr { tag, message } => {
                push_err(conn, tag.as_deref(), WireErrorKind::Parse, &message);
                saver_tick(ctx);
            }
            PendingItem::Oversized => {
                ctx.obs.disconnects_oversized.inc();
                push_err(
                    conn,
                    None,
                    WireErrorKind::Proto,
                    &format!("line exceeds {} bytes", ctx.max_line_bytes),
                );
                conn.closing = true;
            }
            PendingItem::Cmd { tag, cmd } => {
                if matches!(cmd, Some(Command::Commit)) {
                    // Asynchronous commit: same admission checks as the
                    // blocking path, but the ack becomes an ordered slot
                    // instead of parking the worker.
                    match conn.interp.take_commit_changes() {
                        Ok(changes) => conn.slots.push_back(Slot::Commit {
                            tag,
                            ticket: ctx.committer.submit(changes),
                        }),
                        Err(e) => push_err(conn, tag.as_deref(), wire_kind(e.kind), &e.message),
                    }
                    continue;
                }
                let result = conn.interp.run_session_command(cmd.as_ref());
                saver_tick(ctx);
                match result {
                    Ok(reply) => match reply.control {
                        SessionControl::Continue => push_response(
                            conn,
                            tag.as_deref(),
                            &Response::from_output(&reply.output),
                        ),
                        SessionControl::Quit => {
                            push_response(conn, tag.as_deref(), &Response::Ok(vec!["bye".into()]));
                            farewell(conn);
                        }
                        SessionControl::Shutdown => {
                            push_response(
                                conn,
                                tag.as_deref(),
                                &Response::Ok(vec!["shutting down".into()]),
                            );
                            ctx.shutdown.store(true, Ordering::SeqCst);
                            farewell(conn);
                        }
                    },
                    Err(e) => push_err(conn, tag.as_deref(), wire_kind(e.kind), &e.message),
                }
            }
        }
    }
}

/// Mirrors the blocking transport: plan-cache changes persist before
/// the command's ack reaches the client (commits excluded — their save
/// runs once per window on the committer thread).
fn saver_tick(ctx: &EventCtx) {
    if let Some(saver) = &ctx.saver {
        let _ = saver.maybe_save(&ctx.shared);
    }
}

/// `quit`/`shutdown`: the farewell is the session's last frame — stop
/// reading and drop anything the client pipelined after it (the
/// blocking transport never reads those lines either).
fn farewell(conn: &mut Conn) {
    conn.closing = true;
    conn.read_done = true;
    conn.pending.clear();
}

fn push_response(conn: &mut Conn, tag: Option<&str>, resp: &Response) {
    let mut buf = Vec::new();
    protocol::write_tagged_response(&mut buf, tag, resp).expect("vec write");
    conn.slots.push_back(Slot::Ready(buf));
}

fn push_err(conn: &mut Conn, tag: Option<&str>, kind: WireErrorKind, message: &str) {
    push_response(
        conn,
        tag,
        &Response::Err {
            kind,
            message: message.to_string(),
        },
    );
}

/// Moves resolved slots, in order, into the write buffer; stops at the
/// first still-in-flight commit so responses never reorder.
fn fill_out(conn: &mut Conn) {
    while let Some(slot) = conn.slots.pop_front() {
        match slot {
            Slot::Ready(bytes) => conn.out.extend_from_slice(&bytes),
            Slot::Commit { tag, ticket } => match ticket.try_ack() {
                None => {
                    conn.slots.push_front(Slot::Commit { tag, ticket });
                    break;
                }
                Some(result) => {
                    let resp = match result {
                        Ok(ack) => {
                            Response::from_output(&format!("{}\n", commit_ack_message(&ack)))
                        }
                        Err(message) => Response::Err {
                            kind: WireErrorKind::Citation,
                            message,
                        },
                    };
                    protocol::write_tagged_response(&mut conn.out, tag.as_deref(), &resp)
                        .expect("vec write");
                }
            },
        }
    }
}

/// Writes as much of the buffer as the socket accepts right now.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while conn.written < conn.out.len() {
        match conn.stream.write(&conn.out[conn.written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.out_drained() && !conn.out.is_empty() {
        conn.out.clear();
        conn.written = 0;
    }
    Ok(())
}

/// Arms (or disarms) write interest to match the buffer state.
fn update_interest(poller: &Poller, key: usize, conn: &mut Conn) {
    let want = !conn.out_drained();
    if want != conn.want_write {
        let interest = if want {
            Event::all(key)
        } else {
            Event::readable(key)
        };
        if poller.modify(&conn.stream, interest).is_ok() {
            conn.want_write = want;
        }
    }
}

fn close_conn(ctx: &EventCtx, poller: &Poller, conn: &Conn) {
    let _ = poller.delete(&conn.stream);
    ctx.open_conns.fetch_sub(1, Ordering::SeqCst);
}

/// Switches a drained connection into the replication sub-protocol on
/// its own thread (feeds are long-lived writers; multiplexing them
/// through the poller would buy nothing).
fn hand_to_feed(ctx: &EventCtx, poller: &Poller, conn: Conn, hello: String) {
    let _ = poller.delete(&conn.stream);
    ctx.open_conns.fetch_sub(1, Ordering::SeqCst);
    let Conn { stream, .. } = conn;
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let shared = Arc::clone(&ctx.shared);
    let shutdown = Arc::clone(&ctx.shutdown);
    let spawned = std::thread::Builder::new()
        .name("citesys-net-feed".into())
        .spawn(move || {
            let _ = crate::replication::serve_feed(&shared, &shutdown, stream, &hello);
        });
    if let Ok(handle) = spawned {
        ctx.feed_threads.lock().push(handle);
    }
}

/// Shutdown: notify every live session, give buffered responses (and
/// in-flight commit acks — the committer outlives the workers) a
/// bounded drain, then close everything.
fn drain_on_shutdown(ctx: &EventCtx, poller: &Poller, conns: &mut HashMap<usize, Conn>) {
    for conn in conns.values_mut() {
        if !conn.closing {
            push_err(conn, None, WireErrorKind::Proto, "server shutting down");
            conn.closing = true;
            conn.read_done = true;
            conn.pending.clear();
            conn.replica_hello = None;
        }
    }
    let deadline = Instant::now() + SHUTDOWN_DRAIN;
    while !conns.is_empty() && Instant::now() < deadline {
        let keys: Vec<usize> = conns.keys().copied().collect();
        let mut progressed = false;
        for key in keys {
            let conn = conns.get_mut(&key).expect("listed key exists");
            fill_out(conn);
            let dead = flush(conn).is_err();
            if dead || (conn.slots.is_empty() && conn.out_drained()) {
                let conn = conns.remove(&key).expect("listed key exists");
                close_conn(ctx, poller, &conn);
                progressed = true;
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    for (_, conn) in conns.drain() {
        close_conn(ctx, poller, &conn);
    }
}

//! # citesys-net — the network front end
//!
//! The paper frames data citation as a query-time **service** over an
//! evolving database; this crate is the serving layer. It is hermetic
//! (`std::net` only, no async runtime) and splits into:
//!
//! | module | contents |
//! |--------|----------|
//! | [`protocol`] | the shared command grammar ([`protocol::Command`]) + wire framing — one parser for the script runner, the stdin REPL and the TCP server, so the surfaces cannot drift |
//! | [`script`] | the stateful [`Interpreter`]: per-session state over a shareable [`SharedStore`] (versioned database, registry, plan caches, cached service) |
//! | [`group`] | cross-connection **group commit**: racing transactions coalesce into one merged changeset and one snapshot swap per commit window |
//! | [`server`] | the TCP [`Server`]: bounded worker pool, per-connection sessions, idle timeouts, graceful shutdown |
//! | [`event`] | the **event-driven transport** (`ServerConfig { event_loop: true, .. }`): a fixed worker set multiplexes thousands of non-blocking sockets over the hermetic epoll shim, with wire pipelining and `@tag` request tags |
//! | [`client`] | [`Connection`] + the `citesys client` script runner (sync and pipelined) |
//! | [`persist`] | debounced plan-cache persistence (saves survive SIGINT / killed connections) |
//! | [`replication`] | WAL-shipping read replicas: primary-side feeds plus the `serve --follow` follower runtime, with bounded-lag accounting |
//! | [`obs`] | observability: the registry-backed [`obs::StoreObs`] instrument bundle (commit/replication counters, per-stage cite histograms, durability timings), the `serve --metrics` scrape responder, and the `--slow-cite-ms` log line |
//!
//! ## Quickstart
//!
//! ```
//! use citesys_net::client::Connection;
//! use citesys_net::protocol::Response;
//! use citesys_net::server::{Server, ServerConfig};
//!
//! let server = Server::spawn(ServerConfig::default()).unwrap();
//! let mut conn = Connection::connect(&server.local_addr().to_string()).unwrap();
//! conn.send("schema R(A:int)").unwrap();
//! conn.send("insert R(1)").unwrap();
//! conn.send("commit").unwrap();
//! conn.send("view V(A) :- R(A) | cite CV(D) :- D = 'x'").unwrap();
//! let reply = conn.send("cite Q(A) :- R(A)").unwrap();
//! match reply {
//!     Response::Ok(lines) => assert!(lines[0].contains("1 answer tuple(s)")),
//!     Response::Err { message, .. } => panic!("{message}"),
//! }
//! server.stop();
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod event;
pub mod group;
pub mod obs;
pub mod persist;
pub mod protocol;
pub mod replication;
pub mod script;
pub mod server;

pub use client::Connection;
pub use group::{CommitAck, CommitTicket, GroupCommitHandle, GroupCommitter};
pub use obs::{spawn_metrics_server, StoreObs};
pub use persist::PlanSaver;
pub use protocol::{Command, LineReader, Response, WireErrorKind};
pub use script::{
    Interpreter, ScriptError, ScriptErrorKind, SessionControl, SessionReply, SharedStore,
    StoreStats,
};
pub use server::{Server, ServerConfig};

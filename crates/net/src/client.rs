//! Client side of the wire protocol: a [`Connection`] for programmatic
//! use (tests, benches, tools) and [`run_script`] for the
//! `citesys client` CLI mode.

use std::io::{self, BufReader, Write};
use std::net::TcpStream;

use crate::protocol::{self, Response, WireErrorKind};

/// One protocol connection: sends command lines, reads framed
/// responses.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    banner: String,
}

impl Connection {
    /// Connects and validates the server banner.
    pub fn connect(addr: &str) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut banner = String::new();
        io::BufRead::read_line(&mut reader, &mut banner)?;
        let banner = banner.trim_end_matches(['\n', '\r']).to_string();
        if !banner.starts_with("citesys-net") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("not a citesys-net server (banner: '{banner}')"),
            ));
        }
        Ok(Connection {
            stream,
            reader,
            banner,
        })
    }

    /// The banner line the server greeted with.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// Sends one command line and reads its framed response.
    pub fn send(&mut self, line: &str) -> io::Result<Response> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        protocol::read_response(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Raw write access (protocol tests use this to split lines across
    /// TCP segments).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Reads one framed response without sending anything (pair with
    /// [`stream`](Self::stream) writes).
    pub fn read_response(&mut self) -> io::Result<Option<Response>> {
        protocol::read_response(&mut self.reader)
    }
}

/// Exit code when the failure is I/O or protocol level.
pub const EXIT_IO: i32 = 1;
/// Exit code for a script parse error reported by the server.
pub const EXIT_PARSE: i32 = 3;
/// Exit code for a citation/runtime error reported by the server.
pub const EXIT_CITE: i32 = 4;

/// Streams `script` to the server at `addr` line by line, writing each
/// response's payload to `out` and the first error to `err`. Stops at
/// the first error (script semantics) and returns the process exit
/// code: 0 on success, 3/4 for server-reported parse/citation errors, 1
/// for I/O and protocol failures.
pub fn run_script(addr: &str, script: &str, out: &mut impl Write, err: &mut impl Write) -> i32 {
    let mut conn = match Connection::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            let _ = writeln!(err, "error connecting to {addr}: {e}");
            return EXIT_IO;
        }
    };
    for (i, line) in script.lines().enumerate() {
        match conn.send(line) {
            Ok(Response::Ok(lines)) => {
                for l in lines {
                    let _ = writeln!(out, "{l}");
                }
            }
            Ok(Response::Err { kind, message }) => {
                let _ = writeln!(err, "error: line {}: {message}", i + 1);
                return match kind {
                    WireErrorKind::Parse => EXIT_PARSE,
                    // A rejected write on a read-only replica is a
                    // command-level failure, like a citation error.
                    WireErrorKind::Citation | WireErrorKind::Readonly => EXIT_CITE,
                    WireErrorKind::Proto => EXIT_IO,
                };
            }
            Err(e) => {
                let _ = writeln!(err, "error: line {}: {e}", i + 1);
                return EXIT_IO;
            }
        }
    }
    // Best-effort clean close; the server also handles plain EOF.
    let _ = conn.send("quit");
    0
}

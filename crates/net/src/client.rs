//! Client side of the wire protocol: a [`Connection`] for programmatic
//! use (tests, benches, tools) and [`run_script`] for the
//! `citesys client` CLI mode.

use std::io::{self, BufReader, Write};
use std::net::TcpStream;

use crate::protocol::{self, Response, WireErrorKind};

/// One protocol connection: sends command lines, reads framed
/// responses.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    banner: String,
}

impl Connection {
    /// Connects and validates the server banner.
    pub fn connect(addr: &str) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut banner = String::new();
        io::BufRead::read_line(&mut reader, &mut banner)?;
        let banner = banner.trim_end_matches(['\n', '\r']).to_string();
        if !banner.starts_with("citesys-net") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("not a citesys-net server (banner: '{banner}')"),
            ));
        }
        Ok(Connection {
            stream,
            reader,
            banner,
        })
    }

    /// The banner line the server greeted with.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// Sends one command line and reads its framed response.
    pub fn send(&mut self, line: &str) -> io::Result<Response> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        protocol::read_response(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Raw write access (protocol tests use this to split lines across
    /// TCP segments).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Reads one framed response without sending anything (pair with
    /// [`stream`](Self::stream) writes).
    pub fn read_response(&mut self) -> io::Result<Option<Response>> {
        protocol::read_response(&mut self.reader)
    }

    /// Queues one command line **without waiting for the response** —
    /// the pipelined send half. With `tag`, the line goes out as
    /// `@<tag> <line>` and the server echoes the tag in the response
    /// frame. Follow with [`Self::read_tagged_response`] calls, one
    /// per queued line, in order.
    pub fn send_nowait(&mut self, tag: Option<&str>, line: &str) -> io::Result<()> {
        if let Some(t) = tag {
            self.stream.write_all(b"@")?;
            self.stream.write_all(t.as_bytes())?;
            self.stream.write_all(b" ")?;
        }
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Reads one framed response with its echoed tag (`None` for
    /// untagged frames); `Ok(None)` at clean EOF.
    pub fn read_tagged_response(&mut self) -> io::Result<Option<(Option<String>, Response)>> {
        protocol::read_tagged_response(&mut self.reader)
    }

    /// Pipelines a whole batch: sends every line (tagged `1`, `2`, …
    /// by position), then reads every response, verifying the echoed
    /// tags come back in request order. Returns the responses
    /// positionally.
    pub fn pipeline(&mut self, lines: &[&str]) -> io::Result<Vec<Response>> {
        for (i, line) in lines.iter().enumerate() {
            self.send_nowait(Some(&(i + 1).to_string()), line)?;
        }
        let mut responses = Vec::with_capacity(lines.len());
        for i in 0..lines.len() {
            let (tag, resp) = self.read_tagged_response()?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            })?;
            let expect = (i + 1).to_string();
            if tag.as_deref() != Some(expect.as_str()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("pipelined response out of order: expected tag @{expect}, got {tag:?}"),
                ));
            }
            responses.push(resp);
        }
        Ok(responses)
    }
}

/// Exit code when the failure is I/O or protocol level.
pub const EXIT_IO: i32 = 1;
/// Exit code for a script parse error reported by the server.
pub const EXIT_PARSE: i32 = 3;
/// Exit code for a citation/runtime error reported by the server.
pub const EXIT_CITE: i32 = 4;

/// Streams `script` to the server at `addr` line by line, writing each
/// response's payload to `out` and the first error to `err`. Stops at
/// the first error (script semantics) and returns the process exit
/// code: 0 on success, 3/4 for server-reported parse/citation errors, 1
/// for I/O and protocol failures.
pub fn run_script(addr: &str, script: &str, out: &mut impl Write, err: &mut impl Write) -> i32 {
    let mut conn = match Connection::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            let _ = writeln!(err, "error connecting to {addr}: {e}");
            return EXIT_IO;
        }
    };
    for (i, line) in script.lines().enumerate() {
        match conn.send(line) {
            Ok(Response::Ok(lines)) => {
                for l in lines {
                    let _ = writeln!(out, "{l}");
                }
            }
            Ok(Response::Err { kind, message }) => {
                let _ = writeln!(err, "error: line {}: {message}", i + 1);
                return match kind {
                    WireErrorKind::Parse => EXIT_PARSE,
                    // A rejected write on a read-only replica is a
                    // command-level failure, like a citation error.
                    WireErrorKind::Citation | WireErrorKind::Readonly => EXIT_CITE,
                    WireErrorKind::Proto => EXIT_IO,
                };
            }
            Err(e) => {
                let _ = writeln!(err, "error: line {}: {e}", i + 1);
                return EXIT_IO;
            }
        }
    }
    // Best-effort clean close; the server also handles plain EOF.
    let _ = conn.send("quit");
    0
}

/// [`run_script`] in **pipelined** mode (`citesys client --pipeline`):
/// every script line is sent up front, tagged with its line number,
/// and the responses are read back in one pass — one round trip
/// instead of one per line. Output and exit codes match [`run_script`]
/// with one caveat: because the whole script is already on the wire,
/// lines after a failing one have still executed server-side (the
/// sync runner stops sending at the first error).
pub fn run_script_pipelined(
    addr: &str,
    script: &str,
    out: &mut impl Write,
    err: &mut impl Write,
) -> i32 {
    let mut conn = match Connection::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            let _ = writeln!(err, "error connecting to {addr}: {e}");
            return EXIT_IO;
        }
    };
    let lines: Vec<&str> = script.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if let Err(e) = conn.send_nowait(Some(&(i + 1).to_string()), line) {
            let _ = writeln!(err, "error: line {}: {e}", i + 1);
            return EXIT_IO;
        }
    }
    for i in 0..lines.len() {
        match conn.read_tagged_response() {
            Ok(Some((tag, Response::Ok(payload)))) => {
                if tag.as_deref() != Some((i + 1).to_string().as_str()) {
                    let _ = writeln!(
                        err,
                        "error: line {}: response tag mismatch (got {tag:?})",
                        i + 1
                    );
                    return EXIT_IO;
                }
                for l in payload {
                    let _ = writeln!(out, "{l}");
                }
            }
            Ok(Some((_tag, Response::Err { kind, message }))) => {
                let _ = writeln!(err, "error: line {}: {message}", i + 1);
                return match kind {
                    WireErrorKind::Parse => EXIT_PARSE,
                    WireErrorKind::Citation | WireErrorKind::Readonly => EXIT_CITE,
                    WireErrorKind::Proto => EXIT_IO,
                };
            }
            Ok(None) => {
                let _ = writeln!(err, "error: line {}: server closed the connection", i + 1);
                return EXIT_IO;
            }
            Err(e) => {
                let _ = writeln!(err, "error: line {}: {e}", i + 1);
                return EXIT_IO;
            }
        }
    }
    let _ = conn.send("quit");
    0
}

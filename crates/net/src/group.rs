//! Cross-connection **group commit**.
//!
//! Every network session's `commit` submits its buffered [`Changeset`]
//! to one dedicated committer thread instead of taking the store lock
//! itself. The committer drains whatever requests are queued (plus a
//! short coalescing window for racing ones), applies each transaction
//! **atomically and in arrival order** against the shared store, then
//! seals everything as **one** version with **one** delta-maintained
//! service snapshot swap — the cross-transaction batching the paper's
//! evolving-database story calls for at serving scale.
//!
//! Per-transaction semantics are preserved: a changeset that fails
//! (e.g. a key violation against the state left by an earlier
//! transaction in the same window) is rolled back alone and its session
//! gets a conflict error; the other transactions in the window commit.
//! The merged result equals running the same transactions sequentially
//! in window order — the window only amortizes version sealing and
//! snapshot publication, never reorders or interleaves ops.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use citesys_storage::Changeset;
use parking_lot::Mutex;

use crate::persist::PlanSaver;
use crate::script::SharedStore;

/// A successful commit acknowledgement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommitAck {
    /// The version the transaction was sealed into.
    pub version: u64,
    /// How many of the transaction's ops changed data (net of no-ops).
    pub applied: usize,
    /// How many transactions shared this commit window.
    pub group_size: usize,
}

struct CommitRequest {
    changes: Changeset,
    reply: mpsc::Sender<Result<CommitAck, String>>,
}

enum Msg {
    Commit(CommitRequest),
    Stop,
}

/// A cloneable handle sessions use to submit commits.
#[derive(Clone)]
pub struct GroupCommitHandle {
    tx: mpsc::Sender<Msg>,
}

impl GroupCommitHandle {
    /// Submits one transaction and blocks until the committer has sealed
    /// (or rejected) it. `Err` carries the conflict message.
    pub fn commit(&self, changes: Changeset) -> Result<CommitAck, String> {
        self.submit(changes).wait()
    }

    /// Submits one transaction **without blocking** and returns a
    /// ticket to poll for the acknowledgement. This is how the
    /// event-driven transport keeps a worker serving other connections
    /// while a pipelined commit burst rides one coalescing window; the
    /// blocking [`commit`](Self::commit) is `submit(..).wait()`.
    pub fn submit(&self, changes: Changeset) -> CommitTicket {
        let (reply, rx) = mpsc::channel();
        // A failed send drops `reply`, so the ticket's receiver reports
        // disconnection — the "pipeline closed" path, no special case.
        let _ = self.tx.send(Msg::Commit(CommitRequest { changes, reply }));
        CommitTicket { rx }
    }
}

/// A pending asynchronous commit handed out by
/// [`GroupCommitHandle::submit`].
pub struct CommitTicket {
    rx: mpsc::Receiver<Result<CommitAck, String>>,
}

impl CommitTicket {
    /// Polls for the acknowledgement without blocking: `None` while the
    /// commit is still in flight, `Some(..)` once the committer sealed
    /// or rejected it (or the pipeline closed).
    pub fn try_ack(&self) -> Option<Result<CommitAck, String>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(Err("commit pipeline closed".to_string()))
            }
        }
    }

    /// Blocks until the acknowledgement arrives.
    pub fn wait(&self) -> Result<CommitAck, String> {
        self.rx
            .recv()
            .map_err(|_| "commit pipeline closed".to_string())?
    }
}

/// The dedicated committer thread. Dropping it closes the pipeline and
/// joins the thread (pending requests are still processed first).
pub struct GroupCommitter {
    handle: GroupCommitHandle,
    thread: Option<JoinHandle<()>>,
}

impl GroupCommitter {
    /// Spawns the committer over `shared`. `window` is how long the
    /// thread waits for more racing commits after the first one arrives
    /// — `Duration::ZERO` degrades to per-transaction commits (each
    /// request usually gets its own window), which is the E16 baseline.
    pub fn spawn(shared: Arc<Mutex<SharedStore>>, window: Duration) -> GroupCommitter {
        Self::spawn_with_saver(shared, window, None)
    }

    /// [`spawn`](Self::spawn) with a plan saver attached: the committer
    /// runs one `maybe_save` per **window**, after sealing and before
    /// acking — however many transactions the window merged, the plan
    /// file is checked (and at most written) once, instead of once per
    /// session command as the pre-coalescing server did.
    pub fn spawn_with_saver(
        shared: Arc<Mutex<SharedStore>>,
        window: Duration,
        saver: Option<Arc<PlanSaver>>,
    ) -> GroupCommitter {
        let (tx, rx) = mpsc::channel::<Msg>();
        let thread = std::thread::Builder::new()
            .name("citesys-group-commit".into())
            .spawn(move || {
                let mut stopped = false;
                while !stopped {
                    let first = match rx.recv() {
                        Ok(Msg::Commit(req)) => req,
                        Ok(Msg::Stop) | Err(_) => break,
                    };
                    let mut batch = vec![first];
                    // Coalescing window: gather transactions racing with
                    // the first one. try_recv afterwards also scoops up
                    // anything that queued while we were processing the
                    // previous window.
                    let deadline = Instant::now() + window;
                    loop {
                        let left = deadline.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            break;
                        }
                        match rx.recv_timeout(left) {
                            Ok(Msg::Commit(req)) => batch.push(req),
                            Ok(Msg::Stop) => {
                                stopped = true;
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    while !stopped {
                        match rx.try_recv() {
                            Ok(Msg::Commit(req)) => batch.push(req),
                            Ok(Msg::Stop) => stopped = true,
                            Err(_) => break,
                        }
                    }
                    Self::process(&shared, &saver, batch);
                }
            })
            .expect("spawn group-commit thread");
        GroupCommitter {
            handle: GroupCommitHandle { tx },
            thread: Some(thread),
        }
    }

    /// A handle for sessions to submit commits through.
    pub fn handle(&self) -> GroupCommitHandle {
        self.handle.clone()
    }

    /// One commit window: apply each transaction atomically in arrival
    /// order, seal every success as one version (WAL-logged before the
    /// seal when the store is durable), run at most one plan-cache
    /// save, publish one service snapshot, ack each session.
    fn process(
        shared: &Mutex<SharedStore>,
        saver: &Option<Arc<PlanSaver>>,
        batch: Vec<CommitRequest>,
    ) {
        let group_size = batch.len();
        let mut sh = shared.lock();
        let obs = sh.obs().clone();
        let window = citesys_obs::SpanTimer::start(obs.timings_enabled());
        obs.group_windows.inc();
        obs.largest_group.set_max(group_size as u64);
        let outcomes: Vec<Result<usize, String>> = batch
            .iter()
            .map(|req| sh.apply_changes(&req.changes).map_err(|(_, m)| m))
            .collect();
        // Seal once — only if at least one transaction survived (an
        // all-conflict window must not cut an empty version).
        let version = if outcomes.iter().any(Result::is_ok) {
            match sh.seal_version() {
                Ok(v) => Some(v),
                Err((_, m)) => {
                    for req in &batch {
                        let _ = req.reply.send(Err(m.clone()));
                    }
                    return;
                }
            }
        } else {
            None
        };
        // One plan-cache save per window, before any ack — durability
        // first, and the whole window shares the write. The acks below
        // only touch the lock-free instruments, so the store lock is
        // released for good here.
        drop(sh);
        if let Some(saver) = saver {
            let _ = saver.maybe_save(shared);
        }
        for (req, outcome) in batch.into_iter().zip(outcomes) {
            let reply = match (outcome, version) {
                (Ok(applied), Some(version)) => {
                    obs.commits.inc();
                    Ok(CommitAck {
                        version,
                        applied,
                        group_size,
                    })
                }
                (Ok(_), None) => unreachable!("a success forces a seal"),
                (Err(message), _) => Err(message),
            };
            // A session that died while waiting just drops its receiver;
            // its transaction still committed with the window.
            let _ = req.reply.send(reply);
        }
        obs.group_window_seconds
            .observe_micros(window.elapsed_micros());
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        // An explicit stop message (rather than closing the channel):
        // sessions may still hold handle clones, so sender-count-zero
        // would never come. After the thread exits, those handles get
        // "pipeline closed" errors instead of hanging.
        let _ = self.handle.tx.send(Msg::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Interpreter;

    fn setup(shared: &Arc<Mutex<SharedStore>>) {
        let mut admin = Interpreter::session(Arc::clone(shared), None);
        admin.run_line("schema R(A:int, B:text) key(0)").unwrap();
        admin.run_line("commit").unwrap();
    }

    #[test]
    fn racing_commits_coalesce_into_one_window() {
        let shared = SharedStore::new_shared();
        setup(&shared);
        let committer = GroupCommitter::spawn(Arc::clone(&shared), Duration::from_millis(100));
        let handle = committer.handle();
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let acks: Vec<CommitAck> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let handle = handle.clone();
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let mut changes = Changeset::new();
                        changes.insert("R", citesys_storage::tuple![i as i64, format!("t{i}")]);
                        barrier.wait();
                        handle.commit(changes).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All four transactions landed, and at least two shared a window
        // (with a 100ms window and a barrier start, usually all four).
        let stats = shared.lock().stats();
        assert_eq!(stats.commits, 5, "4 racing + 1 setup: {stats:?}");
        assert!(stats.largest_group >= 2, "{stats:?}");
        assert!(stats.group_windows < 5, "windows must coalesce: {stats:?}");
        let versions: std::collections::BTreeSet<u64> = acks.iter().map(|a| a.version).collect();
        assert!(
            versions.len() < 4,
            "racing commits share versions: {acks:?}"
        );
        for ack in &acks {
            assert_eq!(ack.applied, 1);
        }
        let mut check = Interpreter::session(Arc::clone(&shared), None);
        let out = check.run_line("tables").unwrap();
        assert!(out.contains("R: 4 tuples"), "{out}");
    }

    #[test]
    fn conflicting_transaction_fails_alone() {
        let shared = SharedStore::new_shared();
        setup(&shared);
        let committer = GroupCommitter::spawn(Arc::clone(&shared), Duration::ZERO);
        let handle = committer.handle();
        let mut ok = Changeset::new();
        ok.insert("R", citesys_storage::tuple![1, "a"]);
        handle.commit(ok).unwrap();
        // Key(0) clash with the committed row: rejected, store intact.
        let mut clash = Changeset::new();
        clash.insert("R", citesys_storage::tuple![1, "b"]);
        let e = handle.commit(clash).unwrap_err();
        assert!(e.contains("transaction rolled back"), "{e}");
        let mut fine = Changeset::new();
        fine.insert("R", citesys_storage::tuple![2, "c"]);
        let ack = handle.commit(fine).unwrap();
        assert_eq!(ack.applied, 1);
        let mut check = Interpreter::session(Arc::clone(&shared), None);
        let out = check.run_line("dump R").unwrap();
        assert!(out.contains("1,\"a\""), "{out}");
        assert!(!out.contains("\"b\""), "{out}");
        assert!(out.contains("2,\"c\""), "{out}");
    }

    #[test]
    fn plan_saves_coalesce_to_one_per_window() {
        // The pre-coalescing server ran maybe_save after EVERY session
        // command — inside a commit window, one check (and potentially
        // one write) per racing session. The committer now piggybacks a
        // single save on the window flush: however many transactions
        // race, the plan file is written at most once per window.
        let dir = std::env::temp_dir().join("citesys-group-saver-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("coalesced-{}.plans", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let saver = Arc::new(PlanSaver::new(&path));

        let shared = SharedStore::new_shared();
        let mut admin = Interpreter::session(Arc::clone(&shared), None);
        admin.run_line("schema R(A:int, B:text) key(0)").unwrap();
        admin
            .run_line("view V(A, B) :- R(A, B) | cite CV(D) :- D = 'x'")
            .unwrap();
        admin.run_line("commit").unwrap();
        admin.run_line("cite Q(A) :- R(A, B)").unwrap();
        // Plan state is dirty (a view registration + a fresh search),
        // and nothing has saved it yet.
        assert_eq!(saver.save_count(), 0);

        let committer = GroupCommitter::spawn_with_saver(
            Arc::clone(&shared),
            Duration::from_millis(100),
            Some(Arc::clone(&saver)),
        );
        let handle = committer.handle();
        let barrier = Arc::new(std::sync::Barrier::new(4));
        std::thread::scope(|scope| {
            for i in 0..4 {
                let handle = handle.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut changes = Changeset::new();
                    changes.insert("R", citesys_storage::tuple![10 + i as i64, "t"]);
                    barrier.wait();
                    handle.commit(changes).unwrap();
                });
            }
        });
        let stats = shared.lock().stats();
        assert!(stats.largest_group >= 2, "commits must race: {stats:?}");
        assert_eq!(
            saver.save_count(),
            1,
            "one write for the whole window, not one per commit"
        );
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with("citesys-plan-cache v1"));
        // A second storm with no plan-state change writes nothing more.
        let barrier = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|scope| {
            for i in 0..2 {
                let handle = handle.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut changes = Changeset::new();
                    changes.insert("R", citesys_storage::tuple![20 + i as i64, "t"]);
                    barrier.wait();
                    handle.commit(changes).unwrap();
                });
            }
        });
        assert_eq!(saver.save_count(), 1, "unchanged plans are not rewritten");
        drop(committer);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn submitted_burst_coalesces_without_blocking_the_submitter() {
        let shared = SharedStore::new_shared();
        setup(&shared);
        let committer = GroupCommitter::spawn(Arc::clone(&shared), Duration::from_millis(50));
        let handle = committer.handle();
        // One thread fires three commits back-to-back — the pipelined
        // shape — and only then starts polling for acks.
        let tickets: Vec<CommitTicket> = (0..3)
            .map(|i| {
                let mut changes = Changeset::new();
                changes.insert("R", citesys_storage::tuple![i as i64, "t"]);
                handle.submit(changes)
            })
            .collect();
        let acks: Vec<CommitAck> = tickets.iter().map(|t| t.wait().unwrap()).collect();
        assert!(
            acks.iter().all(|a| a.version == acks[0].version),
            "one window seals the whole burst: {acks:?}"
        );
        assert!(acks.iter().any(|a| a.group_size >= 2), "{acks:?}");
        // try_ack on a consumed ticket reports the closed channel
        // rather than blocking or panicking.
        drop(committer);
        let orphan = handle.submit(Changeset::new());
        assert_eq!(
            orphan.try_ack(),
            Some(Err("commit pipeline closed".to_string()))
        );
    }

    #[test]
    fn drop_joins_the_committer_thread() {
        let shared = SharedStore::new_shared();
        setup(&shared);
        let committer = GroupCommitter::spawn(Arc::clone(&shared), Duration::ZERO);
        let handle = committer.handle();
        drop(committer);
        // The pipeline is closed: commits through a stale handle error
        // instead of hanging.
        let e = handle.commit(Changeset::new()).unwrap_err();
        assert!(e.contains("pipeline closed"), "{e}");
    }
}

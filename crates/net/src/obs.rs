//! Observability wiring for the serving layer.
//!
//! [`StoreObs`] is the registry-backed instrument bundle every
//! [`SharedStore`] owns: the write-path and
//! replication counters the `stats` command prints (one source of
//! truth — `StoreStats` is assembled **from** these), the per-stage
//! cite latency histograms (`parse → plan_lookup → rewrite → eval →
//! digest → render`), the durability timings (WAL fsync, checkpoint,
//! snapshot swap, commit, group window) and the transport disconnect
//! counters. Recording is lock-free (relaxed atomics on `Arc`'d
//! instruments); the transports clone the bundle out of the store lock
//! once and never lock to count.
//!
//! The same bundle feeds three consumers:
//!
//! * the `metrics` wire/script command (Prometheus text exposition),
//! * `serve --metrics <addr>` — [`spawn_metrics_server`], a minimal
//!   `std::net` HTTP responder serving `GET /metrics`,
//! * `--slow-cite-ms <n>` — the slow-cite log, one stderr line per
//!   over-threshold cite with its span breakdown.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use citesys_obs::{Counter, Gauge, Histogram, Registry, SpanSet};
use parking_lot::Mutex;

use crate::script::SharedStore;

/// The pipeline stages that get their own latency histogram, in span
/// taxonomy order (`parse` is recorded by the transports; the rest by
/// the cite path).
pub const CITE_STAGES: &[&str] = &[
    "parse",
    "plan_lookup",
    "rewrite",
    "eval",
    "digest",
    "render",
];

/// One store's registry-backed instruments. Cloning shares every
/// instrument (all `Arc`s), so transports and the group committer hold
/// copies and record without touching the store lock.
#[derive(Clone)]
pub struct StoreObs {
    registry: Arc<Registry>,
    // Write path (the `stats` command's source of truth).
    pub(crate) commits: Arc<Counter>,
    pub(crate) snapshot_swaps: Arc<Counter>,
    pub(crate) group_windows: Arc<Counter>,
    pub(crate) largest_group: Arc<Gauge>,
    pub(crate) service_builds: Arc<Counter>,
    // Replication (primary- and follower-side).
    pub(crate) replicas_connected: Arc<Gauge>,
    pub(crate) replica_records_shipped: Arc<Counter>,
    pub(crate) replica_lag_versions: Arc<Gauge>,
    pub(crate) replica_lag_records: Arc<Gauge>,
    pub(crate) replica_reconnects: Arc<Counter>,
    // Transport disconnect accounting (both transports).
    pub(crate) disconnects_idle: Arc<Counter>,
    pub(crate) disconnects_oversized: Arc<Counter>,
    // Slow-cite log.
    pub(crate) slow_cites: Arc<Counter>,
    // Streaming bulk ingestion.
    pub(crate) ingest_records: Arc<Counter>,
    pub(crate) ingest_batches: Arc<Counter>,
    pub(crate) ingest_batch_seconds: Arc<Histogram>,
    // Latency histograms.
    pub(crate) cite_seconds: Arc<Histogram>,
    stage_parse: Arc<Histogram>,
    stage_plan_lookup: Arc<Histogram>,
    stage_rewrite: Arc<Histogram>,
    stage_eval: Arc<Histogram>,
    stage_digest: Arc<Histogram>,
    stage_render: Arc<Histogram>,
    pub(crate) commit_seconds: Arc<Histogram>,
    pub(crate) wal_fsync_seconds: Arc<Histogram>,
    pub(crate) checkpoint_seconds: Arc<Histogram>,
    pub(crate) snapshot_swap_seconds: Arc<Histogram>,
    pub(crate) group_window_seconds: Arc<Histogram>,
    // Scrape-time mirrors: counters/gauges whose source of truth is an
    // existing atomic elsewhere (plan-cache shards, view cache, WAL);
    // `SharedStore::render_metrics` refreshes them just before render.
    pub(crate) plan_cache_hits: Arc<Counter>,
    pub(crate) plan_cache_misses: Arc<Counter>,
    pub(crate) plan_cache_evictions: Arc<Counter>,
    pub(crate) view_materializations: Arc<Counter>,
    pub(crate) view_deltas_applied: Arc<Counter>,
    pub(crate) wal_records: Arc<Gauge>,
    pub(crate) history_base_version: Arc<Gauge>,
    pub(crate) checkpoints_retained: Arc<Gauge>,
    pub(crate) latest_version: Arc<Gauge>,
}

impl Default for StoreObs {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreObs {
    /// A fresh registry with every instrument pre-registered (so a
    /// scrape before any traffic still shows the full metric surface).
    pub fn new() -> Self {
        let r = Registry::new();
        let stage = |s: &str| {
            r.histogram_with(
                "citesys_cite_stage_seconds",
                "Per-stage cite pipeline latency",
                &[("stage", s)],
            )
        };
        StoreObs {
            commits: r.counter("citesys_commits_total", "Commit requests acknowledged"),
            snapshot_swaps: r.counter(
                "citesys_snapshot_swaps_total",
                "Delta-maintained service snapshot publications",
            ),
            group_windows: r.counter(
                "citesys_group_windows_total",
                "Group-commit windows processed",
            ),
            largest_group: r.gauge(
                "citesys_group_largest",
                "Largest number of transactions merged into one commit window",
            ),
            service_builds: r.counter(
                "citesys_service_builds_total",
                "Cold citation-service (re)builds",
            ),
            replicas_connected: r.gauge(
                "citesys_replicas_connected",
                "Replication feeds currently attached (primary side)",
            ),
            replica_records_shipped: r.counter(
                "citesys_replica_records_shipped_total",
                "WAL records shipped to followers (primary side)",
            ),
            replica_lag_versions: r.gauge(
                "citesys_replica_lag_versions",
                "Versions the primary is ahead of this follower",
            ),
            replica_lag_records: r.gauge(
                "citesys_replica_lag_records",
                "Shipped records received but not yet applied (follower side)",
            ),
            replica_reconnects: r.counter(
                "citesys_replica_reconnects_total",
                "Times the follower lost its primary and entered backoff",
            ),
            disconnects_idle: r.counter_with(
                "citesys_disconnects_total",
                "Sessions closed by the server, by reason",
                &[("reason", "idle")],
            ),
            disconnects_oversized: r.counter_with(
                "citesys_disconnects_total",
                "Sessions closed by the server, by reason",
                &[("reason", "oversized")],
            ),
            slow_cites: r.counter(
                "citesys_slow_cites_total",
                "Cites over the --slow-cite-ms threshold",
            ),
            ingest_records: r.counter(
                "citesys_ingest_records_total",
                "Records committed by streaming bulk ingestion",
            ),
            ingest_batches: r.counter(
                "citesys_ingest_batches_total",
                "Batches committed by streaming bulk ingestion",
            ),
            ingest_batch_seconds: r.histogram(
                "citesys_ingest_batch_seconds",
                "Per-batch ingest latency: parse through commit acknowledgement",
            ),
            cite_seconds: r.histogram("citesys_cite_seconds", "End-to-end cite latency"),
            stage_parse: stage("parse"),
            stage_plan_lookup: stage("plan_lookup"),
            stage_rewrite: stage("rewrite"),
            stage_eval: stage("eval"),
            stage_digest: stage("digest"),
            stage_render: stage("render"),
            commit_seconds: r.histogram(
                "citesys_commit_seconds",
                "Commit latency: WAL append+fsync through snapshot swap",
            ),
            wal_fsync_seconds: r.histogram(
                "citesys_wal_fsync_seconds",
                "Write-ahead-log append + fsync latency per commit",
            ),
            checkpoint_seconds: r
                .histogram("citesys_checkpoint_seconds", "Checkpoint write latency"),
            snapshot_swap_seconds: r.histogram(
                "citesys_snapshot_swap_seconds",
                "Batch delta maintenance + service publication latency",
            ),
            group_window_seconds: r.histogram(
                "citesys_group_window_seconds",
                "Group-commit window processing latency",
            ),
            plan_cache_hits: r.counter(
                "citesys_plan_cache_hits_total",
                "Plan-cache lookups answered from the cache (strict cache)",
            ),
            plan_cache_misses: r.counter(
                "citesys_plan_cache_misses_total",
                "Plan-cache lookups that ran a fresh rewriting search (strict cache)",
            ),
            plan_cache_evictions: r.counter(
                "citesys_plan_cache_evictions_total",
                "Plan-cache entries evicted by the LRU policy (strict cache)",
            ),
            view_materializations: r.counter(
                "citesys_view_materializations_total",
                "Views materialized from scratch",
            ),
            view_deltas_applied: r.counter(
                "citesys_view_deltas_applied_total",
                "Views carried across an update by delta maintenance",
            ),
            wal_records: r.gauge(
                "citesys_wal_records",
                "Write-ahead-log records since the last checkpoint",
            ),
            history_base_version: r.gauge(
                "citesys_history_base_version",
                "Oldest version time-travel cites can currently serve",
            ),
            checkpoints_retained: r.gauge(
                "citesys_checkpoints_retained",
                "Live checkpoint plus retained time-travel anchors",
            ),
            latest_version: r.gauge("citesys_latest_version", "Latest committed version"),
            registry: Arc::new(r),
        }
    }

    /// Whether latency timings (histograms + span clock reads) are on.
    pub fn timings_enabled(&self) -> bool {
        self.registry.timings_enabled()
    }

    /// Turns latency timings on or off. Counters and gauges — the
    /// `stats` command's source of truth — are unaffected.
    pub fn set_timings_enabled(&self, enabled: bool) {
        self.registry.set_timings_enabled(enabled);
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// Records one traced cite: the end-to-end latency plus every
    /// recorded stage span into its stage histogram.
    pub(crate) fn observe_cite(&self, total_us: u64, spans: &SpanSet) {
        self.cite_seconds.observe_micros(total_us);
        for (name, us) in spans.spans() {
            self.observe_stage(name, *us);
        }
    }

    /// Records `us` against the named pipeline stage (unknown stages
    /// are ignored — the span taxonomy is the contract).
    pub(crate) fn observe_stage(&self, stage: &str, us: u64) {
        let hist = match stage {
            "parse" => &self.stage_parse,
            "plan_lookup" => &self.stage_plan_lookup,
            "rewrite" => &self.stage_rewrite,
            "eval" => &self.stage_eval,
            "digest" => &self.stage_digest,
            "render" => &self.stage_render,
            _ => return,
        };
        hist.observe_micros(us);
    }
}

/// Formats one slow-cite log line: total latency, the per-stage span
/// breakdown in pipeline order, plan-cache hit/miss, the cited version
/// and the query. Stable single-line shape (`slow-cite …`) so smoke
/// scripts can grep it.
pub(crate) fn slow_cite_line(total_us: u64, spans: &SpanSet, version: u64, query: &str) -> String {
    let ms = |us: u64| format!("{}.{:03}ms", us / 1000, us % 1000);
    let mut line = format!("slow-cite total={}", ms(total_us));
    for stage in CITE_STAGES {
        if let Some(us) = spans.get(stage) {
            line.push_str(&format!(" {stage}={}", ms(us)));
        }
    }
    // A traced cite that never ran the rewriting search was served from
    // the plan cache.
    let hit = spans.get("rewrite").is_none();
    line.push_str(if hit {
        " plan_cache=hit"
    } else {
        " plan_cache=miss"
    });
    line.push_str(&format!(" version={version} query=\"{query}\""));
    line
}

/// How often the scrape listener wakes to notice shutdown.
const SCRAPE_TICK: Duration = Duration::from_millis(50);

/// Per-request socket budget: a scraper that stalls mid-request is cut
/// off rather than pinning the responder thread.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Spawns the `serve --metrics <addr>` scrape endpoint: a minimal
/// `std::net` HTTP/1.1 responder answering `GET /metrics` (and `GET /`)
/// with the store's Prometheus text exposition
/// (`Content-Type: text/plain; version=0.0.4`), `404` elsewhere, one
/// request per connection (`Connection: close`). Returns the bound
/// address and the responder thread (joined at server teardown after
/// `shutdown` flips).
pub fn spawn_metrics_server(
    addr: &str,
    shared: Arc<Mutex<SharedStore>>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("citesys-metrics".into())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => serve_scrape(stream, &shared),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(SCRAPE_TICK);
                    }
                    Err(_) => std::thread::sleep(SCRAPE_TICK),
                }
            }
        })?;
    Ok((bound, handle))
}

/// One scrape: read the request head, answer, close. Errors just drop
/// the connection — a scraper retry is cheaper than server state.
fn serve_scrape(mut stream: std::net::TcpStream, shared: &Mutex<SharedStore>) {
    let _ = stream.set_read_timeout(Some(SCRAPE_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SCRAPE_IO_TIMEOUT));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the request head (or a cap — the
    // endpoint takes no bodies).
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 4096 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", shared.lock().render_metrics())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_obs_prerendered_surface() {
        let obs = StoreObs::new();
        let text = obs.render();
        for family in [
            "citesys_commits_total",
            "citesys_cite_seconds",
            "citesys_cite_stage_seconds",
            "citesys_wal_fsync_seconds",
            "citesys_replica_lag_versions",
            "citesys_disconnects_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family}")),
                "{family} missing"
            );
        }
        // Every stage label is pre-registered.
        for stage in CITE_STAGES {
            assert!(
                text.contains(&format!("stage=\"{stage}\"")),
                "stage {stage} missing"
            );
        }
    }

    #[test]
    fn observe_cite_feeds_stage_histograms() {
        let obs = StoreObs::new();
        let mut spans = SpanSet::new(true);
        spans.record_micros("plan_lookup", 5);
        spans.record_micros("rewrite", 500);
        spans.record_micros("eval", 100);
        obs.observe_cite(700, &spans);
        assert_eq!(obs.cite_seconds.count(), 1);
        let text = obs.render();
        assert!(text.contains("citesys_cite_stage_seconds_count{stage=\"rewrite\"} 1"));
        assert!(text.contains("citesys_cite_stage_seconds_count{stage=\"render\"} 0"));
    }

    #[test]
    fn slow_cite_line_shape() {
        let mut spans = SpanSet::new(true);
        spans.record_micros("plan_lookup", 12);
        spans.record_micros("eval", 1500);
        let line = slow_cite_line(2048, &spans, 7, "Q(A) :- R(A)");
        assert!(line.starts_with("slow-cite total=2.048ms"), "{line}");
        assert!(line.contains("plan_lookup=0.012ms"), "{line}");
        assert!(line.contains("eval=1.500ms"), "{line}");
        assert!(line.contains("plan_cache=hit"), "{line}");
        assert!(line.contains("version=7"), "{line}");
        assert!(line.contains("query=\"Q(A) :- R(A)\""), "{line}");
        spans.record_micros("rewrite", 99);
        assert!(slow_cite_line(1, &spans, 1, "q").contains("plan_cache=miss"));
    }
}

//! The TCP front end: a hermetic, `std::net`-only server exposing the
//! script command language as a wire protocol.
//!
//! Architecture (see ARCHITECTURE.md §"Network front end"):
//!
//! * a **bounded worker pool** — `workers` threads each accept and serve
//!   one connection at a time on a shared non-blocking listener, so at
//!   most `workers` sessions run concurrently and extra connections wait
//!   in the OS accept backlog (no unbounded thread spawning);
//! * **per-connection sessions** — each connection gets an isolated
//!   [`Interpreter::session`] over the one shared store: mutations buffer
//!   in the session, cites run on lock-free service clones, and a
//!   dropped connection discards its open transaction;
//! * the **group committer** — every session `commit` goes through one
//!   [`GroupCommitter`] thread that coalesces racing transactions into
//!   one merged changeset and one snapshot swap per commit window;
//! * **plan-cache persistence** — with a `--plan-cache` path the server
//!   stages the file's plans at startup and re-saves after any command
//!   that changed the cache, so a killed server loses at most the last
//!   in-flight search (the durability fix the stdin REPL shares).
//!
//! Sessions end on `quit`, EOF, an idle timeout, an oversized line, or
//! server shutdown; the `shutdown` command stops the whole server
//! gracefully (workers finish their current command, the committer
//! drains, the plan cache is saved).

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::group::{GroupCommitHandle, GroupCommitter};
use crate::persist::PlanSaver;
use crate::protocol::{self, LineRead, LineReader, Response, WireErrorKind};
use crate::script::{Interpreter, ScriptErrorKind, SessionControl, SharedStore, StoreStats};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads = maximum concurrent sessions.
    pub workers: usize,
    /// Close a session after this much input silence.
    pub idle_timeout: Duration,
    /// Group-commit coalescing window (`ZERO` = per-transaction
    /// commits).
    pub commit_window: Duration,
    /// Plan-cache file to stage at startup and keep saved (deprecated:
    /// superseded by `data_dir`, which persists plans *and* everything
    /// else; see MIGRATION.md).
    pub plan_cache: Option<std::path::PathBuf>,
    /// Durable data directory: recover checkpoint + WAL at startup,
    /// WAL-log every commit before acking, serve the `checkpoint`
    /// command.
    pub data_dir: Option<std::path::PathBuf>,
    /// Per-line byte cap (requests beyond it are protocol errors).
    pub max_line_bytes: usize,
    /// Follow a primary at this address (`serve --follow`): the server
    /// becomes a **read-only replica** — it bootstraps from the
    /// primary's checkpoint, tails its WAL stream, serves reads from
    /// the replicated snapshots and rejects writes with `err readonly`.
    /// Combine with `data_dir` so shipped records persist locally and a
    /// restart resumes from the local version instead of
    /// re-bootstrapping.
    pub follow: Option<String>,
    /// Use the event-driven transport (`crate::event`): `workers`
    /// becomes a fixed set of readiness-loop threads multiplexing every
    /// connection instead of a one-session-per-thread pool, and the
    /// wire grows pipelining with optional `@tag` request tags. Linux
    /// only (the poller shim's sole backend).
    pub event_loop: bool,
    /// Connection cap for the event-driven transport; connections over
    /// it are turned away with `err proto server full…`. Ignored by the
    /// blocking transport (its cap is `workers`).
    pub max_connections: usize,
    /// Auto-checkpoint after this many WAL records (`serve
    /// --checkpoint-every <n>`). Requires `data_dir`; `None` disables.
    pub checkpoint_every: Option<u64>,
    /// How many superseded checkpoints to keep as time-travel anchors
    /// (`serve --retain-checkpoints <n>`). Requires `data_dir`; 0 keeps
    /// none (the historical behavior).
    pub retain_checkpoints: usize,
    /// Serve the Prometheus scrape endpoint on this address (`serve
    /// --metrics <addr>`): `GET /metrics` answers with the same text
    /// exposition the `metrics` wire command prints. Enabling the
    /// endpoint also turns latency timings on. `None` disables.
    pub metrics: Option<String>,
    /// Slow-cite log threshold in milliseconds (`serve --slow-cite-ms
    /// <n>`): cites at or over it log one `slow-cite` line to stderr
    /// with their per-stage span breakdown. `None` disables.
    pub slow_cite_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            idle_timeout: Duration::from_secs(300),
            commit_window: Duration::from_millis(2),
            plan_cache: None,
            data_dir: None,
            max_line_bytes: protocol::MAX_LINE_BYTES,
            follow: None,
            event_loop: false,
            max_connections: 8192,
            checkpoint_every: None,
            retain_checkpoints: 0,
            metrics: None,
            slow_cite_ms: None,
        }
    }
}

/// How often a blocked read wakes up to check idle budget and the
/// shutdown flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// A running server. Dropping it (or calling [`stop`](Server::stop))
/// shuts it down and joins every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Mutex<SharedStore>>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    committer: Option<GroupCommitter>,
    saver: Option<Arc<PlanSaver>>,
    follower: Option<JoinHandle<()>>,
    open_conns: Arc<AtomicUsize>,
    feed_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics_addr: Option<SocketAddr>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads; returns
    /// immediately.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = match &config.data_dir {
            Some(dir) => Arc::new(Mutex::new(
                SharedStore::open_durable_with_retention(dir, config.retain_checkpoints)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            )),
            None => SharedStore::new_shared(),
        };
        shared.lock().set_checkpoint_every(config.checkpoint_every);
        shared.lock().set_slow_cite_ms(config.slow_cite_ms);
        // A scrape endpoint without timings would expose empty
        // histograms, so --metrics implies timings on. (Counters and
        // gauges are always on regardless — `stats` depends on them.)
        if config.metrics.is_some() {
            shared.lock().obs().set_timings_enabled(true);
        }
        let saver = match &config.plan_cache {
            Some(path) => {
                match std::fs::read_to_string(path) {
                    Ok(text) => shared.lock().stage_plan_import(text),
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                Some(Arc::new(PlanSaver::new(path)))
            }
            None => None,
        };
        // The committer owns the commit-path save: one per window,
        // before the acks, instead of one per session command.
        let committer = GroupCommitter::spawn_with_saver(
            Arc::clone(&shared),
            config.commit_window,
            saver.clone(),
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        let follower = match &config.follow {
            Some(primary) => {
                shared.lock().set_follow(primary.clone());
                Some(crate::replication::spawn_follower(
                    Arc::clone(&shared),
                    Arc::clone(&shutdown),
                    primary.clone(),
                ))
            }
            None => None,
        };
        let (metrics_addr, metrics_thread) = match &config.metrics {
            Some(addr) => {
                let (bound, handle) = crate::obs::spawn_metrics_server(
                    addr,
                    Arc::clone(&shared),
                    Arc::clone(&shutdown),
                )?;
                (Some(bound), Some(handle))
            }
            None => (None, None),
        };
        let obs = shared.lock().obs().clone();
        let listener = Arc::new(listener);
        let open_conns = Arc::new(AtomicUsize::new(0));
        let feed_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let workers = if config.event_loop {
            let ctx = crate::event::EventCtx {
                shared: Arc::clone(&shared),
                committer: committer.handle(),
                shutdown: Arc::clone(&shutdown),
                saver: saver.clone(),
                idle_timeout: config.idle_timeout,
                max_line_bytes: config.max_line_bytes,
                max_connections: config.max_connections.max(1),
                open_conns: Arc::clone(&open_conns),
                feed_threads: Arc::clone(&feed_threads),
                obs: obs.clone(),
            };
            match crate::event::spawn_workers(Arc::clone(&listener), config.workers.max(1), ctx) {
                Ok(workers) => workers,
                Err(e) => {
                    // Unwind the threads already running (no poller
                    // backend on this platform, most likely).
                    shutdown.store(true, Ordering::SeqCst);
                    if let Some(f) = follower {
                        let _ = f.join();
                    }
                    return Err(e);
                }
            }
        } else {
            (0..config.workers.max(1))
                .map(|i| {
                    let ctx = WorkerCtx {
                        listener: Arc::clone(&listener),
                        shared: Arc::clone(&shared),
                        committer: committer.handle(),
                        shutdown: Arc::clone(&shutdown),
                        saver: saver.clone(),
                        idle_timeout: config.idle_timeout,
                        max_line_bytes: config.max_line_bytes,
                        open_conns: Arc::clone(&open_conns),
                        obs: obs.clone(),
                    };
                    std::thread::Builder::new()
                        .name(format!("citesys-net-worker-{i}"))
                        .spawn(move || worker_loop(ctx))
                        .expect("spawn worker")
                })
                .collect()
        };
        Ok(Server {
            addr,
            shared,
            shutdown,
            workers,
            committer: Some(committer),
            saver,
            follower,
            open_conns,
            feed_threads,
            metrics_addr,
            metrics_thread,
        })
    }

    /// The bound scrape-endpoint address when `--metrics` is on.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The bound address (useful with an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared store (stats inspection, tests).
    pub fn shared(&self) -> &Arc<Mutex<SharedStore>> {
        &self.shared
    }

    /// Write-path counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.shared.lock().stats()
    }

    /// Connections currently held open by the transport (sessions on
    /// either transport; replication feeds are counted separately).
    /// Leak tests poll this back to zero after disconnects.
    pub fn open_connections(&self) -> usize {
        self.open_conns.load(Ordering::SeqCst)
    }

    /// True once a `shutdown` command (or [`stop`](Self::stop)) was
    /// issued.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a client issues `shutdown`, then tears down.
    pub fn wait(mut self) {
        while !self.is_shutdown() {
            std::thread::sleep(READ_TICK);
        }
        self.teardown();
    }

    /// Initiates shutdown and joins every thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.teardown();
    }

    fn teardown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for f in self.feed_threads.lock().drain(..) {
            let _ = f.join();
        }
        if let Some(f) = self.follower.take() {
            let _ = f.join();
        }
        if let Some(m) = self.metrics_thread.take() {
            let _ = m.join();
        }
        // After the workers: no more commits can arrive.
        self.committer.take();
        if let Some(saver) = &self.saver {
            let _ = saver.maybe_save(&self.shared);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() || self.committer.is_some() {
            self.teardown();
        }
    }
}

struct WorkerCtx {
    listener: Arc<TcpListener>,
    shared: Arc<Mutex<SharedStore>>,
    committer: GroupCommitHandle,
    shutdown: Arc<AtomicBool>,
    saver: Option<Arc<PlanSaver>>,
    idle_timeout: Duration,
    max_line_bytes: usize,
    open_conns: Arc<AtomicUsize>,
    obs: crate::obs::StoreObs,
}

fn worker_loop(ctx: WorkerCtx) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match ctx.listener.accept() {
            Ok((stream, _peer)) => {
                // Connection errors end that session only; the worker
                // moves on to the next accept.
                ctx.open_conns.fetch_add(1, Ordering::SeqCst);
                let _ = serve_connection(&ctx, stream);
                ctx.open_conns.fetch_sub(1, Ordering::SeqCst);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(READ_TICK);
            }
            Err(_) => std::thread::sleep(READ_TICK),
        }
    }
}

pub(crate) fn wire_kind(kind: ScriptErrorKind) -> WireErrorKind {
    match kind {
        ScriptErrorKind::Parse => WireErrorKind::Parse,
        ScriptErrorKind::Citation => WireErrorKind::Citation,
        ScriptErrorKind::Readonly => WireErrorKind::Readonly,
    }
}

fn serve_connection(ctx: &WorkerCtx, stream: TcpStream) -> io::Result<()> {
    // Short read timeouts act as ticks: they bound how long a worker
    // takes to notice shutdown or an exhausted idle budget, and the
    // LineReader keeps partial lines across them.
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{}", protocol::BANNER)?;
    writer.flush()?;
    let mut reader = LineReader::new(stream, ctx.max_line_bytes);
    let mut interp = Interpreter::session(Arc::clone(&ctx.shared), Some(ctx.committer.clone()));
    // Idle budget is wall time since the last COMPLETED line: the
    // deadline-aware read enforces it even against a client trickling
    // bytes that never finish a line (which would evade a plain
    // silence-based timeout and pin this worker forever).
    let mut last_line = Instant::now();
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            let _ = protocol::write_response(
                &mut writer,
                &Response::Err {
                    kind: WireErrorKind::Proto,
                    message: "server shutting down".into(),
                },
            );
            return Ok(());
        }
        let deadline = last_line + ctx.idle_timeout;
        let line = match reader.read_line_deadline(Some(deadline)) {
            Ok(LineRead::Line(l)) => l,
            Ok(LineRead::Eof) => return Ok(()),
            Ok(LineRead::Oversized) => {
                // Reject and close: resyncing would mean buffering the
                // rest of an unbounded line. The session's open
                // transaction dies with the connection.
                ctx.obs.disconnects_oversized.inc();
                let _ = protocol::write_response(
                    &mut writer,
                    &Response::Err {
                        kind: WireErrorKind::Proto,
                        message: format!("line exceeds {} bytes", ctx.max_line_bytes),
                    },
                );
                return Ok(());
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // WouldBlock = one READ_TICK of full silence; TimedOut =
                // the reader hit the deadline mid-line. Either way the
                // wall clock decides.
                if Instant::now() >= deadline {
                    ctx.obs.disconnects_idle.inc();
                    let _ = protocol::write_response(
                        &mut writer,
                        &Response::Err {
                            kind: WireErrorKind::Proto,
                            message: "idle timeout".into(),
                        },
                    );
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        last_line = Instant::now();
        if let Some(hello) = line.strip_prefix(protocol::REPLICA_HELLO) {
            // The connection switches into the replication sub-protocol
            // for its lifetime: this worker becomes the feed thread for
            // one follower (so each attached replica occupies a worker
            // slot — size `workers` accordingly).
            return crate::replication::serve_feed(&ctx.shared, &ctx.shutdown, writer, hello);
        }
        // Request tags ride both transports: split here so a tagged
        // command on the blocking path answers with the same tagged
        // frame the event loop would produce.
        let (tag, body) = protocol::split_tag(&line);
        // A bare token check, not a second protocol parse: `commit`
        // takes no arguments, so this matches exactly the lines
        // parse_command maps to Command::Commit.
        let is_commit = protocol::strip_comment(body).trim() == "commit";
        let result = interp.run_session_line(body);
        // Persist plan-cache changes BEFORE acking: once the client sees
        // the response, the warm cache is already on disk (a killed
        // server loses at most the in-flight command). Commits are the
        // exception — their save already ran on the committer thread,
        // once per window, so racing sessions don't each pay (or race)
        // a redundant check here.
        if !is_commit {
            if let Some(saver) = &ctx.saver {
                let _ = saver.maybe_save(&ctx.shared);
            }
        }
        match result {
            Ok(reply) => match reply.control {
                SessionControl::Continue => {
                    protocol::write_tagged_response(
                        &mut writer,
                        tag,
                        &Response::from_output(&reply.output),
                    )?;
                }
                SessionControl::Quit => {
                    protocol::write_tagged_response(
                        &mut writer,
                        tag,
                        &Response::Ok(vec!["bye".into()]),
                    )?;
                    return Ok(());
                }
                SessionControl::Shutdown => {
                    protocol::write_tagged_response(
                        &mut writer,
                        tag,
                        &Response::Ok(vec!["shutting down".into()]),
                    )?;
                    ctx.shutdown.store(true, Ordering::SeqCst);
                    return Ok(());
                }
            },
            Err(e) => {
                protocol::write_tagged_response(
                    &mut writer,
                    tag,
                    &Response::Err {
                        kind: wire_kind(e.kind),
                        message: e.message,
                    },
                )?;
            }
        }
    }
}

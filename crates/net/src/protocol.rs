//! The shared command language and wire protocol.
//!
//! Every citesys front end — the script runner, the stdin REPL and the
//! TCP server — parses input lines through [`parse_command`] into the
//! same [`Command`] AST, so the surfaces cannot drift: a command that
//! works in a script file works verbatim over a network connection.
//!
//! The **wire protocol** is line-oriented and human-typable:
//!
//! ```text
//! S: citesys-net v1                        ← banner on connect
//! C: schema Family(FID:int, FName:text) key(0)
//! S: ok 1
//! S: schema Family (2 attributes)
//! C: bogus
//! S: err parse unknown command: bogus
//! ```
//!
//! Responses are framed as `ok <n>` followed by exactly `n` payload
//! lines, or a single `err <kind> <message>` line (`kind` is one of
//! `parse`, `citation`, `proto`, `readonly`). Requests are single lines
//! terminated by `\n` (a trailing `\r` is tolerated, so `telnet`/CRLF
//! clients work). Lines longer than [`MAX_LINE_BYTES`] are rejected
//! with a `proto` error instead of being buffered without bound.
//!
//! A connection can also switch into the **replication sub-protocol**:
//! a follower's first request line is `replica hello <version>
//! <setup-digest>`, after which the server streams [`ReplicaFrame`]s
//! (`ckpt`, `wal`, `ping`) on that connection for its lifetime instead
//! of command responses. The frames reuse the durable text codecs —
//! a `wal` frame's payload *is* a [`Changeset`] in its WAL text form,
//! a `ckpt` frame's sections are the checkpoint section texts.

use std::fmt;
use std::io::{self, BufRead, Read, Write};
use std::time::Instant;

use citesys_core::{
    CitationFormat, CitationFunction, CitationMode, CitationQuery, EngineOptions, PolicySet,
    RewritePolicy,
};
use citesys_cq::{parse_query, ConjunctiveQuery, Value, ValueType};
use citesys_storage::{Changeset, CheckpointData, Tuple};

/// The banner the server sends on connect; clients verify the prefix.
pub const BANNER: &str = "citesys-net v1";

/// Hard cap on a single protocol line (request or response payload
/// line). Oversized requests get an `err proto …` response.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A command-surface parse failure (always maps to the script language's
/// `Parse` error kind).
#[derive(Debug)]
pub struct ParseError {
    /// What was wrong with the line.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

fn perr(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

/// A parsed `view` command: the view definition, its citation queries
/// and the static citation-function fields.
#[derive(Clone, Debug)]
pub struct ViewSpec {
    /// The view's defining conjunctive query.
    pub view: ConjunctiveQuery,
    /// Citation queries attached with `| cite <rule>` clauses.
    pub cites: Vec<CitationQuery>,
    /// Static fields attached with `| static k=v` clauses.
    pub function: CitationFunction,
}

/// A parsed `cite` command: the query plus output format and engine
/// options.
#[derive(Clone, Debug)]
pub struct CiteSpec {
    /// The query to cite.
    pub query: ConjunctiveQuery,
    /// Output format for the aggregated citation.
    pub format: CitationFormat,
    /// Evaluation options (mode, policies, partial fallback).
    pub options: EngineOptions,
    /// Historical version to cite against (`cite … @ <version>`);
    /// `None` cites the latest committed version.
    pub as_of: Option<u64>,
}

/// One line of the command language, parsed.
///
/// `Quit` and `Shutdown` are session-control commands: the interactive
/// front ends (stdin REPL, TCP session) intercept them; inside a script
/// file they are errors.
#[derive(Clone, Debug)]
pub enum Command {
    /// `schema Name(attr:type, …) [key(i, …)]`
    Schema {
        /// Relation name.
        name: String,
        /// Attribute names and types, in order.
        attrs: Vec<(String, ValueType)>,
        /// Key attribute positions.
        key: Vec<usize>,
    },
    /// `insert Name(v, …)`
    Insert {
        /// Relation name.
        rel: String,
        /// The tuple to insert.
        tuple: Tuple,
    },
    /// `delete Name(v, …)`
    Delete {
        /// Relation name.
        rel: String,
        /// The tuple to delete.
        tuple: Tuple,
    },
    /// `view <rule> | cite <rule> … [| static k=v] …`
    View(ViewSpec),
    /// `begin` — open a transaction.
    Begin,
    /// `rollback` — discard the open transaction.
    Rollback,
    /// `commit` — seal pending changes as one version.
    Commit,
    /// `cite <query> [@ <version>] [| format f] [| mode m] [| policy p] [| partial]`
    Cite(CiteSpec),
    /// `verify` — re-check the last citation's fixity token.
    Verify,
    /// `snapshot [@] <version>` — print the fixity digest of the
    /// database as of a committed version (latest when omitted).
    Snapshot {
        /// The version to digest; `None` means the latest commit.
        version: Option<u64>,
    },
    /// `compact [<window>]` — checkpoint, then trim history older than
    /// the newest `window` versions (server default when omitted).
    Compact {
        /// Number of trailing versions to keep queryable.
        window: Option<u64>,
    },
    /// `tables` — list relations and row counts.
    Tables,
    /// `dump Name` — print a relation as CSV.
    Dump {
        /// Relation name.
        rel: String,
    },
    /// `load Name from '<path>' [key(i, …)]` — bulk-load CSV rows.
    Load {
        /// Relation name.
        rel: String,
        /// CSV file path.
        path: String,
        /// Key attribute positions; `None` infers header order when the
        /// load declares the relation.
        key: Option<Vec<usize>>,
    },
    /// `ingest '<dir>' [as <name>] [manifest '<path>'] [batch <n>]` —
    /// stream a directory of CSV/JSONL dumps into the store in
    /// changeset-sized batches and pin the load in the dataset registry.
    Ingest {
        /// Directory holding `<Relation>.csv` / `<Relation>.jsonl` dumps.
        dir: String,
        /// Dataset name (defaults to the directory's base name).
        dataset: Option<String>,
        /// Manifest path override (defaults to `<data-dir>/datasets.lock`).
        manifest: Option<String>,
        /// Records per committed batch (defaults to the ingest default).
        batch: Option<usize>,
    },
    /// `datasets` — list the registered dataset loads.
    Datasets,
    /// `dataset verify ['<manifest>']` — re-hash pinned sources and
    /// re-digest the store at each load's last version.
    DatasetVerify {
        /// Manifest path override (defaults to `<data-dir>/datasets.lock`).
        manifest: Option<String>,
    },
    /// `trace` — arm a derivation trace for the next `cite`.
    Trace,
    /// `stats` — print the store's commit/swap and cache counters.
    Stats,
    /// `metrics` — print the full metrics registry in Prometheus text
    /// exposition format (the `serve --metrics` scrape payload).
    Metrics,
    /// `checkpoint` — snapshot the durable store (data, registry, views,
    /// plans) and reset the write-ahead log. Requires `--data-dir`.
    Checkpoint,
    /// `quit` — end the interactive session.
    Quit,
    /// `shutdown` — end the session AND stop the server it talks to.
    Shutdown,
}

/// Parses one input line into a [`Command`]. Comments (`#`, outside
/// single-quoted strings) are stripped; blank lines parse to `None`.
pub fn parse_command(raw: &str) -> Result<Option<Command>, ParseError> {
    let line = strip_comment(raw).trim();
    if line.is_empty() {
        return Ok(None);
    }
    let (head, rest) = line.split_once(' ').unwrap_or((line, ""));
    let cmd = match head {
        "schema" => parse_schema(rest)?,
        "insert" => {
            let (rel, tuple) = parse_ground_atom(rest).map_err(perr)?;
            Command::Insert { rel, tuple }
        }
        "delete" => {
            let (rel, tuple) = parse_ground_atom(rest).map_err(perr)?;
            Command::Delete { rel, tuple }
        }
        "view" => Command::View(parse_view(rest)?),
        "begin" => Command::Begin,
        "rollback" => Command::Rollback,
        "commit" => Command::Commit,
        "cite" => Command::Cite(parse_cite(rest)?),
        "verify" => Command::Verify,
        "snapshot" => Command::Snapshot {
            version: parse_optional_version(rest)?,
        },
        "compact" => Command::Compact {
            window: parse_optional_version(rest)?,
        },
        "tables" => Command::Tables,
        "dump" => Command::Dump {
            rel: rest.trim().to_string(),
        },
        "load" => parse_load(rest)?,
        "ingest" => parse_ingest(rest)?,
        "datasets" => {
            if !rest.trim().is_empty() {
                return Err(perr("expected: datasets"));
            }
            Command::Datasets
        }
        "dataset" => {
            let rest = rest.trim();
            let tail = rest
                .strip_prefix("verify")
                .ok_or_else(|| perr("expected: dataset verify ['<manifest>']"))?
                .trim();
            Command::DatasetVerify {
                manifest: parse_optional_quoted(tail, "dataset verify ['<manifest>']")?,
            }
        }
        "trace" => Command::Trace,
        "stats" => Command::Stats,
        "metrics" => Command::Metrics,
        "checkpoint" => Command::Checkpoint,
        "quit" => Command::Quit,
        "shutdown" => Command::Shutdown,
        other => return Err(perr(format!("unknown command: {other}"))),
    };
    Ok(Some(cmd))
}

// schema Family(FID:int, FName:text, Desc:text) key(0, 1)
fn parse_schema(rest: &str) -> Result<Command, ParseError> {
    let (name, after) = rest
        .split_once('(')
        .ok_or_else(|| perr("expected Name(attr:type, …)"))?;
    let (attrs_str, tail) = after.split_once(')').ok_or_else(|| perr("missing ')'"))?;
    let mut attrs = Vec::new();
    for part in attrs_str.split(',') {
        let (n, t) = part
            .trim()
            .split_once(':')
            .ok_or_else(|| perr(format!("attribute '{part}' lacks ':type'")))?;
        let ty = match t.trim() {
            "int" => ValueType::Int,
            "text" => ValueType::Text,
            "bool" => ValueType::Bool,
            other => return Err(perr(format!("unknown type '{other}'"))),
        };
        attrs.push((n.trim().to_string(), ty));
    }
    let mut key = Vec::new();
    let tail = tail.trim();
    if let Some(k) = tail.strip_prefix("key(") {
        let inner = k
            .strip_suffix(')')
            .ok_or_else(|| perr("missing ')' in key"))?;
        for idx in inner.split(',') {
            let i: usize = idx
                .trim()
                .parse()
                .map_err(|_| perr(format!("bad key position '{idx}'")))?;
            if i >= attrs.len() {
                return Err(perr(format!("key position {i} out of range")));
            }
            key.push(i);
        }
    } else if !tail.is_empty() {
        return Err(perr(format!("unexpected trailing input: '{tail}'")));
    }
    Ok(Command::Schema {
        name: name.trim().to_string(),
        attrs,
        key,
    })
}

// load Family from '/dumps/Family.csv' key(0)
fn parse_load(rest: &str) -> Result<Command, ParseError> {
    let (name, after) = rest
        .trim()
        .split_once(" from ")
        .ok_or_else(|| perr("expected: load <Relation> from '<path>' [key(i, …)]"))?;
    let after = after.trim();
    let (path_part, key) = match after.rfind(" key(") {
        Some(idx) => (
            after[..idx].trim(),
            Some(parse_key_positions(after[idx + 1..].trim())?),
        ),
        None => (after, None),
    };
    Ok(Command::Load {
        rel: name.trim().to_string(),
        path: path_part.trim_matches('\'').to_string(),
        key,
    })
}

// key(0, 1) — positions only; range checking happens against the header.
fn parse_key_positions(spec: &str) -> Result<Vec<usize>, ParseError> {
    let inner = spec
        .strip_prefix("key(")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| perr("expected key(i, …)"))?;
    let mut key = Vec::new();
    for idx in inner.split(',') {
        key.push(
            idx.trim()
                .parse::<usize>()
                .map_err(|_| perr(format!("bad key position '{idx}'")))?,
        );
    }
    Ok(key)
}

// ingest '/dumps/gtopdb' as gtopdb manifest '/data/datasets.lock' batch 50000
fn parse_ingest(rest: &str) -> Result<Command, ParseError> {
    let rest = rest.trim();
    let usage = "expected: ingest '<dir>' [as <name>] [manifest '<path>'] [batch <n>]";
    let (dir, mut tail) = take_quoted(rest).ok_or_else(|| perr(usage))?;
    let mut dataset = None;
    let mut manifest = None;
    let mut batch = None;
    while !tail.is_empty() {
        let (word, after) = tail.split_once(' ').unwrap_or((tail, ""));
        match word {
            "as" => {
                let (name, more) = after.trim().split_once(' ').unwrap_or((after.trim(), ""));
                if name.is_empty() {
                    return Err(perr("'as' needs a dataset name"));
                }
                dataset = Some(name.to_string());
                tail = more.trim();
            }
            "manifest" => {
                let (p, more) =
                    take_quoted(after.trim()).ok_or_else(|| perr("'manifest' needs a '<path>'"))?;
                manifest = Some(p);
                tail = more;
            }
            "batch" => {
                let (n, more) = after.trim().split_once(' ').unwrap_or((after.trim(), ""));
                let n: usize = n
                    .parse()
                    .map_err(|_| perr(format!("bad batch size '{n}'")))?;
                if n == 0 {
                    return Err(perr("batch size must be positive"));
                }
                batch = Some(n);
                tail = more.trim();
            }
            other => return Err(perr(format!("unknown ingest clause '{other}'; {usage}"))),
        }
    }
    Ok(Command::Ingest {
        dir,
        dataset,
        manifest,
        batch,
    })
}

/// Takes a leading `'…'`-quoted string, returning it and the trimmed
/// remainder.
fn take_quoted(s: &str) -> Option<(String, &str)> {
    let rest = s.strip_prefix('\'')?;
    let end = rest.find('\'')?;
    Some((rest[..end].to_string(), rest[end + 1..].trim()))
}

/// An optional single `'…'`-quoted argument (whole-input form).
fn parse_optional_quoted(s: &str, usage: &str) -> Result<Option<String>, ParseError> {
    if s.is_empty() {
        return Ok(None);
    }
    match take_quoted(s) {
        Some((q, "")) => Ok(Some(q)),
        _ => Err(perr(format!("expected: {usage}"))),
    }
}

// view <rule> | cite <rule> [| cite <rule>] [| static k=v]...
fn parse_view(rest: &str) -> Result<ViewSpec, ParseError> {
    let mut parts = rest.split('|').map(str::trim);
    let view_rule = parts.next().ok_or_else(|| perr("missing view rule"))?;
    let view = parse_query(view_rule).map_err(|e| perr(e.to_string()))?;
    let mut cites = Vec::new();
    let mut function = CitationFunction::new();
    for part in parts {
        if let Some(rule) = part.strip_prefix("cite ") {
            let q = parse_query(rule.trim()).map_err(|e| perr(e.to_string()))?;
            // Constant single-column citation queries (the paper's CV2
            // pattern) get the friendlier field name "citation".
            let cq = if q.is_constant() && q.arity() == 1 {
                CitationQuery::with_fields(q, vec!["citation".to_string()]).expect("arity checked")
            } else {
                CitationQuery::new(q)
            };
            cites.push(cq);
        } else if let Some(kv) = part.strip_prefix("static ") {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| perr(format!("static '{kv}' lacks '='")))?;
            function = function.with_static(k.trim(), v.trim());
        } else {
            return Err(perr(format!("unknown view clause: '{part}'")));
        }
    }
    Ok(ViewSpec {
        view,
        cites,
        function,
    })
}

/// Parses the bare/`@`-prefixed version argument of `snapshot` and
/// `compact`; empty input means "use the default".
fn parse_optional_version(rest: &str) -> Result<Option<u64>, ParseError> {
    let arg = rest.trim().trim_start_matches('@').trim();
    if arg.is_empty() {
        return Ok(None);
    }
    arg.parse::<u64>()
        .map(Some)
        .map_err(|_| perr(format!("expected a version number, got '{arg}'")))
}

/// Splits a trailing `@ <version>` suffix off a cite rule. Only an
/// all-digit tail after the **last** `@` counts, so `@` inside quoted
/// constants (or λ-syntax) can never be mistaken for a version.
fn split_as_of(rule: &str) -> Result<(&str, Option<u64>), ParseError> {
    let Some(idx) = rule.rfind('@') else {
        return Ok((rule, None));
    };
    let tail = rule[idx + 1..].trim();
    if idx == 0 || tail.is_empty() || !tail.bytes().all(|b| b.is_ascii_digit()) {
        return Ok((rule, None));
    }
    let version = tail
        .parse::<u64>()
        .map_err(|_| perr(format!("version '{tail}' out of range")))?;
    Ok((rule[..idx].trim_end(), Some(version)))
}

// cite <rule> [@ <version>] [| format f] [| mode m] [| policy p] [| partial]
fn parse_cite(rest: &str) -> Result<CiteSpec, ParseError> {
    let mut parts = rest.split('|').map(str::trim);
    let rule = parts.next().ok_or_else(|| perr("missing query"))?;
    let (rule, as_of) = split_as_of(rule)?;
    let query = parse_query(rule).map_err(|e| perr(e.to_string()))?;
    let mut format = CitationFormat::Text;
    let mut options = EngineOptions {
        mode: CitationMode::Formal,
        ..Default::default()
    };
    for part in parts {
        match part.split_once(' ').map(|(a, b)| (a, b.trim())) {
            Some(("format", f)) => {
                format = match f {
                    "text" => CitationFormat::Text,
                    "bibtex" => CitationFormat::BibTex,
                    "ris" => CitationFormat::Ris,
                    "xml" => CitationFormat::Xml,
                    "json" => CitationFormat::Json,
                    "csl" => CitationFormat::CslJson,
                    other => return Err(perr(format!("unknown format '{other}'"))),
                }
            }
            Some(("mode", m)) => {
                options.mode = match m {
                    "formal" => CitationMode::Formal,
                    "pruned" => CitationMode::CostPruned,
                    other => return Err(perr(format!("unknown mode '{other}'"))),
                }
            }
            Some(("policy", p)) => {
                options.policies = PolicySet {
                    rewritings: match p {
                        "minsize" => RewritePolicy::MinSize,
                        "union" => RewritePolicy::Union,
                        "first" => RewritePolicy::First,
                        other => return Err(perr(format!("unknown policy '{other}'"))),
                    },
                    ..Default::default()
                }
            }
            None if part == "partial" => options.allow_partial = true,
            _ => return Err(perr(format!("unknown cite clause: '{part}'"))),
        }
    }
    Ok(CiteSpec {
        query,
        format,
        options,
        as_of,
    })
}

/// Strips a `#` comment, ignoring `#` inside single-quoted strings (with
/// `\'` escapes, matching the value parser) so `insert Note(1, 'bug #42')`
/// survives intact.
pub fn strip_comment(raw: &str) -> &str {
    let mut in_quote = false;
    let mut escaped = false;
    for (i, c) in raw.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '\'' => in_quote = !in_quote,
            '#' if !in_quote => return &raw[..i],
            _ => {}
        }
    }
    raw
}

/// Parses `Name(v1, v2, …)` with int / quoted-text / bool values.
pub fn parse_ground_atom(input: &str) -> Result<(String, Tuple), String> {
    let (name, after) = input
        .split_once('(')
        .ok_or_else(|| "expected Name(values…)".to_string())?;
    let inner = after
        .trim_end()
        .strip_suffix(')')
        .ok_or_else(|| "missing ')'".to_string())?;
    let mut values = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let (v, remainder) = parse_value(rest)?;
        values.push(v);
        rest = remainder.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' before '{rest}'"));
        }
    }
    Ok((name.trim().to_string(), Tuple::new(values)))
}

fn parse_value(input: &str) -> Result<(Value, &str), String> {
    let input = input.trim_start();
    if let Some(rest) = input.strip_prefix('\'') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, n)) = chars.next() {
                        out.push(n);
                    }
                }
                '\'' => return Ok((Value::from(out), &rest[i + 1..])),
                other => out.push(other),
            }
        }
        Err("unterminated string".into())
    } else if let Some(rest) = input.strip_prefix("true") {
        Ok((Value::Bool(true), rest))
    } else if let Some(rest) = input.strip_prefix("false") {
        Ok((Value::Bool(false), rest))
    } else {
        let end = input
            .find(|c: char| c == ',' || c.is_whitespace())
            .unwrap_or(input.len());
        let n: i64 = input[..end]
            .parse()
            .map_err(|_| format!("bad value '{}'", &input[..end]))?;
        Ok((Value::Int(n), &input[end..]))
    }
}

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

/// Error class carried in an `err` response line. Clients map these to
/// the CLI's exit codes (`parse` → 3, `citation` → 4, `readonly` → 4,
/// `proto` → 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireErrorKind {
    /// The request line is malformed (script parse error).
    Parse,
    /// A well-formed command failed at the data/citation layer.
    Citation,
    /// A protocol-level failure (oversized line, idle timeout, …).
    Proto,
    /// The command mutates state but this server is a read-only
    /// replica; the message names the primary address to write to.
    Readonly,
}

impl WireErrorKind {
    /// The token written on the wire.
    pub fn token(self) -> &'static str {
        match self {
            WireErrorKind::Parse => "parse",
            WireErrorKind::Citation => "citation",
            WireErrorKind::Proto => "proto",
            WireErrorKind::Readonly => "readonly",
        }
    }

    /// Parses a wire token back into a kind.
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "parse" => Some(WireErrorKind::Parse),
            "citation" => Some(WireErrorKind::Citation),
            "proto" => Some(WireErrorKind::Proto),
            "readonly" => Some(WireErrorKind::Readonly),
            _ => None,
        }
    }
}

/// One framed server response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// Success, with the command's output lines.
    Ok(Vec<String>),
    /// Failure, with the error class and a single-line message.
    Err {
        /// Error class (drives client exit codes).
        kind: WireErrorKind,
        /// Human-readable message (newlines collapsed).
        message: String,
    },
}

impl Response {
    /// Builds an `Ok` response from an interpreter's accumulated output
    /// (splitting on newlines; a trailing newline adds no empty line).
    pub fn from_output(out: &str) -> Response {
        if out.is_empty() {
            return Response::Ok(Vec::new());
        }
        Response::Ok(out.lines().map(str::to_string).collect())
    }
}

/// Writes one framed response (`ok <n>` + payload, or `err …`).
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_tagged_response(w, None, resp)
}

/// Splits an optional request tag off a raw command line.
///
/// A tag is `@` followed by one or more non-space characters, separated
/// from the command by a single space: `@t7 cite Q() :- R(A)` is the
/// command `cite Q() :- R(A)` tagged `t7`, and its response frame
/// echoes the tag (`ok @t7 <n>` / `err @t7 <kind> <msg>`). A bare `@`
/// or `@ …` carries no tag and is handed to the parser unchanged, so
/// untagged traffic — including any line that could parse today — is
/// byte-for-byte unaffected.
pub fn split_tag(line: &str) -> (Option<&str>, &str) {
    let Some(rest) = line.strip_prefix('@') else {
        return (None, line);
    };
    let (tag, body) = match rest.split_once(' ') {
        Some((tag, body)) => (tag, body),
        None => (rest, ""),
    };
    if tag.is_empty() || tag.contains(char::is_whitespace) {
        return (None, line);
    }
    (Some(tag), body)
}

/// Writes one framed response, echoing the request's tag (if any) right
/// after the `ok`/`err` keyword: `ok @<tag> <n>` / `err @<tag> <kind>
/// <msg>`. With `tag = None` this is exactly [`write_response`].
pub fn write_tagged_response(
    w: &mut impl Write,
    tag: Option<&str>,
    resp: &Response,
) -> io::Result<()> {
    let tagged = match tag {
        Some(t) => format!("@{t} "),
        None => String::new(),
    };
    match resp {
        Response::Ok(lines) => {
            writeln!(w, "ok {tagged}{}", lines.len())?;
            for l in lines {
                w.write_all(l.as_bytes())?;
                w.write_all(b"\n")?;
            }
        }
        Response::Err { kind, message } => {
            let one_line = message.replace(['\n', '\r'], "; ");
            writeln!(w, "err {tagged}{} {}", kind.token(), one_line)?;
        }
    }
    w.flush()
}

/// Reads one framed response. Returns `None` at clean EOF before a
/// header; a malformed header or truncated payload is an
/// `InvalidData` error. Any echoed tag is accepted and discarded; use
/// [`read_tagged_response`] to observe it.
pub fn read_response(r: &mut impl BufRead) -> io::Result<Option<Response>> {
    Ok(read_tagged_response(r)?.map(|(_tag, resp)| resp))
}

/// Reads one framed response together with its echoed request tag
/// (`None` for untagged frames). EOF and error behavior match
/// [`read_response`].
pub fn read_tagged_response(
    r: &mut impl BufRead,
) -> io::Result<Option<(Option<String>, Response)>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end_matches(['\n', '\r']);
    if let Some(rest) = header.strip_prefix("ok ") {
        let (tag, rest) = split_response_tag(rest);
        let n: usize = rest
            .trim()
            .parse()
            .map_err(|_| bad_frame(format!("bad ok count '{rest}'")))?;
        let mut lines = Vec::with_capacity(n);
        for _ in 0..n {
            let mut l = String::new();
            if r.read_line(&mut l)? == 0 {
                return Err(bad_frame("truncated ok payload"));
            }
            lines.push(l.trim_end_matches(['\n', '\r']).to_string());
        }
        Ok(Some((tag, Response::Ok(lines))))
    } else if let Some(rest) = header.strip_prefix("err ") {
        let (tag, rest) = split_response_tag(rest);
        let (token, message) = rest.split_once(' ').unwrap_or((rest, ""));
        let kind = WireErrorKind::from_token(token)
            .ok_or_else(|| bad_frame(format!("unknown error kind '{token}'")))?;
        Ok(Some((
            tag,
            Response::Err {
                kind,
                message: message.to_string(),
            },
        )))
    } else {
        Err(bad_frame(format!("bad response header '{header}'")))
    }
}

/// Peels an echoed `@tag ` off a response header's remainder. Frames
/// never start the count or error-kind token with `@`, so the prefix is
/// unambiguous.
fn split_response_tag(rest: &str) -> (Option<String>, &str) {
    if let Some(r) = rest.strip_prefix('@') {
        if let Some((tag, after)) = r.split_once(' ') {
            if !tag.is_empty() {
                return (Some(tag.to_string()), after);
            }
        }
    }
    (None, rest)
}

fn bad_frame(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

// ---------------------------------------------------------------------------
// Capped line reading
// ---------------------------------------------------------------------------

/// Outcome of one [`LineReader::read_line`] call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LineRead {
    /// A complete line (terminator stripped; CRLF tolerated).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The current line exceeded the cap before its terminator arrived.
    Oversized,
}

/// An incremental, capped line reader over any [`Read`].
///
/// Unlike `BufRead::read_line` it (a) enforces a byte cap so a
/// malicious or broken client cannot make the server buffer without
/// bound, and (b) keeps partial-line state **across calls**, so a read
/// timeout mid-line (the server's idle tick) or a line split across TCP
/// segments resumes exactly where it left off.
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    /// Bytes received but not yet assigned to a line.
    buf: Vec<u8>,
    /// The current (incomplete) line.
    line: Vec<u8>,
    cap: usize,
}

impl<R: Read> LineReader<R> {
    /// Wraps `inner` with a per-line cap of `cap` bytes.
    pub fn new(inner: R, cap: usize) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            line: Vec::new(),
            cap,
        }
    }

    /// Reads until a full line, EOF, the cap, or an I/O error (timeouts
    /// included — partial input survives the error and the next call
    /// continues the same line).
    pub fn read_line(&mut self) -> io::Result<LineRead> {
        self.read_line_deadline(None)
    }

    /// Like [`read_line`](Self::read_line), but gives up with
    /// [`io::ErrorKind::TimedOut`] once `deadline` passes. The deadline
    /// is checked before every underlying read, so a client trickling
    /// bytes without ever completing a line cannot hold the reader past
    /// it (plain socket read timeouts only fire on full silence).
    /// Partial input survives; a later call continues the same line.
    pub fn read_line_deadline(&mut self, deadline: Option<Instant>) -> io::Result<LineRead> {
        loop {
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                self.line.extend_from_slice(&self.buf[..i]);
                self.buf.drain(..=i);
                if self.line.len() > self.cap {
                    self.line.clear();
                    return Ok(LineRead::Oversized);
                }
                return Ok(LineRead::Line(self.take_line()));
            }
            self.line.append(&mut self.buf);
            if self.line.len() > self.cap {
                // Leave the oversized flag decided; the caller is
                // expected to drop the connection (resyncing would mean
                // reading the rest of an unbounded line).
                return Ok(LineRead::Oversized);
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "line deadline exceeded",
                    ));
                }
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.line.is_empty() {
                        return Ok(LineRead::Eof);
                    }
                    // Final line without a terminator.
                    return Ok(LineRead::Line(self.take_line()));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }

    fn take_line(&mut self) -> String {
        if self.line.last() == Some(&b'\r') {
            self.line.pop();
        }
        let s = String::from_utf8_lossy(&self.line).into_owned();
        self.line.clear();
        s
    }
}

// ---------------------------------------------------------------------------
// Replication sub-protocol framing
// ---------------------------------------------------------------------------

/// The request-line prefix that switches a connection into the
/// replication sub-protocol. Full form:
/// `replica hello <version> <setup-digest>`.
pub const REPLICA_HELLO: &str = "replica hello";

/// Formats a follower's hello line: its local version and its setup
/// digest (a hash over schemas + registry; the primary ships a full
/// `ckpt` frame instead of incremental `wal` frames when it differs).
pub fn format_replica_hello(version: u64, setup_digest: &str) -> String {
    format!("{REPLICA_HELLO} {version} {setup_digest}")
}

/// Parses the arguments of a hello line (everything after
/// [`REPLICA_HELLO`]). Returns `(version, setup_digest)`.
pub fn parse_replica_hello(rest: &str) -> Result<(u64, String), String> {
    let rest = rest.trim();
    let (version, digest) = rest
        .split_once(' ')
        .ok_or_else(|| format!("bad replica hello '{rest}': want '<version> <digest>'"))?;
    let version: u64 = version
        .parse()
        .map_err(|_| format!("bad replica version '{version}'"))?;
    let digest = digest.trim();
    if digest.is_empty() || digest.contains(' ') {
        return Err(format!("bad setup digest '{digest}'"));
    }
    Ok((version, digest.to_string()))
}

/// One frame on a replication feed (primary → follower).
///
/// ```text
/// ckpt <version> <n-sections>          full checkpoint bootstrap
///   section <name> <n-lines>           … per section, then its text
///   …
/// wal <version> <n-lines>              one committed changeset
///   citesys-changeset v1               (the Changeset text codec)
///   i Family(12, 'Dopamine', 'D1')
/// ping <version>                       idle heartbeat: primary's
///                                      latest version, for lag
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplicaFrame {
    /// Full-state bootstrap: the primary's assembled checkpoint.
    Ckpt(CheckpointData),
    /// One committed version's changeset, in commit order.
    Wal {
        /// The version this changeset seals.
        version: u64,
        /// The ops, reusing the WAL text codec on the wire.
        changes: Changeset,
    },
    /// Heartbeat carrying the primary's latest version (lets an idle
    /// follower compute its lag without traffic).
    Ping {
        /// The primary's latest committed version.
        version: u64,
    },
}

/// Splits a text payload into the lines written on the wire (the text
/// codecs all emit `\n`-terminated lines; an empty text is 0 lines).
fn payload_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines()
}

/// Writes one replication frame. Multi-line payloads are written line
/// by line under a counted header, so the stream stays line-oriented
/// (and a [`LineReader`] on the far side reassembles frames that TCP
/// split mid-line).
pub fn write_replica_frame(w: &mut impl Write, frame: &ReplicaFrame) -> io::Result<()> {
    match frame {
        ReplicaFrame::Ping { version } => writeln!(w, "ping {version}")?,
        ReplicaFrame::Wal { version, changes } => {
            let text = changes.to_text();
            writeln!(w, "wal {version} {}", payload_lines(&text).count())?;
            for line in payload_lines(&text) {
                writeln!(w, "{line}")?;
            }
        }
        ReplicaFrame::Ckpt(data) => {
            writeln!(w, "ckpt {} {}", data.version, data.sections.len())?;
            for (name, text) in &data.sections {
                writeln!(w, "section {name} {}", payload_lines(text).count())?;
                for line in payload_lines(text) {
                    writeln!(w, "{line}")?;
                }
            }
        }
    }
    w.flush()
}

/// Reads the payload of a frame whose header line the caller already
/// consumed, then returns the whole frame. `header` is the raw header
/// line; payload lines are pulled from `reader` until complete or
/// `deadline` passes (transient timeouts before the deadline retry, so
/// a frame trickling in across many TCP segments still assembles).
pub fn read_replica_frame<R: Read>(
    header: &str,
    reader: &mut LineReader<R>,
    deadline: Instant,
) -> io::Result<ReplicaFrame> {
    fn parse_counts(rest: &str, what: &str) -> io::Result<(u64, usize)> {
        let (v, n) = rest
            .split_once(' ')
            .ok_or_else(|| bad_frame(format!("bad {what} header '{rest}'")))?;
        let v = v
            .parse()
            .map_err(|_| bad_frame(format!("bad {what} version '{v}'")))?;
        let n = n
            .trim()
            .parse()
            .map_err(|_| bad_frame(format!("bad {what} line count '{n}'")))?;
        Ok((v, n))
    }
    fn read_payload<R: Read>(
        reader: &mut LineReader<R>,
        n: usize,
        deadline: Instant,
    ) -> io::Result<String> {
        let mut text = String::new();
        for _ in 0..n {
            loop {
                match reader.read_line_deadline(Some(deadline)) {
                    Ok(LineRead::Line(l)) => {
                        text.push_str(&l);
                        text.push('\n');
                        break;
                    }
                    Ok(LineRead::Eof) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        ))
                    }
                    Ok(LineRead::Oversized) => {
                        return Err(bad_frame("oversized frame payload line"))
                    }
                    // A socket read timeout before the deadline is a
                    // trickle, not a failure: keep assembling.
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) && Instant::now() < deadline => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(text)
    }

    if let Some(rest) = header.strip_prefix("ping ") {
        let version = rest
            .trim()
            .parse()
            .map_err(|_| bad_frame(format!("bad ping version '{rest}'")))?;
        return Ok(ReplicaFrame::Ping { version });
    }
    if let Some(rest) = header.strip_prefix("wal ") {
        let (version, n) = parse_counts(rest, "wal")?;
        let text = read_payload(reader, n, deadline)?;
        let changes = Changeset::from_text(&text)
            .map_err(|e| bad_frame(format!("bad wal frame changeset: {e}")))?;
        return Ok(ReplicaFrame::Wal { version, changes });
    }
    if let Some(rest) = header.strip_prefix("ckpt ") {
        let (version, n_sections) = parse_counts(rest, "ckpt")?;
        let mut sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let header = loop {
                match reader.read_line_deadline(Some(deadline)) {
                    Ok(LineRead::Line(l)) => break l,
                    Ok(LineRead::Eof) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream ended mid-checkpoint",
                        ))
                    }
                    Ok(LineRead::Oversized) => return Err(bad_frame("oversized section header")),
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) && Instant::now() < deadline => {}
                    Err(e) => return Err(e),
                }
            };
            let rest = header
                .strip_prefix("section ")
                .ok_or_else(|| bad_frame(format!("bad section header '{header}'")))?;
            let (name, n) = rest
                .split_once(' ')
                .ok_or_else(|| bad_frame(format!("bad section header '{header}'")))?;
            let n: usize = n
                .trim()
                .parse()
                .map_err(|_| bad_frame(format!("bad section line count '{n}'")))?;
            sections.push((name.to_string(), read_payload(reader, n, deadline)?));
        }
        return Ok(ReplicaFrame::Ckpt(CheckpointData { version, sections }));
    }
    Err(bad_frame(format!("bad replication frame '{header}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        let cmd = parse_command("schema R(A:int, B:text) key(0)")
            .unwrap()
            .unwrap();
        match cmd {
            Command::Schema { name, attrs, key } => {
                assert_eq!(name, "R");
                assert_eq!(attrs.len(), 2);
                assert_eq!(key, vec![0]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_command("insert R(1, 'x')").unwrap().unwrap(),
            Command::Insert { .. }
        ));
        assert!(matches!(
            parse_command("begin").unwrap().unwrap(),
            Command::Begin
        ));
        assert!(matches!(
            parse_command("stats").unwrap().unwrap(),
            Command::Stats
        ));
        assert!(matches!(
            parse_command("metrics").unwrap().unwrap(),
            Command::Metrics
        ));
        assert!(matches!(
            parse_command("quit").unwrap().unwrap(),
            Command::Quit
        ));
        assert!(matches!(
            parse_command("shutdown").unwrap().unwrap(),
            Command::Shutdown
        ));
        assert!(parse_command("   # just a comment").unwrap().is_none());
        assert!(parse_command("").unwrap().is_none());
        assert!(parse_command("bogus").is_err());
    }

    #[test]
    fn load_parses_optional_key() {
        match parse_command("load Family from '/tmp/Family.csv'")
            .unwrap()
            .unwrap()
        {
            Command::Load { rel, path, key } => {
                assert_eq!(rel, "Family");
                assert_eq!(path, "/tmp/Family.csv");
                assert_eq!(key, None);
            }
            other => panic!("{other:?}"),
        }
        match parse_command("load Family from '/tmp/Family.csv' key(0, 2)")
            .unwrap()
            .unwrap()
        {
            Command::Load { key, .. } => assert_eq!(key, Some(vec![0, 2])),
            other => panic!("{other:?}"),
        }
        assert!(parse_command("load Family '/x.csv'").is_err());
        assert!(parse_command("load Family from '/x.csv' key(a)").is_err());
    }

    #[test]
    fn ingest_and_dataset_commands_parse() {
        match parse_command("ingest '/dumps/gtopdb'").unwrap().unwrap() {
            Command::Ingest {
                dir,
                dataset,
                manifest,
                batch,
            } => {
                assert_eq!(dir, "/dumps/gtopdb");
                assert_eq!(dataset, None);
                assert_eq!(manifest, None);
                assert_eq!(batch, None);
            }
            other => panic!("{other:?}"),
        }
        match parse_command("ingest '/d' as gtopdb manifest '/data/datasets.lock' batch 50000")
            .unwrap()
            .unwrap()
        {
            Command::Ingest {
                dir,
                dataset,
                manifest,
                batch,
            } => {
                assert_eq!(dir, "/d");
                assert_eq!(dataset.as_deref(), Some("gtopdb"));
                assert_eq!(manifest.as_deref(), Some("/data/datasets.lock"));
                assert_eq!(batch, Some(50_000));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_command("ingest /unquoted").is_err());
        assert!(parse_command("ingest '/d' batch 0").is_err());
        assert!(parse_command("ingest '/d' bogus").is_err());
        assert!(matches!(
            parse_command("datasets").unwrap().unwrap(),
            Command::Datasets
        ));
        assert!(parse_command("datasets extra").is_err());
        match parse_command("dataset verify").unwrap().unwrap() {
            Command::DatasetVerify { manifest } => assert_eq!(manifest, None),
            other => panic!("{other:?}"),
        }
        match parse_command("dataset verify '/data/datasets.lock'")
            .unwrap()
            .unwrap()
        {
            Command::DatasetVerify { manifest } => {
                assert_eq!(manifest.as_deref(), Some("/data/datasets.lock"))
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_command("dataset drop x").is_err());
    }

    #[test]
    fn cite_spec_parses_options() {
        let spec = match parse_command("cite Q(A) :- R(A) | format bibtex | mode pruned | partial")
            .unwrap()
            .unwrap()
        {
            Command::Cite(spec) => spec,
            other => panic!("{other:?}"),
        };
        assert_eq!(spec.format, CitationFormat::BibTex);
        assert_eq!(spec.options.mode, CitationMode::CostPruned);
        assert!(spec.options.allow_partial);
    }

    #[test]
    fn view_spec_parses_clauses() {
        let spec = match parse_command(
            "view V(A) :- R(A) | cite CV(D) :- D = 'x' | static database=GtoPdb",
        )
        .unwrap()
        .unwrap()
        {
            Command::View(spec) => spec,
            other => panic!("{other:?}"),
        };
        assert_eq!(spec.view.name(), "V");
        assert_eq!(spec.cites.len(), 1);
    }

    #[test]
    fn responses_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::Ok(vec!["a".into(), "b".into()])).unwrap();
        write_response(
            &mut wire,
            &Response::Err {
                kind: WireErrorKind::Citation,
                message: "multi\nline".into(),
            },
        )
        .unwrap();
        write_response(&mut wire, &Response::Ok(vec![])).unwrap();
        let mut r = io::BufReader::new(&wire[..]);
        assert_eq!(
            read_response(&mut r).unwrap().unwrap(),
            Response::Ok(vec!["a".to_string(), "b".to_string()])
        );
        assert_eq!(
            read_response(&mut r).unwrap().unwrap(),
            Response::Err {
                kind: WireErrorKind::Citation,
                message: "multi; line".into()
            }
        );
        assert_eq!(
            read_response(&mut r).unwrap().unwrap(),
            Response::Ok(vec![])
        );
        assert!(read_response(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_rejected() {
        let mut r = io::BufReader::new(&b"ok nope\n"[..]);
        assert!(read_response(&mut r).is_err());
        let mut r = io::BufReader::new(&b"err weird boom\n"[..]);
        assert!(read_response(&mut r).is_err());
        let mut r = io::BufReader::new(&b"hello\n"[..]);
        assert!(read_response(&mut r).is_err());
        let mut r = io::BufReader::new(&b"ok 2\nonly-one\n"[..]);
        assert!(read_response(&mut r).is_err(), "truncated payload");
    }

    #[test]
    fn request_tags_split_off_cleanly() {
        assert_eq!(
            split_tag("@t7 cite Q() :- R(A)"),
            (Some("t7"), "cite Q() :- R(A)")
        );
        assert_eq!(split_tag("@1 commit"), (Some("1"), "commit"));
        assert_eq!(split_tag("@solo"), (Some("solo"), ""));
        assert_eq!(split_tag("tables"), (None, "tables"));
        assert_eq!(split_tag(""), (None, ""));
        assert_eq!(split_tag("@"), (None, "@"), "bare @ is not a tag");
        assert_eq!(
            split_tag("@ tables"),
            (None, "@ tables"),
            "empty tag rejected"
        );
    }

    #[test]
    fn tagged_responses_round_trip_and_untagged_stay_identical() {
        let mut wire: Vec<u8> = Vec::new();
        write_tagged_response(&mut wire, Some("a1"), &Response::Ok(vec!["x".into()])).unwrap();
        write_tagged_response(
            &mut wire,
            Some("a2"),
            &Response::Err {
                kind: WireErrorKind::Proto,
                message: "line\ntoo long".into(),
            },
        )
        .unwrap();
        write_tagged_response(&mut wire, None, &Response::Ok(vec![])).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&wire),
            "ok @a1 1\nx\nerr @a2 proto line; too long\nok 0\n"
        );
        let mut r = io::BufReader::new(&wire[..]);
        assert_eq!(
            read_tagged_response(&mut r).unwrap().unwrap(),
            (Some("a1".into()), Response::Ok(vec!["x".into()]))
        );
        assert_eq!(
            read_tagged_response(&mut r).unwrap().unwrap(),
            (
                Some("a2".into()),
                Response::Err {
                    kind: WireErrorKind::Proto,
                    message: "line; too long".into(),
                }
            )
        );
        assert_eq!(
            read_tagged_response(&mut r).unwrap().unwrap(),
            (None, Response::Ok(vec![]))
        );
        assert!(read_tagged_response(&mut r).unwrap().is_none());

        // Untagged writes are byte-identical to the pre-tag framing,
        // and the plain reader tolerates (and discards) echoed tags.
        let mut plain: Vec<u8> = Vec::new();
        write_response(&mut plain, &Response::Ok(vec!["y".into()])).unwrap();
        assert_eq!(String::from_utf8_lossy(&plain), "ok 1\ny\n");
        let mut r = io::BufReader::new(&b"ok @z 1\ny\n"[..]);
        assert_eq!(
            read_response(&mut r).unwrap().unwrap(),
            Response::Ok(vec!["y".into()])
        );
    }

    /// A reader that hands out its bytes in tiny chunks — a TCP stream
    /// fragmenting one logical line across many segments.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn line_reader_reassembles_split_reads() {
        let r = Trickle {
            data: b"schema R(A:int)\r\ninsert R(1)\nlast",
            pos: 0,
            chunk: 3,
        };
        let mut lr = LineReader::new(r, MAX_LINE_BYTES);
        assert_eq!(
            lr.read_line().unwrap(),
            LineRead::Line("schema R(A:int)".into()),
            "CRLF stripped across 3-byte segments"
        );
        assert_eq!(
            lr.read_line().unwrap(),
            LineRead::Line("insert R(1)".into())
        );
        assert_eq!(lr.read_line().unwrap(), LineRead::Line("last".into()));
        assert_eq!(lr.read_line().unwrap(), LineRead::Eof);
    }

    #[test]
    fn line_reader_caps_unterminated_lines() {
        // A 100-byte "line" with no newline in sight and a 10-byte cap:
        // the reader must report Oversized instead of buffering forever.
        let data = [b'x'; 100];
        let mut lr = LineReader::new(&data[..], 10);
        assert_eq!(lr.read_line().unwrap(), LineRead::Oversized);
        // A terminated-but-oversized line is also rejected.
        let mut data = vec![b'y'; 50];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut lr = LineReader::new(&data[..], 10);
        assert_eq!(lr.read_line().unwrap(), LineRead::Oversized);
    }

    #[test]
    fn line_reader_deadline_bounds_trickled_lines() {
        // A client dripping bytes that never complete a line defeats a
        // silence-based timeout (every read succeeds); the explicit
        // deadline must end the read anyway, with partial input kept.
        struct Drip;
        impl Read for Drip {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                buf[0] = b'x';
                Ok(1)
            }
        }
        let mut lr = LineReader::new(Drip, 1 << 20);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(20);
        let e = lr.read_line_deadline(Some(deadline)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        // No deadline: the cap still bounds the read.
        let mut lr = LineReader::new(Drip, 64);
        assert_eq!(lr.read_line().unwrap(), LineRead::Oversized);
    }

    #[test]
    fn line_reader_survives_interrupting_errors() {
        // An error (e.g. a read timeout) mid-line must not lose the
        // partial input: the next call finishes the same line.
        struct Flaky {
            step: usize,
        }
        impl Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.step += 1;
                match self.step {
                    1 => {
                        buf[..4].copy_from_slice(b"tabl");
                        Ok(4)
                    }
                    2 => Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout")),
                    3 => {
                        buf[..3].copy_from_slice(b"es\n");
                        Ok(3)
                    }
                    _ => Ok(0),
                }
            }
        }
        let mut lr = LineReader::new(Flaky { step: 0 }, MAX_LINE_BYTES);
        assert_eq!(
            lr.read_line().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(lr.read_line().unwrap(), LineRead::Line("tables".into()));
    }

    #[test]
    fn ground_atom_parser() {
        let (name, t) = parse_ground_atom("R(1, 'a\\'b', true, -5)").unwrap();
        assert_eq!(name, "R");
        assert_eq!(t.arity(), 4);
        assert_eq!(t.get(1).unwrap().as_text(), Some("a'b"));
        assert_eq!(t.get(2).unwrap().as_bool(), Some(true));
        assert_eq!(t.get(3).unwrap().as_int(), Some(-5));
        assert!(parse_ground_atom("R(1").is_err());
        assert!(parse_ground_atom("R(1 2)").is_err());
        assert!(parse_ground_atom("R('open)").is_err());
    }

    #[test]
    fn comments_respect_quotes() {
        assert_eq!(
            strip_comment("insert R('a\\'#b') # c"),
            "insert R('a\\'#b') "
        );
        assert_eq!(strip_comment("# whole line"), "");
        assert_eq!(strip_comment("no comment"), "no comment");
    }

    #[test]
    fn replica_hello_round_trips() {
        let line = format_replica_hello(42, "abcd1234");
        assert_eq!(line, "replica hello 42 abcd1234");
        let rest = line.strip_prefix(REPLICA_HELLO).unwrap();
        assert_eq!(
            parse_replica_hello(rest).unwrap(),
            (42, "abcd1234".to_string())
        );
        assert!(parse_replica_hello("42").is_err(), "digest required");
        assert!(parse_replica_hello("x y").is_err(), "numeric version");
        assert!(parse_replica_hello("1 a b").is_err(), "one digest token");
    }

    fn frame_fixture() -> Vec<ReplicaFrame> {
        let mut changes = Changeset::new();
        changes
            .insert("Family", citesys_storage::tuple![12, "Dopamine", "D1"])
            .delete("Family", citesys_storage::tuple![11, "Calcitonin", "C1"]);
        vec![
            ReplicaFrame::Ping { version: 7 },
            ReplicaFrame::Wal {
                version: 3,
                changes,
            },
            ReplicaFrame::Ckpt(CheckpointData {
                version: 2,
                sections: vec![
                    (
                        "database".into(),
                        "citesys-versioned v1\nversion 2\n".into(),
                    ),
                    ("registry".into(), String::new()),
                ],
            }),
            // An empty changeset still frames (a version can net to
            // zero ops — delete-then-reinsert).
            ReplicaFrame::Wal {
                version: 4,
                changes: Changeset::new(),
            },
        ]
    }

    fn read_frames(bytes: &[u8], chunk: usize) -> Vec<ReplicaFrame> {
        // Trickle `chunk` bytes per read: every frame header and
        // payload line gets split across many "TCP segments".
        let r = Trickle {
            data: bytes,
            pos: 0,
            chunk,
        };
        let mut lr = LineReader::new(r, MAX_LINE_BYTES);
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut out = Vec::new();
        loop {
            match lr.read_line_deadline(Some(deadline)).unwrap() {
                LineRead::Line(header) => {
                    out.push(read_replica_frame(&header, &mut lr, deadline).unwrap())
                }
                LineRead::Eof => return out,
                LineRead::Oversized => panic!("oversized"),
            }
        }
    }

    #[test]
    fn replica_frames_round_trip_across_split_segments() {
        let frames = frame_fixture();
        let mut bytes = Vec::new();
        for f in &frames {
            write_replica_frame(&mut bytes, f).unwrap();
        }
        // Whole-buffer reads and pathological 1-, 2- and 3-byte
        // segments must all reassemble identical frames.
        for chunk in [usize::MAX, 1, 2, 3] {
            assert_eq!(read_frames(&bytes, chunk), frames, "chunk {chunk}");
        }
    }

    #[test]
    fn replica_frame_rejects_garbage() {
        let mut lr = LineReader::new(io::empty(), MAX_LINE_BYTES);
        let deadline = Instant::now() + std::time::Duration::from_secs(1);
        assert!(read_replica_frame("bogus 1 2", &mut lr, deadline).is_err());
        assert!(read_replica_frame("wal x 2", &mut lr, deadline).is_err());
        // A wal frame whose payload ends early is UnexpectedEof.
        let err = read_replica_frame("wal 3 2", &mut lr, deadline).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

//! Crash-recovery acceptance tests: reopening a durable data directory
//! after a crash (no clean shutdown, no final checkpoint) must
//! reconstruct exactly the pre-crash **acked** state — same database
//! version, same `cite` answers, same fixity digests — with the
//! materialized-view cache and plan cache still warm, and a WAL whose
//! final record was torn mid-write must truncate cleanly instead of
//! failing to open.

use std::path::PathBuf;
use std::sync::Arc;

use citesys_net::script::{Interpreter, SharedStore};
use citesys_net::server::{Server, ServerConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("citesys-recovery-test")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_interp(dir: &PathBuf) -> Interpreter {
    Interpreter::with_store(SharedStore::open_durable_shared(dir).expect("open data dir"))
}

const SETUP: &str = "\
schema Family(FID:int, FName:text, Desc:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert Family(13, 'Dopamine', 'D1')
insert FamilyIntro(11, '1st')
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'
commit
";

const CITE: &str = "cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)";

/// The core equivalence: for several different post-checkpoint histories
/// (plain commits, transactions, deletes, delete-then-reinsert), the
/// recovered store answers exactly like the pre-crash one and stays
/// warm.
#[test]
fn recover_equals_pre_crash_acked_state() {
    let histories: &[&[&str]] = &[
        // One plain commit after the cite.
        &["insert FamilyIntro(13, '3rd')", "commit"],
        // A transaction mixing insert and delete.
        &[
            "begin",
            "insert Family(14, 'Ghrelin', 'G1')",
            "insert FamilyIntro(14, '4th')",
            "delete Family(13, 'Dopamine', 'D1')",
            "commit",
        ],
        // Two commits, the second deleting-then-reinserting (nets to
        // nothing but still seals a version).
        &[
            "insert FamilyIntro(13, '3rd')",
            "commit",
            "begin",
            "delete FamilyIntro(13, '3rd')",
            "insert FamilyIntro(13, '3rd')",
            "commit",
        ],
    ];
    for (i, history) in histories.iter().enumerate() {
        let dir = temp_dir(&format!("equiv-{i}"));
        // --- Pre-crash session -------------------------------------------
        let mut live = durable_interp(&dir);
        live.run(SETUP).unwrap();
        live.run_line(CITE).unwrap(); // warm views + plan, then…
        live.run_line("checkpoint").unwrap(); // …checkpoint captures them
        for line in *history {
            live.run_line(line).unwrap(); // each commit acked ⇒ WAL-logged
        }
        let expected_cite = live.run_line(CITE).unwrap();
        let expected_tables = live.run_line("tables").unwrap();
        let expected_dump = live.run_line("dump Family").unwrap();
        let live_views = live.view_cache_stats().unwrap();
        // CRASH: drop without checkpoint, clean save or shutdown.
        drop(live);

        // --- Post-crash session ------------------------------------------
        let mut revived = durable_interp(&dir);
        assert_eq!(
            revived.run_line("tables").unwrap(),
            expected_tables,
            "history {i}: same relations after recovery"
        );
        assert_eq!(
            revived.run_line("dump Family").unwrap(),
            expected_dump,
            "history {i}: same tuples after recovery"
        );
        let recovered_cite = revived.run_line(CITE).unwrap();
        assert_eq!(
            recovered_cite, expected_cite,
            "history {i}: same cite answers, version and citation text"
        );
        // `verify` re-executes against the recovered snapshot: the
        // fixity digest must reproduce, proving byte-equivalent data.
        let verify_out = revived.run_line("verify").unwrap();
        assert!(verify_out.contains("fixity verified"), "{verify_out}");
        // Warmth: the recovered service re-cites without materializing
        // any view from scratch (checkpoint seeded them; WAL replay
        // carried them by delta), and without a fresh rewriting search.
        let stats = revived.view_cache_stats().unwrap();
        assert_eq!(
            stats.materializations, 0,
            "history {i}: views recovered warm: {stats:?} (live was {live_views:?})"
        );
        assert_eq!(stats.drops, 0, "history {i}: {stats:?}");
        let plans = revived.plan_cache_stats();
        assert_eq!(
            (plans.hits, plans.misses),
            (1, 0),
            "history {i}: plan recovered warm"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A WAL whose final record was torn mid-write (the crash happened
/// during the append) must truncate cleanly: the store opens, every
/// *previously acked* commit survives, and new commits append normally.
#[test]
fn torn_final_wal_record_truncates_cleanly() {
    let dir = temp_dir("torn");
    let mut live = durable_interp(&dir);
    live.run(SETUP).unwrap();
    live.run_line(CITE).unwrap();
    live.run_line("checkpoint").unwrap();
    live.run_line("insert FamilyIntro(13, '3rd')").unwrap();
    live.run_line("commit").unwrap(); // acked ⇒ must survive
    let expected = live.run_line(CITE).unwrap();
    drop(live);

    // Tear the tail: a record header and half an op, no `end` trailer —
    // exactly what a crash mid-append leaves behind.
    let wal = dir.join("wal.log");
    let mut text = std::fs::read_to_string(&wal).unwrap();
    text.push_str("record 3 2\ni FamilyIntro(14, '4t");
    std::fs::write(&wal, text).unwrap();

    let mut revived = durable_interp(&dir);
    assert_eq!(
        revived.run_line(CITE).unwrap(),
        expected,
        "acked commit survives; torn record is dropped"
    );
    // The truncated log keeps working: commit, crash, recover again.
    revived.run_line("insert FamilyIntro(14, '4th')").unwrap();
    revived.run_line("commit").unwrap();
    let expected = revived.run_line(CITE).unwrap();
    drop(revived);
    let mut again = durable_interp(&dir);
    assert_eq!(again.run_line(CITE).unwrap(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The TCP server wires the same durability: a server killed without
/// `shutdown` (dropped hard) comes back with its sessions' acked commits
/// and serves identical answers over the wire.
#[test]
fn server_restart_recovers_over_tcp() {
    use citesys_net::client::Connection;
    use citesys_net::protocol::Response;

    fn send_ok(conn: &mut Connection, line: &str) -> Vec<String> {
        match conn.send(line).expect("round-trip") {
            Response::Ok(lines) => lines,
            Response::Err { message, .. } => panic!("server error on '{line}': {message}"),
        }
    }

    let dir = temp_dir("tcp");
    let config = |dir: &PathBuf| ServerConfig {
        data_dir: Some(dir.clone()),
        ..Default::default()
    };
    let server = Server::spawn(config(&dir)).expect("bind");
    let addr = server.local_addr().to_string();
    let mut conn = Connection::connect(&addr).expect("connect");
    for line in SETUP.lines().filter(|l| !l.trim().is_empty()) {
        send_ok(&mut conn, line);
    }
    send_ok(&mut conn, CITE);
    send_ok(&mut conn, "checkpoint");
    send_ok(&mut conn, "begin");
    send_ok(&mut conn, "insert FamilyIntro(13, '3rd')");
    send_ok(&mut conn, "commit");
    let expected = send_ok(&mut conn, CITE);
    drop(conn);
    // Hard stop: no client-issued shutdown, no final checkpoint.
    server.stop();

    let server = Server::spawn(config(&dir)).expect("rebind");
    let addr = server.local_addr().to_string();
    let mut conn = Connection::connect(&addr).expect("reconnect");
    assert_eq!(
        send_ok(&mut conn, CITE),
        expected,
        "recovered server answers identically over the wire"
    );
    let stats = send_ok(&mut conn, "stats");
    assert!(
        stats.iter().any(|l| l == "view_materializations 0"),
        "warm recovery visible in wire stats: {stats:?}"
    );
    drop(conn);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a checkpoint the schemas cannot be recovered, so an
/// uncheckpointed-WAL directory is rejected loudly — but the normal
/// flow checkpoints at every DDL, so a store that ever declared a
/// schema always recovers.
#[test]
fn ddl_checkpoint_makes_first_commit_recoverable() {
    let dir = temp_dir("ddl");
    let mut live = durable_interp(&dir);
    live.run_line("schema R(A:int) key(0)").unwrap();
    live.run_line("insert R(1)").unwrap();
    live.run_line("commit").unwrap();
    drop(live); // crash before any cite or explicit checkpoint

    let mut revived = durable_interp(&dir);
    let out = revived.run_line("tables").unwrap();
    assert!(out.contains("R: 1 tuples"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Interpreter::view_cache_stats`/`plan_cache_stats` helpers used above
/// go through the shared store; make sure an isolated session over the
/// same recovered store sees the same data (sessions share one durable
/// store).
#[test]
fn recovered_store_is_shared_across_sessions() {
    let dir = temp_dir("shared");
    let mut live = durable_interp(&dir);
    live.run(SETUP).unwrap();
    live.run_line("checkpoint").unwrap();
    drop(live);

    let shared = SharedStore::open_durable_shared(&dir).unwrap();
    let mut a = Interpreter::session(Arc::clone(&shared), None);
    let mut b = Interpreter::session(Arc::clone(&shared), None);
    let out = a.run_line("tables").unwrap();
    assert!(out.contains("Family: 2 tuples"), "{out}");
    // A commit from one session is durable and visible to the other.
    b.run_line("insert FamilyIntro(13, '3rd')").unwrap();
    b.run_line("commit").unwrap();
    let out = a.run_line("tables").unwrap();
    assert!(out.contains("FamilyIntro: 2 tuples"), "{out}");
    drop(a);
    drop(b);
    drop(shared);

    let mut revived = durable_interp(&dir);
    let out = revived.run_line("tables").unwrap();
    assert!(
        out.contains("FamilyIntro: 2 tuples"),
        "commit survived: {out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Pipelining and event-transport tests: the event-driven connection
//! layer must be wire-compatible with the blocking worker pool, `@tag`
//! echoes must come back in request order, commit bursts must coalesce
//! into one group window, and every failure path (mid-pipeline
//! disconnects, oversized lines, idle sessions, full servers) must
//! leave no state behind.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use citesys_net::client::Connection;
use citesys_net::protocol::{Response, WireErrorKind};
use citesys_net::server::{Server, ServerConfig};

fn spawn(config: ServerConfig) -> (Server, String) {
    let server = Server::spawn(config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Blocking transport, per-transaction commits (deterministic group
/// stats for equivalence checks).
fn blocking_config() -> ServerConfig {
    ServerConfig {
        commit_window: Duration::ZERO,
        ..Default::default()
    }
}

/// Event transport on a deliberately tiny worker set — every test here
/// multiplexes more sockets than workers.
fn event_config() -> ServerConfig {
    ServerConfig {
        event_loop: true,
        workers: 2,
        commit_window: Duration::ZERO,
        ..Default::default()
    }
}

fn ok_lines(resp: Response) -> Vec<String> {
    match resp {
        Response::Ok(lines) => lines,
        Response::Err { kind, message } => panic!("unexpected error [{kind:?}]: {message}"),
    }
}

/// Writes one raw request byte-for-byte, then reads the server's whole
/// response stream to EOF (banner included).
fn exchange(addr: &str, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.write_all(request).expect("send request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read to EOF");
    reply
}

fn poll_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

const SCRIPT: &[&str] = &[
    "schema R(A:int, B:text) key(0)",
    "insert R(1, 'a')",
    "insert R(2, 'b')",
    "commit",
    "view V(A, B) :- R(A, B) | cite CV(D) :- D = 'src'",
    "cite Q(A) :- R(A, B)",
    "begin",
    "insert R(3, 'c')",
    "commit",
    "dump R",
    "tables",
];

/// The tentpole equivalence: a 64-deep-capable pipelined session on
/// the event transport produces exactly the responses — and exactly
/// the store statistics — of the same script run synchronously on the
/// blocking transport.
#[test]
fn pipelined_equals_sync_responses_and_stats() {
    let (sync_server, sync_addr) = spawn(blocking_config());
    let mut conn = Connection::connect(&sync_addr).unwrap();
    let sync_responses: Vec<Response> =
        SCRIPT.iter().map(|line| conn.send(line).unwrap()).collect();
    drop(conn);

    let (event_server, event_addr) = spawn(event_config());
    let mut conn = Connection::connect(&event_addr).unwrap();
    let pipelined_responses = conn.pipeline(SCRIPT).unwrap();
    drop(conn);

    assert_eq!(sync_responses, pipelined_responses);

    let sync_stats = sync_server.stats();
    let event_stats = event_server.stats();
    assert_eq!(sync_stats.commits, event_stats.commits);
    assert_eq!(sync_stats.snapshot_swaps, event_stats.snapshot_swaps);
    assert_eq!(sync_stats.group_windows, event_stats.group_windows);
    assert_eq!(sync_stats.largest_group, event_stats.largest_group);
    assert_eq!(sync_stats.service_builds, event_stats.service_builds);
    sync_server.stop();
    event_server.stop();
}

/// Tags are optional per request and echo back on the matching frame,
/// interleaved with untagged traffic, strictly in request order.
#[test]
fn tags_echo_in_request_order_mixed_with_untagged() {
    let (server, addr) = spawn(event_config());
    let mut conn = Connection::connect(&addr).unwrap();
    conn.send_nowait(Some("a1"), "schema R(A:int)").unwrap();
    conn.send_nowait(None, "insert R(1)").unwrap();
    conn.send_nowait(Some("z/9"), "commit").unwrap();
    conn.send_nowait(Some("last"), "dump R").unwrap();

    let (tag, resp) = conn.read_tagged_response().unwrap().unwrap();
    assert_eq!(tag.as_deref(), Some("a1"));
    assert!(ok_lines(resp)[0].contains("schema R"));
    let (tag, resp) = conn.read_tagged_response().unwrap().unwrap();
    assert_eq!(tag, None);
    ok_lines(resp);
    let (tag, resp) = conn.read_tagged_response().unwrap().unwrap();
    assert_eq!(tag.as_deref(), Some("z/9"));
    assert!(ok_lines(resp)[0].contains("committed version 1"));
    let (tag, resp) = conn.read_tagged_response().unwrap().unwrap();
    assert_eq!(tag.as_deref(), Some("last"));
    let rows = ok_lines(resp);
    assert_eq!(rows.last().map(String::as_str), Some("1"), "{rows:?}");
    server.stop();
}

/// The same raw bytes — tags, CRLF endings, blanks, comments, parse
/// errors, a quit — produce byte-identical reply streams on both
/// transports.
#[test]
fn event_and_blocking_transports_byte_identical() {
    let request: &[u8] = b"@s1 schema R(A:int, B:text) key(0)\n\
        insert R(1, 'a')\r\n\
        @x insert R(2, 'b')\n\
        @c1 commit\n\
        tables\n\
        \n\
        # a comment line\r\n\
        @oops bogus nonsense\n\
        @ not-a-tag\n\
        @q quit\n";
    let (blocking, blocking_addr) = spawn(blocking_config());
    let (event, event_addr) = spawn(event_config());
    let from_blocking = exchange(&blocking_addr, request);
    let from_event = exchange(&event_addr, request);
    assert_eq!(
        String::from_utf8_lossy(&from_blocking),
        String::from_utf8_lossy(&from_event),
    );
    // Spot-check the shared stream really carries tagged frames.
    let text = String::from_utf8_lossy(&from_event).to_string();
    assert!(text.contains("ok @s1 1"), "{text}");
    assert!(text.contains("ok @c1 1"), "{text}");
    assert!(text.contains("err @oops parse"), "{text}");
    assert!(text.ends_with("ok @q 1\nbye\n"), "{text}");
    blocking.stop();
    event.stop();
}

/// A client that vanishes mid-pipeline (open transaction, responses
/// never read) rolls back cleanly: no partial data, the connection
/// count returns to what it was, and later commits work.
#[test]
fn mid_pipeline_disconnect_rolls_back_and_leaks_nothing() {
    let (server, addr) = spawn(event_config());
    let mut admin = Connection::connect(&addr).unwrap();
    ok_lines(admin.send("schema R(A:int, B:text) key(0)").unwrap());
    ok_lines(admin.send("insert R(1, 'keep')").unwrap());
    ok_lines(admin.send("commit").unwrap());

    let mut doomed = TcpStream::connect(&addr).unwrap();
    doomed
        .write_all(b"@t1 begin\n@t2 insert R(99, 'ghost')\n@t3 delete R(1, 'keep')\n")
        .unwrap();
    doomed.flush().unwrap();
    // Give the worker a moment to execute the burst, then vanish
    // without reading a single response (and without commit or quit).
    std::thread::sleep(Duration::from_millis(100));
    drop(doomed);

    assert!(
        poll_until(Duration::from_secs(2), || server.open_connections() == 1),
        "dead pipeline reaped: {} connections still held",
        server.open_connections()
    );
    let rows = ok_lines(admin.send("dump R").unwrap());
    assert!(rows.iter().any(|l| l.contains("keep")), "{rows:?}");
    assert!(!rows.iter().any(|l| l.contains("ghost")), "{rows:?}");
    ok_lines(admin.send("insert R(2, 'later')").unwrap());
    let lines = ok_lines(admin.send("commit").unwrap());
    assert!(lines[0].contains("committed version 2"), "{lines:?}");
    server.stop();
}

/// Regression (satellite 4): an oversized line on a pipelined
/// connection flushes every earlier queued response first, answers
/// `err proto` for the bad request, and only then closes — on *both*
/// transports, with identical bytes.
#[test]
fn oversized_line_flushes_earlier_responses_then_closes() {
    let mut request = b"schema R(A:int)\ninsert R(1)\n@t3 insert R(".to_vec();
    request.extend_from_slice("9".repeat(300).as_bytes());
    request.extend_from_slice(b")\n");
    let mut streams = Vec::new();
    for event_loop in [false, true] {
        let (server, addr) = spawn(ServerConfig {
            max_line_bytes: 64,
            event_loop,
            ..event_config()
        });
        let reply = String::from_utf8_lossy(&exchange(&addr, &request)).to_string();
        // Both earlier commands answered, in order, before the error…
        let schema_at = reply.find("schema R (1 attributes)").expect(&reply);
        let err_at = reply.find("err proto line exceeds 64 bytes").expect(&reply);
        assert!(schema_at < err_at, "{reply}");
        // …and the error frame is the last thing on the wire (the
        // close happened after the flush, not instead of it).
        assert!(
            reply.ends_with("err proto line exceeds 64 bytes\n"),
            "{reply}"
        );
        streams.push(reply);
        server.stop();
    }
    assert_eq!(streams[0], streams[1], "transports diverged");
}

/// A pipelined burst of transactions lands on the group committer
/// inside one coalescing window: session-local commands keep executing
/// behind the in-flight commit, so both commits merge.
#[test]
fn pipelined_commit_burst_coalesces_into_one_window() {
    let (server, addr) = spawn(ServerConfig {
        commit_window: Duration::from_millis(100),
        ..event_config()
    });
    let mut admin = Connection::connect(&addr).unwrap();
    ok_lines(admin.send("schema R(A:int, B:text) key(0)").unwrap());
    ok_lines(admin.send("commit").unwrap());
    let base = server.stats();

    let mut conn = Connection::connect(&addr).unwrap();
    let burst = [
        "begin",
        "insert R(10, 'x')",
        "commit",
        "begin",
        "insert R(11, 'y')",
        "commit",
    ];
    for (i, line) in burst.iter().enumerate() {
        conn.send_nowait(Some(&format!("b{i}")), line).unwrap();
    }
    let mut acks = Vec::new();
    for i in 0..burst.len() {
        let (tag, resp) = conn.read_tagged_response().unwrap().unwrap();
        assert_eq!(tag.as_deref(), Some(format!("b{i}").as_str()));
        acks.push(ok_lines(resp));
    }
    assert!(acks[2][0].contains("group of 2"), "{acks:?}");
    assert!(acks[5][0].contains("group of 2"), "{acks:?}");

    let stats = server.stats();
    assert_eq!(stats.commits - base.commits, 2, "{stats:?}");
    assert_eq!(
        stats.group_windows - base.group_windows,
        1,
        "burst split across windows: {stats:?}"
    );
    assert!(stats.largest_group >= 2, "{stats:?}");
    let rows = ok_lines(admin.send("dump R").unwrap());
    // CSV header plus the two tuples from the merged burst.
    assert_eq!(rows.len(), 3, "{rows:?}");
    server.stop();
}

/// `quit` mid-pipeline: the farewell is the session's final frame and
/// everything the client queued after it is dropped unexecuted.
#[test]
fn quit_drops_the_pipelined_tail() {
    let (server, addr) = spawn(event_config());
    let mut conn = Connection::connect(&addr).unwrap();
    conn.send_nowait(None, "schema R(A:int)").unwrap();
    conn.send_nowait(None, "quit").unwrap();
    conn.send_nowait(None, "tables").unwrap();
    ok_lines(conn.read_tagged_response().unwrap().unwrap().1);
    let (_, resp) = conn.read_tagged_response().unwrap().unwrap();
    assert_eq!(ok_lines(resp), vec!["bye".to_string()]);
    assert!(
        conn.read_tagged_response().unwrap().is_none(),
        "no frame for the post-quit command"
    );
    server.stop();
}

/// The event transport reaps idle sessions on the same contract as the
/// blocking pool: an `err proto` frame, then a close.
#[test]
fn idle_event_session_times_out_with_protocol_error() {
    let (server, addr) = spawn(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..event_config()
    });
    let mut conn = Connection::connect(&addr).unwrap();
    ok_lines(conn.send("schema R(A:int)").unwrap());
    match conn.read_response().unwrap().expect("timeout frame") {
        Response::Err { kind, message } => {
            assert_eq!(kind, WireErrorKind::Proto);
            assert!(message.contains("idle timeout"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    assert!(
        conn.read_response().unwrap().is_none(),
        "closed after timeout"
    );
    server.stop();
}

/// Connections over `max_connections` are turned away with a banner
/// plus `err proto server full…`, and a slot freed by a departing
/// client becomes usable again.
#[test]
fn over_capacity_connections_get_server_full_then_a_freed_slot_works() {
    let (server, addr) = spawn(ServerConfig {
        max_connections: 2,
        ..event_config()
    });
    let held1 = Connection::connect(&addr).unwrap();
    let held2 = Connection::connect(&addr).unwrap();
    assert_eq!(server.open_connections(), 2);

    let mut extra = Connection::connect(&addr).unwrap();
    match extra.read_response().unwrap().expect("rejection frame") {
        Response::Err { kind, message } => {
            assert_eq!(kind, WireErrorKind::Proto);
            assert_eq!(message, "server full: 2 connections held");
        }
        other => panic!("{other:?}"),
    }
    drop(extra);

    drop(held1);
    assert!(
        poll_until(Duration::from_secs(2), || server.open_connections() < 2),
        "departed client never released its slot"
    );
    let mut replacement = Connection::connect(&addr).unwrap();
    ok_lines(replacement.send("schema R(A:int)").unwrap());
    drop(held2);
    server.stop();
}

/// `shutdown` over the event transport stops the whole server after
/// draining the farewell frame.
#[test]
fn shutdown_over_event_transport_stops_the_server() {
    let (server, addr) = spawn(event_config());
    let mut conn = Connection::connect(&addr).unwrap();
    let lines = ok_lines(conn.send("shutdown").unwrap());
    assert_eq!(lines, vec!["shutting down".to_string()]);
    server.wait();
    assert!(
        Connection::connect(&addr).is_err()
            || Connection::connect(&addr)
                .and_then(|mut c| c.send("tables"))
                .is_err(),
        "server no longer serves"
    );
}

//! Connection soak (satellite 3): the event transport must hold
//! hundreds of idle sockets — ten thousand with `CITESYS_SOAK=1` — on
//! a fixed two-worker set, spawning **zero** per-connection threads,
//! reaping nothing early, and returning every file descriptor when the
//! clients leave and the server stops.
//!
//! This is deliberately a single `#[test]`: it counts the process's
//! file descriptors and threads via `/proc/self`, which only means
//! anything when no sibling test is opening sockets concurrently.

#![cfg(target_os = "linux")]

use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use citesys_net::client::Connection;
use citesys_net::protocol::Response;
use citesys_net::server::{Server, ServerConfig};

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").expect("procfs").count()
}

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs")
        .count()
}

/// Best-effort raise of `RLIMIT_NOFILE` toward `want` descriptors,
/// returning the soft limit actually in force afterwards. Root (the
/// usual CI user here) can lift the hard limit too; everyone else gets
/// clamped to it, and the test scales itself to whatever came back.
fn raise_fd_limit(want: u64) -> u64 {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    unsafe {
        let mut rl = Rlimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut rl) != 0 {
            return 1024;
        }
        if rl.cur < want {
            let raised = Rlimit {
                cur: want,
                max: want.max(rl.max),
            };
            if setrlimit(RLIMIT_NOFILE, &raised) != 0 {
                // Hard limit held: settle for soft = hard.
                let capped = Rlimit {
                    cur: rl.max,
                    max: rl.max,
                };
                let _ = setrlimit(RLIMIT_NOFILE, &capped);
            }
            if getrlimit(RLIMIT_NOFILE, &mut rl) != 0 {
                return 1024;
            }
        }
        rl.cur
    }
}

/// A minimal idle client: one socket, banner consumed, then silence.
/// (A full [`Connection`] clones its stream; at 10k connections that
/// extra descriptor per client matters.)
fn connect_idle(addr: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut buf = [0u8; 64];
    let mut seen = Vec::new();
    while !seen.contains(&b'\n') {
        let n = stream.read(&mut buf).expect("banner read");
        assert!(n > 0, "EOF before banner");
        seen.extend_from_slice(&buf[..n]);
    }
    assert!(seen.starts_with(b"citesys-net"), "{seen:?}");
    stream
}

fn poll_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

#[test]
fn event_loop_holds_thousands_of_idle_connections_on_two_workers() {
    let target: usize = if std::env::var("CITESYS_SOAK").is_ok() {
        10_000
    } else {
        512
    };
    // Each held connection costs ~3 descriptors in-process (client
    // socket + the server's socket and its reader clone). Raise the
    // limit if we can, then clamp the target to what we actually got.
    let soft = raise_fd_limit((target * 3 + 512) as u64) as usize;
    let fd_baseline = fd_count();
    let budget = soft.saturating_sub(fd_baseline + 128) / 3;
    let held = target.min(budget).max(16);

    let server = Server::spawn(ServerConfig {
        event_loop: true,
        workers: 2,
        idle_timeout: Duration::from_secs(300),
        commit_window: Duration::from_millis(50),
        max_connections: held + 8,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let threads_with_server_up = thread_count();

    // Hold `held` idle sockets. Reading each banner proves the server
    // accepted and registered the connection before we move on.
    let mut idle = Vec::with_capacity(held);
    for _ in 0..held {
        idle.push(connect_idle(&addr));
    }
    assert_eq!(
        server.open_connections(),
        held,
        "every idle socket is held server-side"
    );
    assert_eq!(
        thread_count(),
        threads_with_server_up,
        "{held} connections must not spawn a single extra thread"
    );

    // The multiplexed workers still serve an active session promptly.
    let mut active = Connection::connect(&addr).unwrap();
    for line in [
        "schema R(A:int, B:text) key(0)",
        "insert R(1, 'soak')",
        "commit",
        "view V(A, B) :- R(A, B) | cite CV(D) :- D = 'src'",
    ] {
        match active.send(line).unwrap() {
            Response::Ok(_) => {}
            Response::Err { message, .. } => panic!("{line}: {message}"),
        }
    }
    match active.send("cite Q(A) :- R(A, B)").unwrap() {
        Response::Ok(lines) => {
            assert!(lines[0].contains("1 answer tuple(s)"), "{lines:?}")
        }
        Response::Err { message, .. } => panic!("cite under load: {message}"),
    }
    drop(active);

    // Drop every client: the pollers must notice each EOF and release
    // the slot without a thread ever having been parked on it.
    drop(idle);
    assert!(
        poll_until(Duration::from_secs(30), || server.open_connections() == 0),
        "connections leaked: {} still held",
        server.open_connections()
    );

    // Shutdown drains: workers, committer, pollers and their wakeup
    // eventfds all return their descriptors.
    server.stop();
    assert!(
        poll_until(Duration::from_secs(5), || fd_count() <= fd_baseline),
        "fd leak: {} now vs {} at baseline",
        fd_count(),
        fd_baseline
    );
}

//! Ingestion-vertical acceptance: quote-heavy CSV and JSONL dumps flow
//! through `ingest` into the durable store batch by batch, survive a
//! crash-restart via WAL/checkpoint recovery byte-for-byte, and the
//! pinned manifest detects a one-byte tamper of a source file.

use std::path::PathBuf;

use citesys_net::script::{Interpreter, SharedStore};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("citesys-ingest-test")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_interp(dir: &PathBuf) -> Interpreter {
    Interpreter::with_store(SharedStore::open_durable_shared(dir).expect("open data dir"))
}

fn run(interp: &mut Interpreter, line: &str) -> String {
    interp
        .run_session_line(line)
        .unwrap_or_else(|e| panic!("{line}: {}", e.message))
        .output
}

/// A dump exercising every CSV escape the scanner supports: embedded
/// LF and CR inside quoted cells, doubled quotes, a CRLF record
/// terminator, and an unquoted cell — all of which must round-trip
/// through ingest, WAL replay and recovery unchanged.
const MESSY_CSV: &str = "\"FID:int\",\"FName:text\",\"Desc:text\"\n\
    1,\"multi\nline\",\"quote \"\" inside\"\r\n\
    2,\"carriage\rreturn\",plain\n\
    3,\"trailing\",\"comma, inside\"\n";

const JSONL: &str = "{\"FID\": \"int\", \"Note\": \"text\"}\n\
    {\"FID\": 1, \"Note\": \"first\"}\n\
    {\"FID\": 2, \"Note\": \"second\"}\n";

fn write_dumps(dumps: &PathBuf) {
    std::fs::create_dir_all(dumps).expect("mkdir dumps");
    std::fs::write(dumps.join("Family.csv"), MESSY_CSV).expect("write csv");
    std::fs::write(dumps.join("FamilyNote.jsonl"), JSONL).expect("write jsonl");
}

#[test]
fn messy_dump_ingests_and_recovers_byte_identical() {
    let root = temp_dir("messy");
    let dumps = root.join("dumps");
    let data = root.join("data");
    write_dumps(&dumps);
    std::fs::create_dir_all(&data).expect("mkdir data");

    // --- Ingest session ----------------------------------------------
    let (pre_family, pre_note, pre_snapshot) = {
        let mut interp = durable_interp(&data);
        let out = run(
            &mut interp,
            &format!("ingest '{}' as messy batch 2", dumps.display()),
        );
        assert!(
            out.contains("3 record(s) into Family"),
            "csv records missing from: {out}"
        );
        assert!(
            out.contains("2 record(s) into FamilyNote"),
            "jsonl records missing from: {out}"
        );
        // batch 2 over 3 records ⇒ the csv alone needs 2 commits.
        assert!(out.contains("2 batch(es)"), "batching missing from: {out}");
        assert!(out.contains("manifest "), "manifest missing from: {out}");
        let verify = run(&mut interp, "dataset verify");
        assert!(
            verify.contains("1 dataset(s), 2 source file(s) ok"),
            "verify failed: {verify}"
        );
        (
            run(&mut interp, "dump Family"),
            run(&mut interp, "dump FamilyNote"),
            run(&mut interp, "snapshot"),
        )
    };
    // The messy cells made it into the store intact.
    assert!(pre_family.contains("multi\nline"), "LF lost: {pre_family}");
    assert!(
        pre_family.contains("carriage\rreturn"),
        "CR lost: {pre_family}"
    );
    // `dump` re-escapes for CSV output, so the embedded quote shows in
    // its doubled form — present means it survived typed parsing.
    assert!(
        pre_family.contains("quote \"\" inside"),
        "doubled quote lost: {pre_family}"
    );

    // --- Crash-restart: no clean shutdown, recover from WAL ----------
    {
        let mut interp = durable_interp(&data);
        assert_eq!(run(&mut interp, "dump Family"), pre_family);
        assert_eq!(run(&mut interp, "dump FamilyNote"), pre_note);
        assert_eq!(run(&mut interp, "snapshot"), pre_snapshot);
        let listed = run(&mut interp, "datasets");
        assert!(
            listed.contains("dataset messy: 2 file(s), 5 record(s)"),
            "registry lost: {listed}"
        );
        let verify = run(&mut interp, "dataset verify");
        assert!(
            verify.contains("ok"),
            "post-restart verify failed: {verify}"
        );
    }

    // --- One-byte tamper of a pinned source is detected --------------
    let path = dumps.join("Family.csv");
    let mut bytes = std::fs::read(&path).expect("read csv");
    let last = bytes.len() - 2;
    bytes[last] ^= 0x01;
    std::fs::write(&path, bytes).expect("tamper csv");
    {
        let mut interp = durable_interp(&data);
        let err = interp
            .run_session_line("dataset verify")
            .expect_err("tampered source must fail verification");
        assert!(
            err.message.contains("digest mismatch"),
            "wrong failure: {}",
            err.message
        );
        assert!(
            err.message.contains("Family.csv"),
            "failure must name the file: {}",
            err.message
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// `load` with an explicit key clause and with the inferred default both
/// declare the relation from the file header on a fresh store.
#[test]
fn load_declares_schema_from_header() {
    let root = temp_dir("load-key");
    std::fs::create_dir_all(&root).expect("mkdir");
    let csv = root.join("Pair.csv");
    std::fs::write(&csv, "\"A:int\",\"B:text\"\n1,\"x\"\n2,\"y\"\n").expect("write csv");

    let mut interp = Interpreter::new();
    let out = run(
        &mut interp,
        &format!("load Pair from '{}' key(0)", csv.display()),
    );
    assert!(out.contains("loaded 2 tuple(s)"), "load failed: {out}");
    let tables = run(&mut interp, "tables");
    assert!(tables.contains("Pair"), "schema not declared: {tables}");

    // Out-of-range key positions are a parse error naming the position.
    let mut fresh = Interpreter::new();
    let err = fresh
        .run_session_line(&format!("load Pair from '{}' key(5)", csv.display()))
        .expect_err("key(5) over 2 columns must fail");
    assert!(
        err.message.contains("key position 5 out of range"),
        "wrong error: {}",
        err.message
    );
    let _ = std::fs::remove_dir_all(&root);
}

//! Observability integration tests: under a pipelined burst, the
//! Prometheus exposition served by the `metrics` command and the
//! `--metrics` HTTP endpoint must reconcile with the `stats` command's
//! counters — on both transports — and the exposition itself must be
//! structurally valid (metadata before samples, cumulative buckets).
//! The transports must also agree on *why* connections die: oversized
//! lines and idle reaps land in the same disconnect counters.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use citesys_net::client::Connection;
use citesys_net::protocol::{Response, MAX_LINE_BYTES};
use citesys_net::server::{Server, ServerConfig};

/// A transport variant with the metrics endpoint (and therefore
/// latency timings) enabled on an ephemeral port.
fn metrics_config(event_loop: bool) -> ServerConfig {
    ServerConfig {
        event_loop,
        workers: 2,
        metrics: Some("127.0.0.1:0".to_string()),
        ..Default::default()
    }
}

fn ok_lines(resp: Response) -> Vec<String> {
    match resp {
        Response::Ok(lines) => lines,
        Response::Err { kind, message } => panic!("unexpected error [{kind:?}]: {message}"),
    }
}

fn poll_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// One `name value` line out of the `stats` command's reply.
fn stat(lines: &[String], name: &str) -> u64 {
    lines
        .iter()
        .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.parse().ok())
        .unwrap_or_else(|| panic!("stats has no '{name}' line: {lines:?}"))
}

/// The value of one exposition series, matched on the full
/// `name{labels}` prefix.
fn sample(text: &str, series: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            (name == series).then(|| value.parse().expect("numeric sample"))
        })
        .unwrap_or_else(|| panic!("exposition has no '{series}' series"))
}

/// Structural validation of the Prometheus text format: every sample
/// carries a parseable value and is preceded by `# HELP` / `# TYPE`
/// metadata for its family, and every `# TYPE` names a known kind.
fn assert_valid_exposition(text: &str) {
    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: HashSet<String> = HashSet::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap();
            assert!(!helped.contains(name), "duplicate HELP for {name}");
            helped.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap();
            let kind = it.next().unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind: {line}"
            );
            typed.insert(name.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        if line.is_empty() {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable sample: {line}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric value: {line}"));
        let base = series.split('{').next().unwrap();
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| base.strip_suffix(suffix).filter(|f| typed.contains(*f)))
            .unwrap_or(base);
        assert!(
            typed.contains(family) && helped.contains(family),
            "sample without HELP/TYPE metadata: {line}"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition is empty");
}

/// Buckets of an unlabeled histogram must be cumulative and its `+Inf`
/// bucket must equal `_count`.
fn assert_histogram_consistent(text: &str, family: &str) {
    let mut buckets: Vec<f64> = Vec::new();
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        if line.starts_with(&format!("{family}_bucket{{")) {
            let (_, value) = line.rsplit_once(' ').unwrap();
            buckets.push(value.parse().unwrap());
        }
    }
    assert!(!buckets.is_empty(), "{family} has no buckets");
    for pair in buckets.windows(2) {
        assert!(pair[0] <= pair[1], "{family} buckets not cumulative");
    }
    let count = sample(text, &format!("{family}_count"));
    assert_eq!(
        buckets.last().copied(),
        Some(count),
        "{family} +Inf bucket disagrees with _count"
    );
}

/// Raw HTTP/1.1 exchange against the scrape endpoint; returns
/// `(head, body)`.
fn scrape(addr: &str, request_line: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape endpoint");
    write!(stream, "{request_line}\r\nHost: test\r\n\r\n").unwrap();
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .expect("read scrape reply");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Three commits, three cites (one plan-cache hit, two misses), all
/// pipelined through one connection.
const BURST: &[&str] = &[
    "schema R(A:int, B:text) key(0)",
    "insert R(1, 'a')",
    "view V(A, B) :- R(A, B) | cite CV(D) :- D = 'src'",
    "commit",
    "begin",
    "insert R(2, 'b')",
    "commit",
    "begin",
    "insert R(3, 'c')",
    "commit",
    "cite Q(A) :- R(A, B)",
    "cite Q(A) :- R(A, B)",
    "cite Q(B) :- R(A, B)",
];

#[test]
fn metrics_reconcile_with_stats_after_pipelined_burst() {
    for event_loop in [false, true] {
        let server = Server::spawn(metrics_config(event_loop)).expect("spawn");
        let addr = server.local_addr().to_string();
        let mut conn = Connection::connect(&addr).unwrap();
        for resp in conn.pipeline(BURST).unwrap() {
            ok_lines(resp);
        }

        let stats_lines = ok_lines(conn.send("stats").unwrap());
        let mut sorted = stats_lines.clone();
        sorted.sort();
        assert_eq!(stats_lines, sorted, "stats output must be sorted");

        let text = ok_lines(conn.send("metrics").unwrap()).join("\n");
        assert_valid_exposition(&text);
        assert_histogram_consistent(&text, "citesys_cite_seconds");
        assert_histogram_consistent(&text, "citesys_commit_seconds");

        // Counter/gauge reconciliation: one registry feeds both views.
        assert_eq!(
            sample(&text, "citesys_commits_total"),
            stat(&stats_lines, "commits") as f64,
            "event_loop={event_loop}"
        );
        assert_eq!(
            sample(&text, "citesys_snapshot_swaps_total"),
            stat(&stats_lines, "snapshot_swaps") as f64,
        );
        assert_eq!(
            sample(&text, "citesys_group_windows_total"),
            stat(&stats_lines, "group_windows") as f64,
        );
        assert_eq!(
            sample(&text, "citesys_wal_records"),
            stat(&stats_lines, "wal_records") as f64,
        );
        assert_eq!(
            sample(&text, "citesys_plan_cache_hits_total"),
            stat(&stats_lines, "plan_cache_hits") as f64,
        );
        assert_eq!(
            sample(&text, "citesys_plan_cache_misses_total"),
            stat(&stats_lines, "plan_cache_misses") as f64,
        );
        assert_eq!(stat(&stats_lines, "commits"), 3);

        // Latency spans: every cite timed end-to-end and per stage; the
        // rewrite stage only ran on plan-cache misses.
        assert_eq!(sample(&text, "citesys_cite_seconds_count"), 3.0);
        assert_eq!(
            sample(
                &text,
                "citesys_cite_stage_seconds_count{stage=\"plan_lookup\"}"
            ),
            3.0
        );
        assert_eq!(
            sample(&text, "citesys_cite_stage_seconds_count{stage=\"render\"}"),
            3.0
        );
        assert_eq!(
            sample(&text, "citesys_cite_stage_seconds_count{stage=\"rewrite\"}"),
            sample(&text, "citesys_plan_cache_misses_total"),
        );
        assert!(sample(&text, "citesys_cite_stage_seconds_count{stage=\"parse\"}") > 0.0);

        // The HTTP endpoint serves the same registry.
        let maddr = server
            .metrics_addr()
            .expect("metrics endpoint bound")
            .to_string();
        let (head, body) = scrape(&maddr, "GET /metrics HTTP/1.1");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(
            head.contains("Content-Type: text/plain; version=0.0.4"),
            "{head}"
        );
        assert_valid_exposition(&body);
        assert_eq!(
            sample(&body, "citesys_commits_total"),
            stat(&stats_lines, "commits") as f64,
        );

        let (head, _) = scrape(&maddr, "GET /nope HTTP/1.1");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = scrape(&maddr, "POST /metrics HTTP/1.1");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");

        drop(conn);
        server.stop();
    }
}

#[test]
fn disconnect_reasons_counted_on_both_transports() {
    for event_loop in [false, true] {
        let config = ServerConfig {
            event_loop,
            workers: 2,
            idle_timeout: Duration::from_millis(200),
            ..Default::default()
        };
        let server = Server::spawn(config).expect("spawn");
        let addr = server.local_addr().to_string();

        // Oversized: one line over the cap hangs the session up.
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let mut big = vec![b'x'; MAX_LINE_BYTES + 16];
        big.push(b'\n');
        stream.write_all(&big).expect("send oversized line");
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
        drop(stream);

        // Idle: a connected-but-silent session is reaped at the
        // deadline (hold it open until the server closes it).
        let mut idle = TcpStream::connect(&addr).expect("connect idle");
        let mut sink = Vec::new();
        let _ = idle.read_to_end(&mut sink);
        drop(idle);

        let reconciled = poll_until(Duration::from_secs(5), || {
            let mut conn = Connection::connect(&addr).unwrap();
            let lines = ok_lines(conn.send("stats").unwrap());
            stat(&lines, "disconnects_oversized") == 1 && stat(&lines, "disconnects_idle") == 1
        });
        assert!(
            reconciled,
            "event_loop={event_loop}: disconnect counters never reconciled"
        );
        server.stop();
    }
}

//! End-to-end tests of the TCP front end: wire framing over real
//! sockets, session isolation, group commit, timeouts and durability.

use std::io::Write;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use citesys_net::client::Connection;
use citesys_net::protocol::{Response, WireErrorKind};
use citesys_net::script::Interpreter;
use citesys_net::server::{Server, ServerConfig};

fn spawn(config: ServerConfig) -> (Server, String) {
    let server = Server::spawn(config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        commit_window: Duration::from_millis(100),
        ..Default::default()
    }
}

fn ok_lines(resp: Response) -> Vec<String> {
    match resp {
        Response::Ok(lines) => lines,
        Response::Err { kind, message } => panic!("unexpected error [{kind:?}]: {message}"),
    }
}

const SETUP: &[&str] = &[
    "schema Family(FID:int, FName:text, Desc:text) key(0)",
    "schema FamilyIntro(FID:int, Text:text) key(0)",
    "insert Family(11, 'Calcitonin', 'C1')",
    "insert FamilyIntro(11, '1st')",
    "view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'",
    "view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'",
    "commit",
];

fn run_setup(conn: &mut Connection) {
    for line in SETUP {
        ok_lines(conn.send(line).unwrap());
    }
}

#[test]
fn end_to_end_session_over_tcp() {
    let (server, addr) = spawn(quick_config());
    let mut conn = Connection::connect(&addr).unwrap();
    assert!(conn.banner().starts_with("citesys-net v1"));
    run_setup(&mut conn);
    let lines = ok_lines(
        conn.send("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap(),
    );
    assert!(
        lines[0].contains("1 answer tuple(s) at version 1"),
        "{lines:?}"
    );
    assert!(lines.iter().any(|l| l.contains("GtoPdb")), "{lines:?}");
    let lines = ok_lines(conn.send("verify").unwrap());
    assert!(lines[0].contains("fixity verified: v1"), "{lines:?}");
    // Errors are framed, not fatal: the session keeps going.
    match conn.send("bogus").unwrap() {
        Response::Err { kind, message } => {
            assert_eq!(kind, WireErrorKind::Parse);
            assert!(message.contains("unknown command"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    match conn.send("cite Q(X) :- Nope(X)").unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, WireErrorKind::Citation),
        other => panic!("{other:?}"),
    }
    let lines = ok_lines(conn.send("tables").unwrap());
    assert!(
        lines.iter().any(|l| l.contains("Family: 1 tuples")),
        "{lines:?}"
    );
    // Blank and comment lines are acknowledged with empty payloads.
    assert_eq!(ok_lines(conn.send("").unwrap()).len(), 0);
    assert_eq!(ok_lines(conn.send("# comment").unwrap()).len(), 0);
    let lines = ok_lines(conn.send("quit").unwrap());
    assert_eq!(lines, vec!["bye".to_string()]);
    server.stop();
}

#[test]
fn command_split_across_tcp_segments_reassembles() {
    let (server, addr) = spawn(quick_config());
    let mut conn = Connection::connect(&addr).unwrap();
    // One logical line, written in four separate segments with pauses —
    // the server's LineReader must reassemble it (and strip the CRLF).
    for chunk in ["sche", "ma R(A:i", "nt)", "\r\n"] {
        conn.stream().write_all(chunk.as_bytes()).unwrap();
        conn.stream().flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    let lines = ok_lines(conn.read_response().unwrap().expect("response"));
    assert!(lines[0].contains("schema R (1 attributes)"), "{lines:?}");
    // Two commands in one segment are two responses.
    conn.stream()
        .write_all(b"insert R(1)\ninsert R(2)\n")
        .unwrap();
    assert_eq!(ok_lines(conn.read_response().unwrap().unwrap()).len(), 0);
    assert_eq!(ok_lines(conn.read_response().unwrap().unwrap()).len(), 0);
    let lines = ok_lines(conn.send("commit").unwrap());
    assert!(
        lines[0].contains("committed version 1 (2 op(s)"),
        "{lines:?}"
    );
    server.stop();
}

#[test]
fn oversized_line_rejected_with_protocol_error() {
    let (server, addr) = spawn(ServerConfig {
        max_line_bytes: 64,
        ..quick_config()
    });
    let mut conn = Connection::connect(&addr).unwrap();
    let huge = format!("insert R({})\n", "9".repeat(500));
    conn.stream().write_all(huge.as_bytes()).unwrap();
    match conn.read_response().unwrap().expect("error frame") {
        Response::Err { kind, message } => {
            assert_eq!(kind, WireErrorKind::Proto);
            assert!(message.contains("exceeds 64 bytes"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    // The server closes the connection after an oversized line…
    assert!(conn.read_response().unwrap().is_none(), "connection closed");
    // …and stays healthy for new connections.
    let mut conn = Connection::connect(&addr).unwrap();
    ok_lines(conn.send("schema R(A:int)").unwrap());
    server.stop();
}

#[test]
fn abrupt_disconnect_mid_transaction_rolls_back() {
    let (server, addr) = spawn(quick_config());
    let mut admin = Connection::connect(&addr).unwrap();
    run_setup(&mut admin);
    // A second client opens a transaction and vanishes mid-way.
    let mut doomed = Connection::connect(&addr).unwrap();
    ok_lines(doomed.send("begin").unwrap());
    ok_lines(doomed.send("insert Family(99, 'Ghost', 'X')").unwrap());
    ok_lines(
        doomed
            .send("delete Family(11, 'Calcitonin', 'C1')")
            .unwrap(),
    );
    drop(doomed); // no commit, no quit — the TCP connection just dies
    std::thread::sleep(Duration::from_millis(100));
    // Nothing from the dead transaction is visible, and the store still
    // commits cleanly for others.
    let lines = ok_lines(admin.send("dump Family").unwrap());
    assert!(lines.iter().any(|l| l.contains("Calcitonin")), "{lines:?}");
    assert!(!lines.iter().any(|l| l.contains("Ghost")), "{lines:?}");
    ok_lines(admin.send("insert Family(12, 'Dopamine', 'D1')").unwrap());
    let lines = ok_lines(admin.send("commit").unwrap());
    assert!(lines[0].contains("committed version 2"), "{lines:?}");
    server.stop();
}

#[test]
fn idle_session_times_out_with_protocol_error() {
    let (server, addr) = spawn(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..quick_config()
    });
    let mut conn = Connection::connect(&addr).unwrap();
    ok_lines(conn.send("schema R(A:int)").unwrap());
    // Say nothing and wait: the server must end the session itself.
    match conn.read_response().unwrap().expect("timeout frame") {
        Response::Err { kind, message } => {
            assert_eq!(kind, WireErrorKind::Proto);
            assert!(message.contains("idle timeout"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    assert!(
        conn.read_response().unwrap().is_none(),
        "closed after timeout"
    );
    server.stop();
}

#[test]
fn shutdown_command_stops_the_server() {
    let (server, addr) = spawn(quick_config());
    let mut conn = Connection::connect(&addr).unwrap();
    let lines = ok_lines(conn.send("shutdown").unwrap());
    assert_eq!(lines, vec!["shutting down".to_string()]);
    // wait() returns because the shutdown flag is set.
    server.wait();
    assert!(
        Connection::connect(&addr).is_err()
            || Connection::connect(&addr)
                .and_then(|mut c| c.send("tables"))
                .is_err(),
        "server no longer serves"
    );
}

/// The acceptance scenario: two concurrent clients each running
/// `begin…commit` against a live server produce final state identical
/// to sequential execution, and the swap counter stays below the commit
/// counter (group commit coalesced).
#[test]
fn concurrent_transactions_equal_sequential_with_fewer_swaps() {
    const ROUNDS: usize = 5;
    let (server, addr) = spawn(quick_config());
    let mut admin = Connection::connect(&addr).unwrap();
    run_setup(&mut admin);
    // Warm the service so commits have materializations to carry (and
    // snapshot swaps to count).
    ok_lines(
        admin
            .send("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap(),
    );
    let base = server.stats();

    // Two clients, ROUNDS rounds each; a barrier per round makes the
    // two `commit`s race into the same commit window.
    let barrier = Arc::new(Barrier::new(2));
    std::thread::scope(|scope| {
        for client in 0..2i64 {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut conn = Connection::connect(&addr).unwrap();
                for round in 0..ROUNDS as i64 {
                    let fid = 100 + client * 100 + round;
                    ok_lines(conn.send("begin").unwrap());
                    ok_lines(
                        conn.send(&format!("insert Family({fid}, 'F{fid}', 'D')"))
                            .unwrap(),
                    );
                    ok_lines(
                        conn.send(&format!("insert FamilyIntro({fid}, 'i{fid}')"))
                            .unwrap(),
                    );
                    barrier.wait();
                    let lines = ok_lines(conn.send("commit").unwrap());
                    assert!(lines[0].contains("committed version"), "{lines:?}");
                }
            });
        }
    });

    let stats = server.stats();
    let commits = stats.commits - base.commits;
    let swaps = stats.snapshot_swaps - base.snapshot_swaps;
    assert_eq!(commits, 2 * ROUNDS as u64, "{stats:?}");
    assert!(
        swaps < commits,
        "group commit must coalesce: {swaps} swaps for {commits} commits ({stats:?})"
    );
    assert!(stats.largest_group >= 2, "{stats:?}");

    // Final state equals the same transactions run sequentially in a
    // solo interpreter (order within a round is irrelevant: the keys are
    // disjoint).
    let mut solo = Interpreter::new();
    for line in SETUP {
        solo.run_line(line).unwrap();
    }
    for client in 0..2i64 {
        for round in 0..ROUNDS as i64 {
            let fid = 100 + client * 100 + round;
            solo.run(&format!(
                "begin\ninsert Family({fid}, 'F{fid}', 'D')\ninsert FamilyIntro({fid}, 'i{fid}')\ncommit\n"
            ))
            .unwrap();
        }
    }
    for rel in ["Family", "FamilyIntro"] {
        let mut net_rows = ok_lines(admin.send(&format!("dump {rel}")).unwrap());
        let solo_dump = solo.run_line(&format!("dump {rel}")).unwrap();
        let mut solo_rows: Vec<String> = solo_dump.lines().map(str::to_string).collect();
        net_rows.sort();
        solo_rows.sort();
        assert_eq!(net_rows, solo_rows, "{rel} diverged from sequential");
    }
    // The concurrent run's answers match too.
    let lines = ok_lines(
        admin
            .send("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap(),
    );
    assert!(
        lines[0].contains(&format!("{} answer tuple(s)", 1 + 2 * ROUNDS)),
        "{lines:?}"
    );
    server.stop();
}

#[test]
fn stats_command_visible_over_the_wire() {
    let (server, addr) = spawn(quick_config());
    let mut conn = Connection::connect(&addr).unwrap();
    run_setup(&mut conn);
    let lines = ok_lines(conn.send("stats").unwrap());
    assert!(
        lines.iter().any(|l| l.starts_with("commits 1")),
        "{lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("snapshot_swaps ")),
        "{lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("group_windows 1")),
        "{lines:?}"
    );
    server.stop();
}

#[test]
fn plan_cache_survives_a_killed_server() {
    let dir = std::env::temp_dir().join("citesys-net-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("server.plans");
    let _ = std::fs::remove_file(&path);

    let (server, addr) = spawn(ServerConfig {
        plan_cache: Some(path.clone()),
        ..quick_config()
    });
    let mut conn = Connection::connect(&addr).unwrap();
    run_setup(&mut conn);
    ok_lines(
        conn.send("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap(),
    );
    // No shutdown, no quit: the periodic save must already have run.
    let saved = std::fs::read_to_string(&path).expect("plan cache on disk mid-session");
    assert!(saved.starts_with("citesys-plan-cache v1"), "{saved}");
    assert!(
        saved.contains("entry"),
        "a real plan was persisted: {saved}"
    );

    // A later server restores the file and serves the cite from the
    // imported plan (zero fresh searches).
    drop(conn);
    server.stop();
    let (server2, addr2) = spawn(ServerConfig {
        plan_cache: Some(path.clone()),
        ..quick_config()
    });
    let mut conn = Connection::connect(&addr2).unwrap();
    run_setup(&mut conn);
    let lines = ok_lines(
        conn.send("cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
            .unwrap(),
    );
    assert!(
        lines.iter().any(|l| l.contains("loaded 1 cached plan(s)")),
        "{lines:?}"
    );
    let lines = ok_lines(conn.send("stats").unwrap());
    assert!(
        lines.iter().any(|l| l == "plan_cache_misses 0"),
        "served from the restored cache: {lines:?}"
    );
    server2.stop();
    let _ = std::fs::remove_file(&path);
}

//! End-to-end time travel over the wire: `cite … @ <version>` must
//! return byte-identical output (answer lines, citation, fixity digest)
//! to what a live `cite` printed when that version WAS the present —
//! over the blocking transport and the event-loop transport alike; deep
//! history survives a restart through retained checkpoint anchors; and
//! `compact` trims the queryable window with a distinct error below it.

use std::path::PathBuf;

use citesys_net::client::Connection;
use citesys_net::protocol::{Response, WireErrorKind};
use citesys_net::server::{Server, ServerConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("citesys-timetravel-test")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SETUP: &str = "\
schema Family(FID:int, FName:text, Desc:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert FamilyIntro(11, '1st')
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'
commit
";

const CITE: &str = "cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)";

fn send_ok(conn: &mut Connection, line: &str) -> Vec<String> {
    match conn.send(line).expect("round-trip") {
        Response::Ok(lines) => lines,
        Response::Err { message, .. } => panic!("server error on '{line}': {message}"),
    }
}

fn send_err(conn: &mut Connection, line: &str) -> (WireErrorKind, String) {
    match conn.send(line).expect("round-trip") {
        Response::Ok(lines) => panic!("'{line}' unexpectedly succeeded: {lines:?}"),
        Response::Err { kind, message } => (kind, message),
    }
}

fn run_setup(conn: &mut Connection) {
    for line in SETUP.lines().filter(|l| !l.trim().is_empty()) {
        send_ok(conn, line);
    }
}

/// Commits versions 2..=5 (one new family per version) and returns the
/// LIVE cite output captured right after each commit, indexed by
/// version (index 0 and versions without a capture hold `None`).
fn grow_history(conn: &mut Connection) -> Vec<Option<Vec<String>>> {
    let mut live = vec![None, Some(send_ok(conn, CITE))];
    for i in 0..4u64 {
        let fid = 20 + i;
        send_ok(conn, &format!("insert Family({fid}, 'F{fid}', 'D')"));
        send_ok(conn, &format!("insert FamilyIntro({fid}, 'I{fid}')"));
        send_ok(conn, "commit");
        live.push(Some(send_ok(conn, CITE)));
    }
    live
}

fn assert_time_travel_matches(conn: &mut Connection, live: &[Option<Vec<String>>]) {
    for (version, captured) in live.iter().enumerate().skip(1) {
        let captured = captured.as_ref().expect("captured live output");
        let at = send_ok(conn, &format!("{CITE} @ {version}"));
        assert_eq!(
            &at, captured,
            "cite @ {version} must be byte-identical to the live cite at that version"
        );
        // And the version stamp really is the historical one.
        assert!(
            at.iter()
                .any(|l| l.ends_with(&format!("at version {version}"))),
            "{at:?}"
        );
    }
}

/// The tentpole contract on one transport: historical cites are
/// byte-identical to the live cites they rewind to, snapshots are
/// stable, the edges error crisply, and `stats` reports the window.
fn check_transport(event_loop: bool) {
    let server = Server::spawn(ServerConfig {
        event_loop,
        ..Default::default()
    })
    .expect("bind server");
    let addr = server.local_addr().to_string();
    let mut conn = Connection::connect(&addr).expect("connect");
    run_setup(&mut conn);
    let live = grow_history(&mut conn);
    assert_time_travel_matches(&mut conn, &live);

    // `verify` after a historical cite re-executes at the CITED version.
    send_ok(&mut conn, &format!("{CITE} @ 2"));
    let verify = send_ok(&mut conn, "verify");
    assert!(
        verify.iter().any(|l| l.contains("fixity verified")),
        "{verify:?}"
    );

    // Snapshot digests: stable across calls, distinct across versions.
    let snap2 = send_ok(&mut conn, "snapshot @ 2");
    assert_eq!(snap2, send_ok(&mut conn, "snapshot 2"));
    assert!(snap2[0].starts_with("snapshot v2 sha256:"), "{snap2:?}");
    assert_ne!(snap2, send_ok(&mut conn, "snapshot @ 3"));

    // The future is an error, not a guess.
    let (kind, message) = send_err(&mut conn, &format!("{CITE} @ 99"));
    assert_eq!(kind, WireErrorKind::Citation);
    assert!(message.contains("unknown version 99"), "{message}");

    // Inside an open transaction the present is ambiguous — rejected.
    send_ok(&mut conn, "begin");
    let (_, message) = send_err(&mut conn, &format!("{CITE} @ 2"));
    assert!(message.contains("transaction"), "{message}");
    send_ok(&mut conn, "rollback");

    // History accounting: everything since version 0 is in memory.
    let stats = send_ok(&mut conn, "stats");
    assert!(
        stats.iter().any(|l| l == "history_base_version 0"),
        "{stats:?}"
    );
    assert!(
        stats.iter().any(|l| l == "checkpoints_retained 0"),
        "{stats:?}"
    );

    drop(conn);
    server.stop();
}

#[test]
fn at_version_cites_are_byte_identical_blocking() {
    check_transport(false);
}

#[test]
fn at_version_cites_are_byte_identical_event_loop() {
    check_transport(true);
}

/// Auto-checkpointing (`--checkpoint-every`) with retention keeps the
/// superseded checkpoints as anchors, so after a restart — when the
/// in-memory op log starts at the recovered checkpoint — versions far
/// below it are STILL served `@ version`, byte-identical, from the
/// anchor's snapshot plus its WAL segment.
#[test]
fn deep_history_survives_restart_via_anchors() {
    let dir = temp_dir("anchors");
    let config = || ServerConfig {
        data_dir: Some(dir.clone()),
        checkpoint_every: Some(1),
        retain_checkpoints: 8,
        ..Default::default()
    };
    let server = Server::spawn(config()).expect("bind server");
    let mut conn = Connection::connect(&server.local_addr().to_string()).expect("connect");
    run_setup(&mut conn);
    let live = grow_history(&mut conn);
    let stats = send_ok(&mut conn, "stats");
    assert!(
        stats
            .iter()
            .any(|l| l.starts_with("checkpoints_retained ") && l != "checkpoints_retained 0"),
        "anchors accumulated: {stats:?}"
    );
    drop(conn);
    server.stop();

    // Restart: the op log now begins at the last checkpoint, so old
    // versions are only reachable through the retained anchors.
    let server = Server::spawn(config()).expect("rebind server");
    let mut conn = Connection::connect(&server.local_addr().to_string()).expect("reconnect");
    let stats = send_ok(&mut conn, "stats");
    assert!(
        stats.iter().any(|l| l == "history_base_version 0"),
        "anchors reach back to genesis: {stats:?}"
    );
    assert_time_travel_matches(&mut conn, &live);
    let snap = send_ok(&mut conn, "snapshot @ 2");
    assert!(snap[0].starts_with("snapshot v2 sha256:"), "{snap:?}");

    drop(conn);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `compact <window>` over the wire: in-window versions keep serving
/// byte-identical historical cites; versions below the floor return the
/// distinct compacted-history error (and keep doing so after the next
/// restart, proving the durable anchors were really pruned).
#[test]
fn compact_trims_the_queryable_window() {
    let dir = temp_dir("compact");
    let config = || ServerConfig {
        data_dir: Some(dir.clone()),
        checkpoint_every: Some(1),
        retain_checkpoints: 8,
        ..Default::default()
    };
    let server = Server::spawn(config()).expect("bind server");
    let mut conn = Connection::connect(&server.local_addr().to_string()).expect("connect");
    run_setup(&mut conn);
    let live = grow_history(&mut conn); // latest = 5
    let out = send_ok(&mut conn, "compact 2");
    // Anchors 0, 1 and 2 fall below the floor; the anchor AT the floor
    // stays as the replay base for the oldest in-window version.
    assert_eq!(
        out[0], "compacted to version 3 (3 anchor(s) pruned)",
        "{out:?}"
    );

    let check_window = |conn: &mut Connection| {
        for (version, captured) in live.iter().enumerate().skip(3) {
            let at = send_ok(conn, &format!("{CITE} @ {version}"));
            assert_eq!(&at, captured.as_ref().unwrap(), "in-window v{version}");
        }
        for version in 1..=2usize {
            let (kind, message) = send_err(conn, &format!("{CITE} @ {version}"));
            assert_eq!(kind, WireErrorKind::Citation);
            assert!(
                message.contains(&format!(
                    "version {version} was compacted by a checkpoint (oldest kept is 3)"
                )),
                "{message}"
            );
        }
        let stats = send_ok(conn, "stats");
        assert!(
            stats.iter().any(|l| l == "history_base_version 3"),
            "{stats:?}"
        );
    };
    check_window(&mut conn);
    drop(conn);
    server.stop();

    let server = Server::spawn(config()).expect("rebind server");
    let mut conn = Connection::connect(&server.local_addr().to_string()).expect("reconnect");
    check_window(&mut conn);
    drop(conn);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

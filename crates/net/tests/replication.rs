//! Replication acceptance tests: a `serve --follow` replica must serve
//! byte-identical `cite` answers (same answer tuples, same version, same
//! fixity digest) at the primary's version, reject writes with a
//! distinct readonly error naming the primary, survive primary restarts
//! (reconnect + resume) and its own restarts (resume from the local WAL,
//! torn tail included), and bootstrap from a checkpoint when its version
//! is unknown to or compacted away on the primary.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use citesys_net::client::Connection;
use citesys_net::protocol::{Response, WireErrorKind};
use citesys_net::server::{Server, ServerConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("citesys-replication-test")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SETUP: &str = "\
schema Family(FID:int, FName:text, Desc:text) key(0)
schema FamilyIntro(FID:int, Text:text) key(0)
insert Family(11, 'Calcitonin', 'C1')
insert Family(13, 'Dopamine', 'D1')
insert FamilyIntro(11, '1st')
view V2(FID, FName, Desc) :- Family(FID, FName, Desc) | cite CV2(D) :- D = 'GtoPdb'
view V3(FID, Text) :- FamilyIntro(FID, Text) | cite CV3(D) :- D = 'GtoPdb'
commit
";

const CITE: &str = "cite Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)";

fn send_ok(conn: &mut Connection, line: &str) -> Vec<String> {
    match conn.send(line).expect("round-trip") {
        Response::Ok(lines) => lines,
        Response::Err { message, .. } => panic!("server error on '{line}': {message}"),
    }
}

fn send_err(conn: &mut Connection, line: &str) -> (WireErrorKind, String) {
    match conn.send(line).expect("round-trip") {
        Response::Ok(lines) => panic!("'{line}' unexpectedly succeeded: {lines:?}"),
        Response::Err { kind, message } => (kind, message),
    }
}

fn run_setup(conn: &mut Connection) {
    for line in SETUP.lines().filter(|l| !l.trim().is_empty()) {
        send_ok(conn, line);
    }
}

/// Polls `check` until it returns `Some` or ~10s elapse (replication is
/// asynchronous: bootstrap, shipping and reconnect all race the test).
fn wait_for<T>(what: &str, mut check: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(v) = check() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Waits until a fresh `cite` on `conn` answers exactly `expected`.
fn wait_for_cite(conn: &mut Connection, expected: &[String]) {
    wait_for("follower to match the primary's cite output", || {
        match conn.send(CITE).expect("round-trip") {
            Response::Ok(lines) if lines == expected => Some(()),
            // Not caught up yet (still bootstrapping, or behind).
            _ => None,
        }
    });
}

fn follower_config(primary: &str) -> ServerConfig {
    ServerConfig {
        follow: Some(primary.to_string()),
        ..Default::default()
    }
}

/// The core contract: a follower converges to byte-identical cite
/// output (answers + version + citation + fixity digest all inside the
/// compared lines), keeps converging as the primary commits, rejects
/// every mutating command with a readonly error naming the primary, and
/// both sides report replication through `stats`.
#[test]
fn follower_serves_identical_cites_and_rejects_writes() {
    let primary = Server::spawn(ServerConfig::default()).expect("bind primary");
    let paddr = primary.local_addr().to_string();
    let mut pconn = Connection::connect(&paddr).expect("connect primary");
    run_setup(&mut pconn);
    let expected = send_ok(&mut pconn, CITE);

    let follower = Server::spawn(follower_config(&paddr)).expect("bind follower");
    let faddr = follower.local_addr().to_string();
    let mut fconn = Connection::connect(&faddr).expect("connect follower");
    wait_for_cite(&mut fconn, &expected);

    // Byte-identical fixity: `verify` re-executes against the follower's
    // snapshot and must reproduce the digest minted on the primary.
    let verify = send_ok(&mut fconn, "verify");
    assert!(
        verify.iter().any(|l| l.contains("fixity verified")),
        "{verify:?}"
    );

    // Every mutating command is rejected with the readonly kind and a
    // message pointing writers at the primary.
    for cmd in [
        "insert Family(99, 'X', 'Y')",
        "delete Family(11, 'Calcitonin', 'C1')",
        "schema Extra(A:int)",
        "view VX(FID) :- Family(FID, FName, Desc) | cite CX(D) :- D = 'x'",
        "begin",
        "commit",
        "rollback",
        "load Family from '/tmp/nope.csv'",
    ] {
        let (kind, message) = send_err(&mut fconn, cmd);
        assert_eq!(kind, WireErrorKind::Readonly, "'{cmd}': {message}");
        assert!(
            message.contains(&paddr),
            "'{cmd}' names the primary: {message}"
        );
    }

    // The primary keeps committing; the follower converges again.
    send_ok(&mut pconn, "insert FamilyIntro(13, '3rd')");
    send_ok(&mut pconn, "commit");
    let expected = send_ok(&mut pconn, CITE);
    assert!(
        expected.iter().any(|l| l.contains("2 answer tuple(s)")),
        "{expected:?}"
    );
    wait_for_cite(&mut fconn, &expected);

    // Lag accounting: caught up means zero version lag on the follower…
    let fstats = wait_for("follower lag to drain", || {
        let lines = send_ok(&mut fconn, "stats");
        lines
            .iter()
            .any(|l| l == "replica_lag_versions 0")
            .then_some(lines)
    });
    assert!(
        fstats.iter().any(|l| l == &format!("following {paddr}")),
        "{fstats:?}"
    );
    // …and the primary sees one attached replica with shipped records.
    let pstats = send_ok(&mut pconn, "stats");
    assert!(
        pstats.iter().any(|l| l == "replicas_connected 1"),
        "{pstats:?}"
    );
    assert!(
        pstats
            .iter()
            .any(|l| l.starts_with("replica[") && !l.ends_with(" 0")),
        "per-replica shipped counter: {pstats:?}"
    );

    drop(fconn);
    drop(pconn);
    follower.stop();
    primary.stop();
}

/// A follower whose version predates the primary's compaction floor
/// cannot tail the op log (a restarted primary only holds ops after its
/// checkpoint), so it must bootstrap from a full checkpoint frame — and
/// still end up byte-identical.
#[test]
fn fresh_follower_bootstraps_past_compacted_history() {
    let dir = temp_dir("compacted");
    let config = || ServerConfig {
        data_dir: Some(dir.clone()),
        ..Default::default()
    };
    let primary = Server::spawn(config()).expect("bind primary");
    let paddr = primary.local_addr().to_string();
    let mut pconn = Connection::connect(&paddr).expect("connect primary");
    run_setup(&mut pconn);
    send_ok(&mut pconn, CITE);
    send_ok(&mut pconn, "checkpoint");
    drop(pconn);
    primary.stop();

    // Reopened from the checkpoint: history before it is compacted away
    // (base version > 0, op log empty), so a fresh follower at version 0
    // is below the floor and must take the checkpoint path.
    let primary = Server::spawn(config()).expect("rebind primary");
    let paddr = primary.local_addr().to_string();
    let mut pconn = Connection::connect(&paddr).expect("reconnect primary");
    let expected = send_ok(&mut pconn, CITE);

    let follower = Server::spawn(follower_config(&paddr)).expect("bind follower");
    let mut fconn = Connection::connect(&follower.local_addr().to_string()).expect("connect");
    wait_for_cite(&mut fconn, &expected);
    let verify = send_ok(&mut fconn, "verify");
    assert!(
        verify.iter().any(|l| l.contains("fixity verified")),
        "{verify:?}"
    );

    drop(fconn);
    drop(pconn);
    follower.stop();
    primary.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Primary restart mid-stream: the follower's feed dies, it backs off
/// and reconnects, and the restarted primary (same data dir, same port)
/// resumes shipping from the follower's version.
#[test]
fn primary_restart_mid_stream_reconnects_and_resumes() {
    let dir = temp_dir("restart-primary");
    let config = |addr: &str| ServerConfig {
        addr: addr.to_string(),
        data_dir: Some(dir.clone()),
        ..Default::default()
    };
    let primary = Server::spawn(config("127.0.0.1:0")).expect("bind primary");
    let paddr = primary.local_addr().to_string();
    let mut pconn = Connection::connect(&paddr).expect("connect primary");
    run_setup(&mut pconn);
    let expected = send_ok(&mut pconn, CITE);

    let follower = Server::spawn(follower_config(&paddr)).expect("bind follower");
    let mut fconn = Connection::connect(&follower.local_addr().to_string()).expect("connect");
    wait_for_cite(&mut fconn, &expected);

    // Kill the primary mid-stream (no shutdown handshake towards the
    // follower) and bring it back on the SAME address from its data dir.
    drop(pconn);
    primary.stop();
    let primary = Server::spawn(config(&paddr)).expect("rebind primary on same port");
    let mut pconn = Connection::connect(&paddr).expect("reconnect primary");
    send_ok(&mut pconn, "insert FamilyIntro(13, '3rd')");
    send_ok(&mut pconn, "commit");
    let expected = send_ok(&mut pconn, CITE);

    wait_for_cite(&mut fconn, &expected);
    let fstats = send_ok(&mut fconn, "stats");
    let reconnects = fstats
        .iter()
        .find_map(|l| l.strip_prefix("replica_reconnects "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("replica_reconnects in stats");
    assert!(reconnects >= 1, "follower reconnected: {fstats:?}");

    drop(fconn);
    drop(pconn);
    follower.stop();
    primary.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Follower restart: shipped records were persisted to the follower's
/// own WAL before being applied, so a killed follower — even one whose
/// last local record is torn mid-write — resumes from its local version
/// and catches up *incrementally* (wal frames, not a re-bootstrap).
#[test]
fn follower_restart_resumes_from_local_wal_with_torn_tail() {
    let pdir = temp_dir("resume-primary");
    let fdir = temp_dir("resume-follower");
    let primary = Server::spawn(ServerConfig {
        data_dir: Some(pdir.clone()),
        ..Default::default()
    })
    .expect("bind primary");
    let paddr = primary.local_addr().to_string();
    let mut pconn = Connection::connect(&paddr).expect("connect primary");
    run_setup(&mut pconn);
    send_ok(&mut pconn, "insert FamilyIntro(13, '3rd')");
    send_ok(&mut pconn, "commit");
    let expected = send_ok(&mut pconn, CITE);

    let fconfig = || ServerConfig {
        data_dir: Some(fdir.clone()),
        follow: Some(paddr.clone()),
        ..Default::default()
    };
    let follower = Server::spawn(fconfig()).expect("bind follower");
    let mut fconn = Connection::connect(&follower.local_addr().to_string()).expect("connect");
    wait_for_cite(&mut fconn, &expected);
    drop(fconn);
    // SIGKILL-equivalent: stop() without any replication handshake.
    follower.stop();

    // Tear the follower's local WAL tail — a record header and half an
    // op, no `end` trailer — exactly what a crash mid-append leaves.
    let wal = fdir.join("wal.log");
    let mut text = std::fs::read_to_string(&wal).expect("follower wal exists");
    text.push_str("record 99 2\ni Family(99, 'X");
    std::fs::write(&wal, text).unwrap();

    // The primary notices the detach lazily: the stale feed lives until
    // its next write (a ping at the latest) hits the closed socket.
    // Wait it out so the frame accounting below only sees the new feed.
    wait_for("primary to drop the dead feed", || {
        send_ok(&mut pconn, "stats")
            .iter()
            .any(|l| l == "replicas_connected 0")
            .then_some(())
    });

    // While the follower is down, the primary moves on.
    send_ok(&mut pconn, "insert Family(14, 'Ghrelin', 'G1')");
    send_ok(&mut pconn, "insert FamilyIntro(14, '4th')");
    send_ok(&mut pconn, "commit");
    let expected = send_ok(&mut pconn, CITE);
    let shipped_before = shipped_total(&mut pconn);

    let follower = Server::spawn(fconfig()).expect("rebind follower");
    let mut fconn = Connection::connect(&follower.local_addr().to_string()).expect("reconnect");
    wait_for_cite(&mut fconn, &expected);
    let verify = send_ok(&mut fconn, "verify");
    assert!(
        verify.iter().any(|l| l.contains("fixity verified")),
        "{verify:?}"
    );
    // Exactly the one missed commit was shipped as a wal frame: the
    // follower resumed from its recovered local version instead of
    // re-bootstrapping (a checkpoint frame never counts as shipped).
    let shipped_after = shipped_total(&mut pconn);
    assert_eq!(
        shipped_after - shipped_before,
        1,
        "incremental resume, not re-bootstrap"
    );

    drop(fconn);
    drop(pconn);
    follower.stop();
    primary.stop();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

/// A follower that was offline while the primary committed AND ran
/// `compact` comes back with a resume version below the primary's new
/// history floor. The op log can no longer produce its missing records,
/// so the primary must ship a fresh checkpoint frame (not wal frames)
/// and the follower must re-bootstrap from it — and still converge to
/// byte-identical cite output with a verifiable digest.
#[test]
fn follower_rebootstraps_after_live_compaction_on_primary() {
    let pdir = temp_dir("compact-primary");
    let fdir = temp_dir("compact-follower");
    let primary = Server::spawn(ServerConfig {
        data_dir: Some(pdir.clone()),
        retain_checkpoints: 4,
        ..Default::default()
    })
    .expect("bind primary");
    let paddr = primary.local_addr().to_string();
    let mut pconn = Connection::connect(&paddr).expect("connect primary");
    run_setup(&mut pconn);
    let expected = send_ok(&mut pconn, CITE);

    let fconfig = || ServerConfig {
        data_dir: Some(fdir.clone()),
        follow: Some(paddr.clone()),
        ..Default::default()
    };
    let follower = Server::spawn(fconfig()).expect("bind follower");
    let mut fconn = Connection::connect(&follower.local_addr().to_string()).expect("connect");
    wait_for_cite(&mut fconn, &expected);
    drop(fconn);
    follower.stop();
    wait_for("primary to drop the dead feed", || {
        send_ok(&mut pconn, "stats")
            .iter()
            .any(|l| l == "replicas_connected 0")
            .then_some(())
    });

    // While the follower is away: new commits, then a live compaction
    // with window 0 — only the latest version stays in the op log, so
    // the follower's resume version (1) is now below the floor.
    send_ok(&mut pconn, "insert Family(14, 'Ghrelin', 'G1')");
    send_ok(&mut pconn, "insert FamilyIntro(14, '4th')");
    send_ok(&mut pconn, "commit");
    send_ok(&mut pconn, "insert FamilyIntro(13, '3rd')");
    send_ok(&mut pconn, "commit");
    let compacted = send_ok(&mut pconn, "compact");
    assert!(
        compacted[0].starts_with("compacted to version 3"),
        "{compacted:?}"
    );
    let expected = send_ok(&mut pconn, CITE);
    let shipped_before = shipped_total(&mut pconn);

    let follower = Server::spawn(fconfig()).expect("rebind follower");
    let mut fconn = Connection::connect(&follower.local_addr().to_string()).expect("reconnect");
    wait_for_cite(&mut fconn, &expected);
    let verify = send_ok(&mut fconn, "verify");
    assert!(
        verify.iter().any(|l| l.contains("fixity verified")),
        "{verify:?}"
    );
    // The catch-up came as a checkpoint frame, which never counts as a
    // shipped wal record: the follower re-bootstrapped instead of
    // replaying the compacted-away history.
    assert_eq!(
        shipped_total(&mut pconn),
        shipped_before,
        "checkpoint bootstrap, not incremental wal replay"
    );

    // From here on, replication is incremental again.
    send_ok(&mut pconn, "insert Family(15, 'Glucagon', 'G2')");
    send_ok(&mut pconn, "insert FamilyIntro(15, '5th')");
    send_ok(&mut pconn, "commit");
    let expected = send_ok(&mut pconn, CITE);
    wait_for_cite(&mut fconn, &expected);
    assert_eq!(
        shipped_total(&mut pconn) - shipped_before,
        1,
        "post-bootstrap commits ship incrementally"
    );

    drop(fconn);
    drop(pconn);
    follower.stop();
    primary.stop();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

fn shipped_total(conn: &mut Connection) -> u64 {
    send_ok(conn, "stats")
        .iter()
        .find_map(|l| l.strip_prefix("replica_records_shipped "))
        .and_then(|v| v.parse().ok())
        .expect("replica_records_shipped in stats")
}

/// Snapshot pinning across a shipped version bump: a session that cited
/// on the follower keeps `verify`-ing the *cited* version even after
/// replication advances the store underneath it, while a fresh cite in
/// the same session sees the new version. (The same guarantee the
/// primary gives concurrent writers, re-proven over replication.)
#[test]
fn follower_cite_stays_pinned_across_shipped_advance() {
    let primary = Server::spawn(ServerConfig::default()).expect("bind primary");
    let paddr = primary.local_addr().to_string();
    let mut pconn = Connection::connect(&paddr).expect("connect primary");
    run_setup(&mut pconn);
    let expected_v1 = send_ok(&mut pconn, CITE);

    let follower = Server::spawn(follower_config(&paddr)).expect("bind follower");
    let faddr = follower.local_addr().to_string();
    let mut pinned = Connection::connect(&faddr).expect("connect follower");
    wait_for_cite(&mut pinned, &expected_v1);
    let before = send_ok(&mut pinned, CITE);

    // Replication advances the follower underneath the open session…
    send_ok(&mut pconn, "insert FamilyIntro(13, '3rd')");
    send_ok(&mut pconn, "commit");
    let expected_v2 = send_ok(&mut pconn, CITE);
    let mut other = Connection::connect(&faddr).expect("second follower session");
    wait_for_cite(&mut other, &expected_v2);

    // …but the pinned session's `verify` re-executes its own last cite
    // against the version it cited, and the digest still reproduces.
    let verify = send_ok(&mut pinned, "verify");
    assert!(
        verify.iter().any(|l| l.contains("fixity verified")),
        "pinned verify after advance: {verify:?}"
    );
    // A fresh cite in the same session observes the shipped version.
    let after = send_ok(&mut pinned, CITE);
    assert_eq!(after, expected_v2);
    assert_ne!(after, before, "the store really did advance underneath");

    drop(pinned);
    drop(other);
    drop(pconn);
    follower.stop();
    primary.stop();
}

/// A follower ahead of the primary (its version is unknown: a different,
/// longer history) must NOT adopt the primary's shorter state — the
/// checkpoint fallback detects the rewind, replication stops as a fatal
/// divergence, and the follower keeps serving its own data read-only.
#[test]
fn diverged_follower_refuses_rewind_and_keeps_serving() {
    let fdir = temp_dir("diverged-follower");
    {
        // Build the follower's own (longer) history directly.
        use citesys_net::script::{Interpreter, SharedStore};
        let mut live = Interpreter::with_store(
            SharedStore::open_durable_shared(&fdir).expect("open follower dir"),
        );
        live.run(SETUP).unwrap();
        for fid in 20..30 {
            live.run_line(&format!("insert FamilyIntro({fid}, 'x')"))
                .unwrap();
            live.run_line("commit").unwrap();
        }
    }

    // A primary with a much shorter history.
    let primary = Server::spawn(ServerConfig::default()).expect("bind primary");
    let paddr = primary.local_addr().to_string();
    let mut pconn = Connection::connect(&paddr).expect("connect primary");
    run_setup(&mut pconn);

    let follower = Server::spawn(ServerConfig {
        data_dir: Some(fdir.clone()),
        follow: Some(paddr.clone()),
        ..Default::default()
    })
    .expect("bind follower");
    let mut fconn = Connection::connect(&follower.local_addr().to_string()).expect("connect");
    let local = send_ok(&mut fconn, CITE);
    // Give replication ample time to (wrongly) rewind us.
    std::thread::sleep(Duration::from_millis(600));
    assert_eq!(
        send_ok(&mut fconn, CITE),
        local,
        "diverged follower kept its own history"
    );
    let (kind, _) = send_err(&mut fconn, "insert Family(99, 'X', 'Y')");
    assert_eq!(kind, WireErrorKind::Readonly, "still read-only");

    drop(fconn);
    drop(pconn);
    follower.stop();
    primary.stop();
    let _ = std::fs::remove_dir_all(&fdir);
}

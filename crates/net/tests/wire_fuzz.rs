//! Protocol fuzz (satellite 1): randomly generated command pipelines —
//! tagged and untagged, CRLF and LF, valid, garbage and oversized —
//! are sent to a blocking-transport server and an event-transport
//! server with random TCP segmentation, and the two full response
//! streams must be **byte-identical**.
//!
//! The generator places a `tables` barrier after every `commit`: a
//! pipelined commit burst legitimately coalesces on the event
//! transport (`group of N` differs from the strictly sequential
//! blocking path), so equivalence is asserted on the
//! one-commit-in-flight schedule both transports share.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use citesys_net::server::{Server, ServerConfig};
use proptest::prelude::*;

/// Line cap for both servers: small enough that the fuzzer can afford
/// to cross it.
const LINE_CAP: usize = 160;

fn spawn(event_loop: bool) -> (Server, String) {
    let server = Server::spawn(ServerConfig {
        event_loop,
        workers: 2,
        commit_window: Duration::ZERO,
        max_line_bytes: LINE_CAP,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// One fuzz op: (opcode, key, tag selector, crlf). Rendered to command
/// lines by [`render`].
type FuzzOp = (u8, i64, u8, bool);

const GARBAGE: &[&str] = &[
    "bogus nonsense",
    "@",
    "@ leading-space-is-not-a-tag",
    "@@double",
    "insert R(",
    "schema",
    "cite",
    "dump",
];

/// Expands one fuzz op into wire lines (a line and its CRLF flag).
fn render(op: FuzzOp, lines: &mut Vec<(String, bool)>) {
    let (code, k, tagsel, crlf) = op;
    let body = match code {
        0 | 1 => format!("insert R({k}, 'v{k}')"),
        2 => format!("delete R({k}, 'v{k}')"),
        3 => "begin".to_string(),
        4 => "rollback".to_string(),
        5 => "commit".to_string(),
        6 => "cite Q(A) :- R(A, B)".to_string(),
        7 => "dump R".to_string(),
        8 => "tables".to_string(),
        9 => GARBAGE[k as usize % GARBAGE.len()].to_string(),
        10 => String::new(),
        _ => "# fuzz comment".to_string(),
    };
    let line = if tagsel == 0 {
        body.clone()
    } else {
        format!("@t{tagsel} {body}")
    };
    lines.push((line, crlf));
    if code == 5 {
        // Barrier: hold the next command until the commit acks, so the
        // group size is 1 on both transports (see module docs).
        lines.push(("tables".to_string(), false));
    }
}

/// Sends `head` in the given segment sizes (cycled), then `tail` as a
/// single write, and returns the full reply stream read to EOF. The
/// tail is whatever triggers the close (an oversized line or a quit):
/// one syscall puts it in the kernel buffer whole, so the server's
/// close can never race the client into a broken-pipe mid-request.
fn exchange(addr: &str, head: &[u8], tail: &[u8], chunks: &[usize]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut sent = 0;
    let mut i = 0;
    while sent < head.len() {
        let n = chunks[i % chunks.len()].min(head.len() - sent);
        i += 1;
        stream.write_all(&head[sent..sent + n]).expect("send");
        stream.flush().expect("flush");
        sent += n;
    }
    stream.write_all(tail).expect("send tail");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read to EOF");
    reply
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The equivalence property: identical request bytes, identically
    /// segmented, yield identical reply bytes from both transports.
    #[test]
    fn blocking_and_event_replies_are_byte_identical(
        ops in prop::collection::vec((0u8..12, 0i64..6, 0u8..4, any::<bool>()), 0..24),
        oversized in any::<bool>(),
        chunks in prop::collection::vec(1usize..48, 1..24),
    ) {
        let mut lines: Vec<(String, bool)> = vec![
            ("schema R(A:int, B:text) key(0)".to_string(), false),
            ("commit".to_string(), false),
            ("tables".to_string(), false),
        ];
        for op in ops {
            render(op, &mut lines);
        }
        let mut head = Vec::new();
        for (line, crlf) in &lines {
            head.extend_from_slice(line.as_bytes());
            head.extend_from_slice(if *crlf { b"\r\n" } else { b"\n" });
        }
        // The stream must end in something that closes the connection:
        // either a line over the byte cap or a clean quit.
        let tail = if oversized {
            format!("{}quit\n", "x".repeat(LINE_CAP + 40)).into_bytes()
        } else {
            b"quit\n".to_vec()
        };

        let (blocking, blocking_addr) = spawn(false);
        let (event, event_addr) = spawn(true);
        let from_blocking = exchange(&blocking_addr, &head, &tail, &chunks);
        let from_event = exchange(&event_addr, &head, &tail, &chunks);
        blocking.stop();
        event.stop();
        prop_assert_eq!(
            String::from_utf8_lossy(&from_blocking).to_string(),
            String::from_utf8_lossy(&from_event).to_string()
        );
    }
}

//! Property-based tests for view-based rewriting.
//!
//! Strategy: generate chain queries `Q(X0, Xn) :- E(X0,X1), …, E(Xn-1,Xn)`
//! and segment views `V(Y0, Yk) :- E(Y0,Y1), …` (plus unrelated noise
//! views). Chain/segment instances have a well-understood rewriting space,
//! so we can assert soundness and algorithm agreement.

use citesys_cq::{are_equivalent, parse_query, ConjunctiveQuery};
use citesys_rewrite::{rewrite, Algorithm, RewriteOptions, ViewSet};
use proptest::prelude::*;

/// Builds the chain query of length `n` over predicate `E`.
fn chain_query(n: usize) -> ConjunctiveQuery {
    let body: Vec<String> = (0..n).map(|i| format!("E(X{i}, X{})", i + 1)).collect();
    parse_query(&format!("Q(X0, X{n}) :- {}", body.join(", "))).unwrap()
}

/// Builds a segment view of length `k` named `name`.
fn segment_view(name: &str, k: usize) -> ConjunctiveQuery {
    let body: Vec<String> = (0..k).map(|i| format!("E(Y{i}, Y{})", i + 1)).collect();
    parse_query(&format!("{name}(Y0, Y{k}) :- {}", body.join(", "))).unwrap()
}

fn instance() -> impl Strategy<Value = (ConjunctiveQuery, ViewSet)> {
    (2usize..5, prop::collection::vec(1usize..4, 1..4), 0usize..3).prop_map(
        |(n, seg_lens, noise)| {
            let q = chain_query(n);
            let mut views = Vec::new();
            for (i, k) in seg_lens.into_iter().enumerate() {
                views.push(segment_view(&format!("Seg{i}"), k));
            }
            for i in 0..noise {
                views.push(parse_query(&format!("Noise{i}(A, B) :- Unrelated{i}(A, B)")).unwrap());
            }
            (q, ViewSet::new(views).unwrap())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Soundness: every returned rewriting's expansion is equivalent to Q.
    #[test]
    fn rewritings_are_sound((q, views) in instance()) {
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        for r in &out.rewritings {
            prop_assert!(are_equivalent(&r.expansion, &q),
                "unsound rewriting {} for {}", r.query, q);
        }
    }

    /// Completeness cross-check: bucket and MiniCon agree on the final
    /// rewriting sets (after validation, minimization, dedup).
    #[test]
    fn algorithms_agree((q, views) in instance()) {
        let b = rewrite(&q, &views, &RewriteOptions {
            algorithm: Algorithm::Bucket, ..Default::default()
        }).unwrap();
        let m = rewrite(&q, &views, &RewriteOptions {
            algorithm: Algorithm::MiniCon, ..Default::default()
        }).unwrap();
        let key = |o: &citesys_rewrite::RewriteOutcome| -> Vec<String> {
            o.rewritings.iter().map(|r| r.query.canonical().to_string()).collect()
        };
        prop_assert_eq!(key(&b), key(&m));
    }

    /// Pruning changes statistics, never results.
    #[test]
    fn pruning_preserves_results((q, views) in instance()) {
        let with = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        let without = rewrite(&q, &views, &RewriteOptions {
            prune: false, ..Default::default()
        }).unwrap();
        let key = |o: &citesys_rewrite::RewriteOutcome| -> Vec<String> {
            o.rewritings.iter().map(|r| r.query.canonical().to_string()).collect()
        };
        prop_assert_eq!(key(&with), key(&without));
        prop_assert!(with.stats.candidates_generated <= without.stats.candidates_generated);
    }

    /// A unit-length segment view always yields the identity rewriting for
    /// any chain, and it is found by both algorithms.
    #[test]
    fn unit_segments_cover_chains(n in 2usize..5) {
        let q = chain_query(n);
        let views = ViewSet::new(vec![segment_view("S1", 1)]).unwrap();
        for alg in [Algorithm::Bucket, Algorithm::MiniCon] {
            let out = rewrite(&q, &views, &RewriteOptions {
                algorithm: alg, ..Default::default()
            }).unwrap();
            prop_assert_eq!(out.rewritings.len(), 1, "{:?}", alg);
            prop_assert_eq!(out.rewritings[0].query.body.len(), n);
        }
    }

    /// A segment exactly as long as the chain rewrites to a single atom.
    #[test]
    fn full_segment_single_atom(n in 1usize..5) {
        let q = chain_query(n);
        let views = ViewSet::new(vec![segment_view("Full", n)]).unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        prop_assert!(out.rewritings.iter().any(|r| r.query.body.len() == 1),
            "expected a single-atom rewriting among {:?}",
            out.rewritings.iter().map(|r| r.query.to_string()).collect::<Vec<_>>());
    }

    /// Segments longer than the chain yield nothing.
    #[test]
    fn oversized_segment_no_rewriting(n in 1usize..4) {
        let q = chain_query(n);
        let views = ViewSet::new(vec![segment_view("Big", n + 1)]).unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        prop_assert!(out.rewritings.is_empty());
    }

    /// Contained-goal soundness: every returned rewriting's expansion is
    /// contained in Q, and equivalent rewritings (when they exist) are a
    /// subset of the maximal contained ones up to mutual containment.
    #[test]
    fn contained_rewritings_sound((q, views) in instance()) {
        use citesys_rewrite::RewriteGoal;
        let contained = rewrite(&q, &views, &RewriteOptions {
            goal: RewriteGoal::Contained, ..Default::default()
        }).unwrap();
        for r in &contained.rewritings {
            prop_assert!(citesys_cq::is_contained_in(&r.expansion, &q),
                "unsound contained rewriting {} for {}", r.query, q);
        }
        // No rewriting is strictly contained in another (maximality).
        for (i, a) in contained.rewritings.iter().enumerate() {
            for (j, b) in contained.rewritings.iter().enumerate() {
                if i == j { continue; }
                let a_in_b = citesys_cq::is_contained_in(&a.expansion, &b.expansion);
                let b_in_a = citesys_cq::is_contained_in(&b.expansion, &a.expansion);
                prop_assert!(!a_in_b || b_in_a,
                    "non-maximal rewriting retained: {} < {}", a.query, b.query);
            }
        }
    }
}

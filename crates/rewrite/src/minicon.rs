//! The MiniCon algorithm (Pottinger & Halevy), adapted to *equivalent*
//! rewritings.
//!
//! MiniCon avoids the bucket algorithm's cross-product blow-up by forming
//! **MiniCon descriptions** (MCDs): a view paired with the *set* of query
//! subgoals it must cover. The key insight is the *head variable property*:
//! when a query variable is mapped to an existential variable of the view,
//! every query subgoal mentioning that variable must be covered by the same
//! view instance — so MCDs partition the subgoals and combinations are
//! exact covers, not arbitrary tuples.

use std::collections::{BTreeMap, BTreeSet};

use citesys_cq::{Atom, ConjunctiveQuery, Substitution, Symbol, Term};

use crate::candidate::{match_onto, rewriting_atom};
use crate::error::RewriteError;
use crate::stats::RewriteStats;
use crate::view::ViewSet;

/// A MiniCon description: one view instance covering a set of subgoals.
#[derive(Clone, Debug)]
struct Mcd {
    /// Indices of the query subgoals this MCD covers.
    covered: BTreeSet<usize>,
    /// The rewriting atom for this view instance.
    atom: Atom,
}

/// Generates candidate rewritings via MCD formation + exact cover.
pub(crate) fn generate(
    q: &ConjunctiveQuery,
    views: &ViewSet,
    view_indices: &[usize],
    max_candidates: usize,
    stats: &mut RewriteStats,
) -> Result<Vec<ConjunctiveQuery>, RewriteError> {
    let q_vars: BTreeSet<Symbol> = q.vars().into_iter().collect();
    let distinguished = q.head_var_set();

    // Subgoal index per variable, for the closure rule.
    let mut subgoals_of: BTreeMap<Symbol, BTreeSet<usize>> = BTreeMap::new();
    for (i, a) in q.body.iter().enumerate() {
        for v in a.vars() {
            subgoals_of.entry(v.clone()).or_default().insert(i);
        }
    }

    // Form MCDs.
    let mut counter = 0usize;
    let mut mcds: Vec<Mcd> = Vec::new();
    let mut seen_keys: BTreeSet<String> = BTreeSet::new();
    for g_idx in 0..q.body.len() {
        for &vi in view_indices {
            let view = views.at(vi);
            for ai in 0..view.body.len() {
                let a = &view.body[ai];
                let g = &q.body[g_idx];
                if a.predicate != g.predicate || a.arity() != g.arity() {
                    continue;
                }
                let fresh = view.rename_apart(counter);
                counter += 1;
                let fresh_existential: BTreeSet<Symbol> = fresh.existential_vars();
                let mut subst = Substitution::new();
                if !match_onto(&fresh.body[ai], g, &mut subst) {
                    continue;
                }
                let mut covered = BTreeSet::new();
                covered.insert(g_idx);
                close(
                    q,
                    &fresh,
                    &fresh_existential,
                    &distinguished,
                    &subgoals_of,
                    subst,
                    covered,
                    &mut |subst, covered| {
                        let atom = rewriting_atom(&fresh, subst, &q_vars);
                        // Dedupe structurally equal MCDs (same coverage, same
                        // atom up to the fresh-renaming suffix).
                        let key = format!("{:?}|{}", covered, normalize_atom(&atom, &q_vars));
                        if seen_keys.insert(key) {
                            mcds.push(Mcd {
                                covered: covered.clone(),
                                atom,
                            });
                        }
                    },
                );
            }
        }
    }
    stats.mcds_formed = mcds.len();

    // Exact-cover combination.
    let all: BTreeSet<usize> = (0..q.body.len()).collect();
    let mut out = Vec::new();
    let mut chosen: Vec<usize> = Vec::new();
    exact_cover(
        q,
        &mcds,
        &all,
        &BTreeSet::new(),
        &mut chosen,
        &mut out,
        max_candidates,
        stats,
    )?;
    Ok(out)
}

/// Closure step of MCD formation. Whenever a query variable is the image of
/// a view existential variable, all subgoals using that query variable must
/// be pulled into the MCD (choosing, with backtracking, which view atom
/// covers each). Distinguished query variables must never be images of view
/// existentials.
///
/// The substitution binds only view variables (one-directional matching),
/// so "query variable `x` is mapped to existential `e`" is detected as
/// `subst(e) = x`.
#[allow(clippy::too_many_arguments)]
fn close(
    q: &ConjunctiveQuery,
    fresh: &ConjunctiveQuery,
    fresh_existential: &BTreeSet<Symbol>,
    distinguished: &BTreeSet<Symbol>,
    subgoals_of: &BTreeMap<Symbol, BTreeSet<usize>>,
    subst: Substitution,
    covered: BTreeSet<usize>,
    emit: &mut dyn FnMut(&Substitution, &BTreeSet<usize>),
) {
    let mut missing: BTreeSet<usize> = BTreeSet::new();
    for e in fresh_existential {
        let Some(Term::Var(x)) = subst.get(e) else {
            continue;
        };
        // x is a query variable (only view vars are ever bound, and their
        // images are query terms).
        if distinguished.contains(x) {
            return; // head variable mapped to existential: dead end
        }
        if let Some(gs) = subgoals_of.get(x) {
            missing.extend(gs.difference(&covered));
        }
    }
    match missing.iter().next() {
        None => emit(&subst, &covered),
        Some(&h) => {
            // Try every view atom that could cover subgoal h.
            let g = &q.body[h];
            for b in &fresh.body {
                let mut s2 = subst.clone();
                if !match_onto(b, g, &mut s2) {
                    continue;
                }
                let mut c2 = covered.clone();
                c2.insert(h);
                close(
                    q,
                    fresh,
                    fresh_existential,
                    distinguished,
                    subgoals_of,
                    s2,
                    c2,
                    emit,
                );
            }
        }
    }
}

/// Depth-first exact cover over MCDs.
#[allow(clippy::too_many_arguments)]
fn exact_cover(
    q: &ConjunctiveQuery,
    mcds: &[Mcd],
    all: &BTreeSet<usize>,
    covered: &BTreeSet<usize>,
    chosen: &mut Vec<usize>,
    out: &mut Vec<ConjunctiveQuery>,
    max_candidates: usize,
    stats: &mut RewriteStats,
) -> Result<(), RewriteError> {
    if covered == all {
        stats.candidates_generated += 1;
        if stats.candidates_generated > max_candidates {
            return Err(RewriteError::BudgetExceeded {
                generated: stats.candidates_generated,
                cap: max_candidates,
            });
        }
        let mut body: Vec<Atom> = Vec::new();
        for &m in chosen.iter() {
            if !body.contains(&mcds[m].atom) {
                body.push(mcds[m].atom.clone());
            }
        }
        out.push(ConjunctiveQuery {
            head: q.head.clone(),
            body,
            params: Vec::new(),
        });
        return Ok(());
    }
    // Smallest uncovered subgoal index drives the branching.
    let next = *all.difference(covered).next().expect("not all covered");
    for (mi, mcd) in mcds.iter().enumerate() {
        if !mcd.covered.contains(&next) {
            continue;
        }
        if !mcd.covered.is_disjoint(covered) {
            continue;
        }
        let mut c2 = covered.clone();
        c2.extend(mcd.covered.iter().copied());
        chosen.push(mi);
        exact_cover(q, mcds, all, &c2, chosen, out, max_candidates, stats)?;
        chosen.pop();
    }
    Ok(())
}

/// Key for MCD deduplication: query variables keep their names, fresh view
/// variables are numbered positionally.
fn normalize_atom(atom: &Atom, q_vars: &BTreeSet<Symbol>) -> String {
    let mut next = 0usize;
    let mut map: BTreeMap<Symbol, usize> = BTreeMap::new();
    let terms: Vec<String> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) if !q_vars.contains(v) => {
                let n = *map.entry(v.clone()).or_insert_with(|| {
                    let n = next;
                    next += 1;
                    n
                });
                format!("_f{n}")
            }
            other => other.to_string(),
        })
        .collect();
    format!("{}({})", atom.predicate, terms.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;

    fn run(q: &str, views: Vec<&str>) -> (Vec<ConjunctiveQuery>, RewriteStats) {
        let q = parse_query(q).unwrap();
        let vs =
            ViewSet::new(views.into_iter().map(|v| parse_query(v).unwrap()).collect()).unwrap();
        let idx: Vec<usize> = (0..vs.len()).collect();
        let mut stats = RewriteStats::default();
        let cands = generate(&q, &vs, &idx, 100_000, &mut stats).unwrap();
        (cands, stats)
    }

    #[test]
    fn paper_example_two_candidates() {
        let (cands, stats) = run(
            "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
            vec![
                "λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)",
                "V2(FID, FName, Desc) :- Family(FID, FName, Desc)",
                "V3(FID, Text) :- FamilyIntro(FID, Text)",
            ],
        );
        assert_eq!(cands.len(), 2);
        assert_eq!(stats.mcds_formed, 3);
    }

    #[test]
    fn existential_join_var_forces_multi_subgoal_mcd() {
        // View joins E(X,Y),E(Y,Z) projecting only endpoints; Y existential.
        // Any MCD for subgoal E(A,B) of the query that maps B to the view's
        // existential must also cover E(B,C).
        let (cands, stats) = run(
            "Q(A, C) :- E(A, B), E(B, C)",
            vec!["V(X, Z) :- E(X, Y), E(Y, Z)"],
        );
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].body.len(), 1, "one view atom covers both subgoals");
        assert!(stats.mcds_formed >= 1);
    }

    #[test]
    fn distinguished_to_existential_rejected() {
        // Query needs B in head but the view hides the second column.
        let (cands, _) = run("Q(A, B) :- E(A, B)", vec!["V(X) :- E(X, Y)"]);
        assert!(cands.is_empty());
    }

    #[test]
    fn partition_means_fewer_candidates_than_bucket() {
        // Two chain views, each covering one half of a 4-chain: MiniCon
        // combines MCDs disjointly instead of 4-way cross products.
        let (cands, stats) = run(
            "Q(A, E) :- E(A, B), E(B, C), E(C, D), E(D, E)",
            vec!["V2(X, Z) :- E(X, Y), E(Y, Z)"],
        );
        // V2 covers (0,1) as one MCD, (1,2), (2,3) similarly; exact covers
        // of {0,1,2,3} from 2-intervals: {01,23}.
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].body.len(), 2);
        assert!(stats.candidates_generated <= 2);
    }

    #[test]
    fn no_cover_no_candidates() {
        let (cands, _) = run("Q(A) :- E(A, B), F(B)", vec!["V(X, Y) :- E(X, Y)"]);
        assert!(cands.is_empty());
    }

    #[test]
    fn normalize_atom_keys() {
        let qv: BTreeSet<Symbol> = [Symbol::new("X")].into_iter().collect();
        let a1 = Atom::new("V", vec![Term::var("X"), Term::var("F_3")]);
        let a2 = Atom::new("V", vec![Term::var("X"), Term::var("F_9")]);
        assert_eq!(normalize_atom(&a1, &qv), normalize_atom(&a2, &qv));
        let a3 = Atom::new("V", vec![Term::var("F_9"), Term::var("X")]);
        assert_ne!(normalize_atom(&a1, &qv), normalize_atom(&a3, &qv));
    }
}
